//! Data cleaning (error correction) with Sudowoodo versus the Baran-like baseline.
//!
//! The dirty table contains injected missing values, typos, formatting issues, and violated
//! attribute dependencies; a Baran-style candidate generator proposes corrections; the
//! systems must decide which candidate (if any) to apply, using only 20 labeled rows.
//!
//! Run with: `cargo run --release --example data_cleaning`

use sudowoodo::baselines::{run_baran, ErrorDetection};
use sudowoodo::prelude::*;

fn main() {
    let labeled_rows = 20;
    for profile in [CleaningProfile::beers(), CleaningProfile::hospital()] {
        let dataset = profile.generate(0.25, 11);
        let stats = dataset.stats();
        println!(
            "\n######## {} ({} rows x {} cols, {:.1}% errors, coverage {:.1}%, ~{:.0} candidates/cell)",
            stats.name,
            stats.rows,
            stats.cols,
            stats.error_rate * 100.0,
            stats.coverage * 100.0,
            stats.avg_candidates
        );

        let raha = run_baran(&dataset, ErrorDetection::RahaLike, labeled_rows, 11);
        let perfect = run_baran(&dataset, ErrorDetection::Perfect, labeled_rows, 11);
        println!("Raha + Baran        F1 = {:.3}", raha.correction.f1);
        println!("Perfect ED + Baran  F1 = {:.3}", perfect.correction.f1);

        let config = SudowoodoConfig {
            encoder: EncoderConfig {
                kind: EncoderKind::MeanPool,
                dim: 32,
                layers: 1,
                heads: 2,
                ff_hidden: 64,
                max_len: 40,
            },
            projector_dim: 32,
            pretrain_epochs: 1,
            batch_size: 16,
            max_corpus_size: 800,
            finetune_epochs: 3,
            ..SudowoodoConfig::default()
        };
        let result = CleaningPipeline::new(config).run(&dataset, labeled_rows);
        println!(
            "Sudowoodo           F1 = {:.3} ({} corrections proposed for {} errors)",
            result.correction.f1, result.corrections_made, result.errors_in_scope
        );
    }
}
