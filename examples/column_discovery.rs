//! Semantic type discovery by column matching: Sudowoodo versus Sherlock/Sato-style
//! feature-based classifiers, plus the connected-component cluster discovery of §V-B.
//!
//! Run with: `cargo run --release --example column_discovery`

use sudowoodo::baselines::{run_column_baseline, ColumnFeaturizer, PairClassifier};
use sudowoodo::datasets::columns::sample_labeled_pairs;
use sudowoodo::prelude::*;

fn main() {
    // A typed synthetic column corpus (20 coarse semantic types, some with fine subtypes).
    let corpus = ColumnProfile::default().generate(0.6, 5);
    println!(
        "column corpus: {} columns, {} coarse types, {} fine-grained subtypes",
        corpus.len(),
        corpus.type_names.len(),
        corpus.fine_names.len()
    );

    // Candidate pairs enriched in same-type pairs (as kNN blocking would produce), labeled by
    // coarse type, split 2:1:1.
    let mut candidates = Vec::new();
    for i in 0..corpus.len() {
        if let Some(j) = (i + 1..corpus.len()).find(|&j| corpus.same_type(i, j)) {
            candidates.push((i, j));
        }
        let other = (i * 53 + 17) % corpus.len();
        if other != i {
            candidates.push((i.min(other), i.max(other)));
        }
    }
    let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 400, 5);
    println!(
        "labeled pairs: {} train / {} valid / {} test",
        train.len(),
        valid.len(),
        test.len()
    );

    // Feature-based baselines (the paper's Table XII grid; GBT is their best classifier).
    for (featurizer, name) in [
        (ColumnFeaturizer::Sherlock, "Sherlock-GBT"),
        (ColumnFeaturizer::Sato, "Sato-GBT"),
    ] {
        let result = run_column_baseline(
            &corpus,
            featurizer,
            PairClassifier::GBT,
            &train,
            &valid,
            &test,
            5,
        );
        println!("{name:<14} test F1 = {:.3}", result.test.f1);
    }

    // Sudowoodo column matching + cluster discovery.
    let config = SudowoodoConfig {
        encoder: EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        projector_dim: 32,
        pretrain_epochs: 2,
        batch_size: 16,
        max_corpus_size: 800,
        finetune_epochs: 4,
        blocking_k: 10,
        ..SudowoodoConfig::default()
    };
    let result = ColumnPipeline::new(config).run(&corpus, &train, &valid, &test);
    println!("Sudowoodo      test F1 = {:.3}", result.test.f1);
    println!(
        "discovered {} clusters ({} with >= 2 columns), purity {:.1}%",
        result.num_clusters,
        result.num_multi_clusters,
        result.purity * 100.0
    );
}
