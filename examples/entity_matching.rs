//! Entity Matching end-to-end: compares Sudowoodo against the SimCLR baseline and the
//! unsupervised baselines (ZeroER, Auto-FuzzyJoin) on two synthetic DeepMatcher-style
//! datasets, and prints a blocking recall/CSSR mini-curve.
//!
//! Run with: `cargo run --release --example entity_matching`

use sudowoodo::baselines::{run_auto_fuzzy_join, run_zeroer};
use sudowoodo::prelude::*;

fn harness_config() -> SudowoodoConfig {
    SudowoodoConfig {
        encoder: EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        projector_dim: 32,
        pretrain_epochs: 2,
        batch_size: 16,
        max_corpus_size: 1_000,
        finetune_epochs: 4,
        ..SudowoodoConfig::default()
    }
}

fn main() {
    let label_budget = 100;
    for profile in [EmProfile::dblp_acm(), EmProfile::walmart_amazon()] {
        let dataset = profile.generate(0.15, 7);
        println!("\n################ {} ################", dataset.name);

        // Unsupervised baselines.
        let zeroer = run_zeroer(&dataset, 7);
        let autofj = run_auto_fuzzy_join(&dataset);
        println!("ZeroER          F1 = {:.3}", zeroer.matching.f1);
        println!("Auto-FuzzyJoin  F1 = {:.3}", autofj.matching.f1);

        // SimCLR (all optimizations off) vs full Sudowoodo, same label budget.
        let simclr = EmPipeline::new(harness_config().simclr()).run(&dataset, Some(label_budget));
        let sudowoodo = EmPipeline::new(harness_config()).run(&dataset, Some(label_budget));
        println!(
            "SimCLR    ({label_budget} labels) F1 = {:.3}",
            simclr.matching.f1
        );
        println!(
            "Sudowoodo ({label_budget} labels) F1 = {:.3}",
            sudowoodo.matching.f1
        );

        // Blocking curve (Figure 7 flavour).
        let curve = EmPipeline::new(harness_config()).blocking_curve(&dataset, &[1, 5, 10, 20]);
        println!("blocking curve (k, recall, CSSR%):");
        for (k, quality) in curve {
            println!(
                "  k={k:<3} recall={:.3} cssr={:.2}%",
                quality.recall,
                quality.cssr * 100.0
            );
        }
    }
}
