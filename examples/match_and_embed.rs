//! Multi-task serving quickstart: train once, snapshot the index AND the model,
//! cold-load both in the serving role, and answer all three request shapes —
//! `KNN` blocking joins, raw `EMBED` vectors, and pairwise `MATCH` scores — over
//! one connection, bit-identically to the training process. Finishes with the
//! online streaming-dedup loop: append records, publish a delta snapshot, and
//! hot-swap the served epoch without restarting the server.
//!
//! Run with: `cargo run --release --example match_and_embed`

use std::sync::Arc;

use sudowoodo::core::model_snapshot::{self, MatcherBackend, MODEL_SNAPSHOT_FILE};
use sudowoodo::index::BlockingIndex;
use sudowoodo::prelude::*;
use sudowoodo::serve::{ServeClient, Server, ServerConfig};
use sudowoodo::text::serialize::serialize_record;

fn main() {
    // 1. Builder role: pre-train on a synthetic product corpus, fine-tune the
    //    pairwise matcher on a small label budget.
    let dataset = EmProfile::abt_buy().generate(0.15, 42);
    let config = SudowoodoConfig {
        encoder: EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        projector_dim: 32,
        pretrain_epochs: 1,
        max_corpus_size: 1_000,
        blocking_shard_capacity: Some(64),
        ..SudowoodoConfig::default()
    };
    let corpus: Vec<String> = dataset.corpus();
    let (encoder, _) = pretrain(&corpus, &config);

    let texts_a: Vec<String> = dataset.table_a.iter().map(serialize_record).collect();
    let texts_b: Vec<String> = dataset.table_b.iter().map(serialize_record).collect();
    let train_pairs: Vec<TrainPair> = dataset
        .gold_matches
        .iter()
        .take(32)
        .flat_map(|&(a, b)| {
            let positive = TrainPair::new(texts_a[a].clone(), texts_b[b].clone(), true);
            let negative = TrainPair::new(
                texts_a[a].clone(),
                texts_b[(b + 1) % texts_b.len()].clone(),
                false,
            );
            [positive, negative]
        })
        .collect();
    let mut matcher = PairMatcher::new(encoder, config.use_diff_head, config.seed);
    matcher.fine_tune(
        &train_pairs,
        &FineTuneConfig {
            epochs: 1,
            batch_size: config.finetune_batch_size,
            learning_rate: config.finetune_lr,
            seed: config.seed,
        },
    );
    println!("fine-tuned on {} labeled pairs", train_pairs.len());

    // 2. Persist BOTH artifacts: the blocking index snapshot and the model
    //    snapshot beside it. (Pipelines do both automatically when
    //    `SudowoodoConfig::snapshot_dir` is set.)
    let root = std::env::temp_dir().join(format!("sudowoodo-example-mt-{}", std::process::id()));
    let base_dir = root.join("epoch-0");
    let emb_b = matcher.encoder.embed_all(&texts_b);
    ShardedCosineIndex::from_vectors(&emb_b, 64)
        .save_snapshot(&base_dir)
        .expect("save index snapshot");
    let model_path = base_dir.join(MODEL_SNAPSHOT_FILE);
    model_snapshot::save_matcher(&matcher, &model_path).expect("save model snapshot");
    println!("index + model snapshot saved to {}", base_dir.display());

    // 3. Server role (normally a different process): cold-load both artifacts and
    //    serve. The model load rebinds every parameter by name with shape checks —
    //    corruption is a typed error, never a panic.
    let mut serving = ShardedCosineIndex::load_snapshot(&base_dir).expect("load index");
    serving.set_query_cache_capacity(16);
    let served_model = model_snapshot::load_matcher(&model_path).expect("load model");
    let server = Server::spawn_with_model(
        Arc::new(BlockingIndex::Sharded(serving)),
        Arc::new(MatcherBackend(served_model)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("spawn server");
    println!("serving on {}", server.addr());

    // 4. Client role: all three request shapes over one connection, each
    //    bit-identical to the in-process model/index.
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let probe_texts: Vec<String> = texts_a.iter().take(64).cloned().collect();
    let served_vectors = client.embed(&probe_texts).expect("served EMBED");
    assert_eq!(served_vectors, matcher.encoder.embed_all(&probe_texts));
    println!(
        "EMBED: {} texts -> {}-dim vectors, bit-identical to the training process",
        served_vectors.len(),
        served_vectors[0].len()
    );

    let candidate_pairs: Vec<(String, String)> = dataset
        .gold_matches
        .iter()
        .take(16)
        .map(|&(a, b)| (texts_a[a].clone(), texts_b[b].clone()))
        .collect();
    let served_scores = client.match_pairs(&candidate_pairs).expect("served MATCH");
    assert_eq!(served_scores, matcher.predict_scores(&candidate_pairs));
    println!(
        "MATCH: {} candidate pairs scored, mean score {:.3}",
        served_scores.len(),
        served_scores.iter().sum::<f32>() / served_scores.len() as f32
    );

    let queries = matcher.encoder.embed_all(&probe_texts);
    let blocked = client
        .knn_join(&queries, config.blocking_k)
        .expect("served KNN");
    println!(
        "KNN: {} candidate pairs for {} queries",
        blocked.len(),
        queries.len()
    );

    // 5. Streaming dedup: the builder role appends newly arrived records and
    //    publishes a delta snapshot (only mutated shards rewritten); the serving
    //    role cold-loads the delta and hot-swaps it in. The repeated query batch
    //    now finds the new records — never a stale cached answer.
    let before = client.knn_join(&queries[..8], 3).expect("pre-delta join");
    let delta_dir = root.join("epoch-1");
    let mut builder = ShardedCosineIndex::load_snapshot(&base_dir).expect("builder load");
    let new_ids = builder.add_batch(&queries[..8]);
    builder
        .save_delta_snapshot(&base_dir, &delta_dir)
        .expect("publish delta");
    let mut next = ShardedCosineIndex::load_snapshot(&delta_dir).expect("load delta");
    next.set_query_cache_capacity(16);
    server.publish_index(Arc::new(BlockingIndex::Sharded(next)));

    let after = client.knn_join(&queries[..8], 3).expect("post-delta join");
    assert_ne!(after, before, "the new epoch must change the answers");
    for (q, id) in new_ids.enumerate() {
        assert!(
            after.iter().any(|&(query, hit, _)| query == q && hit == id),
            "query {q} must find its newly appended duplicate {id}"
        );
    }
    println!("streaming dedup: delta published, every query found its new duplicate");

    server.shutdown();
    std::fs::remove_dir_all(&root).expect("clean up snapshot dirs");
}
