//! Snapshot + serving quickstart: pre-train and embed once, persist the blocking
//! index, then serve `knn_join` traffic over TCP from a cold snapshot load — the
//! "build in one process, serve in many" deployment shape.
//!
//! Run with: `cargo run --release --example snapshot_serving`

use std::sync::Arc;

use sudowoodo::index::BlockingIndex;
use sudowoodo::prelude::*;
use sudowoodo::serve::{ServeClient, Server};
use sudowoodo::text::serialize::serialize_record;

fn main() {
    // 1. Builder role: pre-train on a synthetic product corpus and embed both tables.
    let dataset = EmProfile::abt_buy().generate(0.15, 42);
    let config = SudowoodoConfig {
        encoder: EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        projector_dim: 32,
        pretrain_epochs: 1,
        max_corpus_size: 1_000,
        // A sharded index (64 rows per shard) is the streaming/serving layout.
        blocking_shard_capacity: Some(64),
        ..SudowoodoConfig::default()
    };
    let corpus: Vec<String> = dataset.corpus();
    let (encoder, _) = pretrain(&corpus, &config);
    let texts_b: Vec<String> = dataset.table_b.iter().map(serialize_record).collect();
    let emb_b = encoder.embed_all(&texts_b);
    println!("embedded {} right-table records", emb_b.len());

    // 2. Persist: build the blocking index and snapshot it to disk. (Pipelines do this
    //    automatically when `SudowoodoConfig::snapshot_dir` is set.)
    let dir = std::env::temp_dir().join(format!("sudowoodo-example-snap-{}", std::process::id()));
    let built = BlockingIndex::build(emb_b, config.blocking_shard_capacity);
    built.save_snapshot(&dir).expect("save snapshot");
    println!("snapshot saved to {}", dir.display());

    // 3. Server role (normally a different process): load the snapshot COLD — only the
    //    manifest is read; shard payloads stay on disk until queries need them — enable
    //    the query-batch cache, and serve.
    let mut serving = BlockingIndex::load_snapshot(&dir).expect("load snapshot");
    serving.set_query_cache_capacity(16);
    let server = Server::spawn(Arc::new(serving), "127.0.0.1:0").expect("spawn server");
    println!("serving on {}", server.addr());

    // 4. Client role: embed the left table and block over the wire. Results are
    //    bit-identical to calling `knn_join` in-process on the built index.
    let texts_a: Vec<String> = dataset.table_a.iter().map(serialize_record).collect();
    let emb_a = encoder.embed_all(&texts_a);
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let served = client
        .knn_join(&emb_a, config.blocking_k)
        .expect("served join");
    assert_eq!(served, built.knn_join(&emb_a, config.blocking_k));
    println!(
        "served {} candidate pairs for {} queries",
        served.len(),
        emb_a.len()
    );

    // A repeated batch (a retried RPC, a dashboard refresh) hits the query cache —
    // zero shards touched, zero disk reads.
    let again = client
        .knn_join(&emb_a, config.blocking_k)
        .expect("cached join");
    assert_eq!(again, served);
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} vectors, {}/{} shards on disk, {} requests, cache {} hits / {} misses",
        stats.len,
        stats.spilled_shards,
        stats.num_shards,
        stats.served_requests,
        stats.cache_hits,
        stats.cache_misses
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).expect("clean up snapshot dir");
}
