//! Quickstart: pre-train an embedding model on an unlabeled entity corpus, use it for
//! blocking, and fine-tune a pairwise matcher with a tiny label budget.
//!
//! Run with: `cargo run --release --example quickstart`

use sudowoodo::prelude::*;

fn main() {
    // 1. A synthetic Entity Matching dataset (an Abt-Buy-like product-matching workload).
    let dataset = EmProfile::abt_buy().generate(0.15, 42);
    println!(
        "dataset {}: |A| = {}, |B| = {}, {} gold matches, {} labeled pairs",
        dataset.name,
        dataset.table_a.len(),
        dataset.table_b.len(),
        dataset.gold_matches.len(),
        dataset.train.len() + dataset.valid.len() + dataset.test.len(),
    );

    // 2. Configure Sudowoodo. The default configuration enables all three pre-training
    //    optimizations (cutoff DA, clustering-based negatives, redundancy regularization)
    //    plus pseudo labeling; here we shrink the encoder so the example runs in seconds.
    let config = SudowoodoConfig {
        encoder: EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        projector_dim: 32,
        pretrain_epochs: 2,
        batch_size: 16,
        max_corpus_size: 1_000,
        finetune_epochs: 4,
        blocking_k: 10,
        ..SudowoodoConfig::default()
    };

    // 3. Run the full pipeline with a 100-label budget (the paper's headline setting uses
    //    500 labels on larger datasets): pre-train -> block -> pseudo-label -> fine-tune.
    let result = EmPipeline::new(config).run(&dataset, Some(100));

    println!("\n=== Sudowoodo on {} (100 labels) ===", result.dataset);
    println!(
        "blocking:  recall {:.3} with {} candidates (CSSR {:.2}%)",
        result.blocking.recall,
        result.blocking.num_candidates,
        result.blocking.cssr * 100.0
    );
    if let Some((tpr, tnr)) = result.pseudo_quality {
        println!(
            "pseudo labels: {} generated, TPR {:.2}, TNR {:.2}",
            result.num_pseudo_labels, tpr, tnr
        );
    }
    println!(
        "matching:  precision {:.3}, recall {:.3}, F1 {:.3}",
        result.matching.precision, result.matching.recall, result.matching.f1
    );
    println!(
        "timings:   pre-train {:.1}s, blocking {:.1}s, fine-tune {:.1}s",
        result.timings.pretrain_secs, result.timings.blocking_secs, result.timings.finetune_secs
    );
}
