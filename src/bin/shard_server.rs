//! A minimal serve process for the distributed test tier.
//!
//! Usage: `shard_server <snapshot-dir>`
//!
//! Cold-loads the snapshot at `<snapshot-dir>`, binds an OS-assigned loopback
//! port, prints exactly one line `LISTENING <addr>` on stdout (the parent parses
//! it to learn the port), then serves until stdin reaches EOF — so a parent that
//! dies takes its cluster down with it, and a test kills one replica by closing
//! its stdin pipe. Failpoints arm from `SUDOWOODO_FAILPOINTS` as everywhere else,
//! which is how chaos tests wedge exactly one replica of a cluster: the env var
//! is per-process.

use std::io::{Read, Write};
use std::sync::Arc;

use sudowoodo::index::BlockingIndex;
use sudowoodo::serve::Server;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else {
        eprintln!("usage: shard_server <snapshot-dir>");
        std::process::exit(2);
    };
    let index = match BlockingIndex::load_snapshot(std::path::Path::new(&dir)) {
        Ok(index) => index,
        Err(e) => {
            eprintln!("shard_server: failed to load snapshot at {dir}: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::spawn(Arc::new(index), "127.0.0.1:0") {
        Ok(server) => server,
        Err(e) => {
            eprintln!("shard_server: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.addr());
    std::io::stdout().flush().ok();
    // Block until the parent closes our stdin (or dies, which closes it too).
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
}
