//! # sudowoodo
//!
//! Umbrella crate of the Sudowoodo reproduction — a multi-purpose Data Integration &
//! Preparation (DI&P) framework based on contrastive self-supervised learning
//! (Wang, Li, Wang — "Sudowoodo", ICDE 2023), implemented from scratch in Rust.
//!
//! This crate simply re-exports the member crates under stable names and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`nn`] | `sudowoodo-nn` | autodiff engine, layers, AdamW |
//! | [`text`] | `sudowoodo-text` | records/tables/columns, serialization, tokenizer |
//! | [`augment`] | `sudowoodo-augment` | DA operators and cutoff augmentation |
//! | [`cluster`] | `sudowoodo-cluster` | TF-IDF, k-means, clustered batching, components |
//! | [`index`] | `sudowoodo-index` | exact cosine kNN blocking (dense + sharded/streaming) |
//! | [`ml`] | `sudowoodo-ml` | classical learners and metrics |
//! | [`datasets`] | `sudowoodo-datasets` | synthetic EM / cleaning / column workloads |
//! | [`core`] | `sudowoodo-core` | pre-training, pseudo labels, matcher, pipelines |
//! | [`baselines`] | `sudowoodo-baselines` | Ditto/Rotom/ZeroER/Auto-FuzzyJoin/DL-Block/Baran/Sherlock/Sato analogs |
//! | [`serve`] | `sudowoodo-serve` | snapshot-backed concurrent TCP query serving |
//! | [`coord`] | `sudowoodo-coord` | scatter-gather coordination: consistent-hash placement, replica failover |
//! | [`faults`] | `sudowoodo-faults` | deterministic failpoint registry for chaos testing |
//!
//! See `README.md` for a quickstart and `ARCHITECTURE.md` for crate responsibilities,
//! data flow, and the design of the dense/sharded blocking indexes.

#![warn(missing_docs)]

pub use sudowoodo_augment as augment;
pub use sudowoodo_baselines as baselines;
pub use sudowoodo_cluster as cluster;
pub use sudowoodo_coord as coord;
pub use sudowoodo_core as core;
pub use sudowoodo_datasets as datasets;
pub use sudowoodo_faults as faults;
pub use sudowoodo_index as index;
pub use sudowoodo_ml as ml;
pub use sudowoodo_nn as nn;
pub use sudowoodo_serve as serve;
pub use sudowoodo_text as text;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use sudowoodo_core::config::{EncoderConfig, EncoderKind, SudowoodoConfig};
    pub use sudowoodo_core::encoder::Encoder;
    pub use sudowoodo_core::matcher::{FineTuneConfig, PairMatcher, TrainPair};
    pub use sudowoodo_core::pipeline::{CleaningPipeline, ColumnPipeline, EmPipeline};
    pub use sudowoodo_core::pretrain::pretrain;
    pub use sudowoodo_datasets::cleaning::CleaningProfile;
    pub use sudowoodo_datasets::columns::ColumnProfile;
    pub use sudowoodo_datasets::em::EmProfile;
    pub use sudowoodo_index::{BlockingIndex, CosineIndex, ShardedCosineIndex};
}
