//! Connection-scaling integration test for the readiness-polled server: hundreds of
//! idle connections must cost nothing (no per-connection threads, no timeout
//! wakeups) while a small active set keeps getting bit-identical answers, STATS
//! counters stay consistent, and shutdown remains prompt.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sudowoodo::index::{BlockingIndex, ShardedCosineIndex};
use sudowoodo::serve::{ServeClient, Server};

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

#[test]
fn hundreds_of_idle_connections_do_not_disturb_active_ones() {
    const IDLE_CONNS: usize = 512;
    const ACTIVE_CLIENTS: usize = 4;
    const JOINS_PER_CLIENT: usize = 8;

    let corpus = vectors(300, 16, 41);
    let queries = vectors(25, 16, 42);
    let mut built = ShardedCosineIndex::from_vectors(&corpus, 32);
    let expected = built.knn_join(&queries, 6);
    built.set_query_cache_capacity(8);
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(built)), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Park a crowd of idle connections. Under the old thread-per-connection model
    // this was 512 handler threads each waking 10x/s; under the reactor they are
    // parked descriptors. They stay open for the whole test.
    let idle: Vec<ServeClient> = (0..IDLE_CONNS)
        .map(|i| {
            ServeClient::connect(addr).unwrap_or_else(|e| panic!("idle connect {i} failed: {e}"))
        })
        .collect();

    // A small active set keeps querying through the crowd; every answer must be
    // bit-identical to the in-process join.
    let workers: Vec<_> = (0..ACTIVE_CLIENTS)
        .map(|_| {
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("active connect");
                for round in 0..JOINS_PER_CLIENT {
                    let served = client.knn_join(&queries, 6).expect("served join");
                    assert_eq!(served.len(), expected.len(), "round {round}: pair count");
                    for (a, b) in served.iter().zip(expected.iter()) {
                        assert_eq!((a.0, a.1), (b.0, b.1), "round {round}: ids");
                        assert_eq!(a.2.to_bits(), b.2.to_bits(), "round {round}: scores");
                    }
                }
                client.stats().expect("stats over the wire")
            })
        })
        .collect();
    let wire_stats: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Counter consistency: every KNN frame is counted exactly once — idle
    // connections contribute nothing — and the wire STATS agree with the handle.
    let stats = server.stats();
    let total_joins = (ACTIVE_CLIENTS * JOINS_PER_CLIENT) as u64;
    // Each worker also sent one STATS frame; those land in served_requests too,
    // but only after the joins, so the join count is a hard floor and the final
    // tally is exact.
    assert_eq!(
        stats.served_requests,
        total_joins + ACTIVE_CLIENTS as u64,
        "512 idle connections must not leak phantom requests"
    );
    assert_eq!(stats.busy_rejections, 0, "no shedding at this load");
    assert_eq!(stats.degraded_joins, 0, "nothing quarantined");
    for wire in &wire_stats {
        assert!(
            wire.served_requests <= stats.served_requests,
            "a mid-flight STATS snapshot can never exceed the final tally"
        );
        assert_eq!(wire.len, stats.len);
        assert_eq!(wire.num_shards, stats.num_shards);
    }
    // Repeated identical batches are the cache's bread and butter; with 4 clients
    // repeating one batch the cache must have answered most of them.
    assert!(
        stats.cache_hits > 0,
        "repeated batches should hit the query cache"
    );

    // Shutdown with all 512 idle connections still attached must stay prompt.
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with {IDLE_CONNS} idle connections attached",
        start.elapsed()
    );
    drop(idle);
}
