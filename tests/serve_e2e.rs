//! End-to-end serving over localhost: snapshot a blocking index, load it cold in the
//! server role, and verify that remote `knn_join` results are identical to in-process
//! ones — including under concurrent clients, error inputs, and server statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sudowoodo::index::{BlockingIndex, ShardedCosineIndex};
use sudowoodo::serve::{ServeClient, Server};

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn snapshot_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sudowoodo-serve-e2e-{tag}-{}-{n}",
        std::process::id()
    ))
}

#[test]
fn served_results_match_in_process_results_over_a_cold_snapshot() {
    let corpus = vectors(300, 16, 1);
    let queries = vectors(40, 16, 2);
    let built = ShardedCosineIndex::from_vectors(&corpus, 32);
    let expected = built.knn_join(&queries, 7);

    // Snapshot, then serve from a cold load (the "other process" role).
    let dir = snapshot_dir("match");
    built.save_snapshot(&dir).unwrap();
    let mut serving = ShardedCosineIndex::load_snapshot(&dir).unwrap();
    serving.set_query_cache_capacity(8);
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0").unwrap();

    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.ping().unwrap();
    let served = client.knn_join(&queries, 7).unwrap();
    assert_eq!(served.len(), expected.len());
    for (a, b) in served.iter().zip(expected.iter()) {
        assert_eq!((a.0, a.1), (b.0, b.1), "served ids match in-process ids");
        assert_eq!(
            a.2.to_bits(),
            b.2.to_bits(),
            "served scores are bit-identical"
        );
    }
    // The second identical batch is a cache hit server-side; results are unchanged.
    assert_eq!(client.knn_join(&queries, 7).unwrap(), served);
    let stats = client.stats().unwrap();
    assert_eq!(stats.len, 300);
    assert_eq!(stats.dim, 16);
    assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    assert!(stats.served_requests >= 4);

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let corpus = vectors(200, 8, 3);
    let index = BlockingIndex::build(corpus, Some(16));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Each thread opens its own connection and sends a thread-specific batch several
    // times; every response must match the in-process answer for *that* batch (the
    // server may coalesce arbitrary combinations across connections).
    let reference = BlockingIndex::build(vectors(200, 8, 3), Some(16));
    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let reference = &reference;
            scope.spawn(move || {
                let queries = vectors(10, 8, 100 + t);
                let expected = reference.knn_join(&queries, 5);
                let mut client = ServeClient::connect(addr).expect("connect");
                for _ in 0..20 {
                    assert_eq!(
                        client.knn_join(&queries, 5).expect("served join"),
                        expected,
                        "thread {t}"
                    );
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.served_requests, 120);
    server.shutdown();
}

#[test]
fn protocol_errors_are_reported_and_do_not_kill_the_connection() {
    let index = BlockingIndex::build(vectors(50, 4, 5), Some(8));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Ragged batch: rejected client-side before any bytes are sent.
    let err = client
        .knn_join(&[vec![1.0, 0.0, 0.0, 0.0], vec![1.0]], 3)
        .unwrap_err();
    assert!(err.to_string().contains("rectangular"), "got: {err}");

    // Wrong dimension: rejected server-side with a named mismatch.
    let err = client.knn_join(&[vec![1.0, 2.0]], 3).unwrap_err();
    assert!(
        err.to_string()
            .contains("does not match the index dimension"),
        "got: {err}"
    );

    // The connection survives both and keeps serving.
    let queries = vectors(3, 4, 6);
    assert!(!client.knn_join(&queries, 3).unwrap().is_empty());

    // Degenerate requests behave like the in-process API.
    assert!(client.knn_join(&queries, 0).unwrap().is_empty());
    assert!(client.knn_join(&[], 3).unwrap().is_empty());

    // A protocol-legal request whose *response* would exceed the frame limit is
    // rejected up front instead of producing an unsendable frame.
    let huge: Vec<Vec<f32>> = vec![vec![1.0, 0.0, 0.0, 0.0]; 450_000];
    let err = client.knn_join(&huge, 10).unwrap_err();
    assert!(err.to_string().contains("frame limit"), "got: {err}");

    // And the connection still serves after that rejection too.
    assert!(!client.knn_join(&queries, 3).unwrap().is_empty());

    server.shutdown();
}

#[test]
fn dense_snapshots_serve_too() {
    let corpus = vectors(100, 8, 7);
    let queries = vectors(10, 8, 8);
    let built = BlockingIndex::build(corpus, None);
    let expected = built.knn_join(&queries, 4);
    let dir = snapshot_dir("dense");
    built.save_snapshot(&dir).unwrap();

    let loaded = BlockingIndex::load_snapshot(&dir).unwrap();
    let server = Server::spawn(Arc::new(loaded), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    assert_eq!(client.knn_join(&queries, 4).unwrap(), expected);
    let stats = client.stats().unwrap();
    assert_eq!((stats.num_shards, stats.spilled_shards), (1, 0));

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_snapshot_dir_feeds_a_serving_process() {
    use sudowoodo::datasets::em::EmProfile;
    use sudowoodo::prelude::{EmPipeline, SudowoodoConfig};

    // Builder role: a tiny EM pipeline with `snapshot_dir` set persists its blocking
    // index as a side effect of blocking.
    let dir = snapshot_dir("pipeline");
    let mut config = SudowoodoConfig::test_config();
    config.blocking_shard_capacity = Some(16);
    config.blocking_query_cache = 4;
    config.snapshot_dir = Some(dir.clone());
    let dataset = EmProfile::abt_buy().generate(0.3, 7);
    let pipeline = EmPipeline::new(config);
    let (encoder, _) = pipeline.pretrain_encoder(&dataset);
    let (candidates, _) = pipeline.block(&encoder, &dataset, 5);
    assert!(!candidates.is_empty());
    assert!(
        dir.join("MANIFEST.swidx").exists(),
        "pipeline must snapshot"
    );

    // Server role: load the pipeline's snapshot cold and answer the same queries the
    // pipeline asked, identically.
    let loaded = BlockingIndex::load_snapshot(&dir).unwrap();
    let server = Server::spawn(Arc::new(loaded), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let texts_a: Vec<String> = dataset
        .table_a
        .iter()
        .map(sudowoodo::text::serialize::serialize_record)
        .collect();
    let emb_a = encoder.embed_all(&texts_a);
    let served = client.knn_join(&emb_a, 5).unwrap();
    assert_eq!(
        served, candidates,
        "served pairs == the pipeline's candidates"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shutdown_is_prompt_with_idle_clients_attached() {
    let index = BlockingIndex::build(vectors(20, 4, 9), Some(4));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let _idle = ServeClient::connect(server.addr()).unwrap();
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not hang on idle connections"
    );
}

/// Regression (wedged shutdown on wildcard binds): the old accept thread was woken
/// by connecting to the listener's own address, and a `0.0.0.0` bind made that
/// connect target the wildcard — unroutable without rewriting it to a loopback —
/// so shutdown hung until a real client happened to dial in. The reactor wakes
/// workers through loopback socket pairs it owns, so the bind address is
/// irrelevant; this pins that for the wildcard case specifically.
#[test]
fn shutdown_is_prompt_on_a_wildcard_bind() {
    let index = BlockingIndex::build(vectors(20, 4, 9), Some(4));
    let server = Server::spawn(Arc::new(index), "0.0.0.0:0").unwrap();
    // The server must actually be reachable (via loopback at the bound port)...
    let port = server.addr().port();
    let mut client = ServeClient::connect(("127.0.0.1", port)).unwrap();
    client.ping().unwrap();
    assert_eq!(client.knn_join(&vectors(3, 4, 1), 2).unwrap().len(), 6);
    // ...and shutting down with that client still attached must not wedge.
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not hang on a 0.0.0.0 bind"
    );
}
