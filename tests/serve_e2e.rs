//! End-to-end serving over localhost: snapshot a blocking index, load it cold in the
//! server role, and verify that remote `knn_join` results are identical to in-process
//! ones — including under concurrent clients, error inputs, and server statistics.
//!
//! The model half mirrors the index half: a trained matcher is snapshotted
//! (`model.swmodel`), cold-loaded in the server role, and `EMBED`/`MATCH` answers
//! must be bit-identical to the in-process model. The streaming-dedup scenario
//! chains both: records added after the initial snapshot are published as a delta
//! epoch, and the server picks them up without ever serving a stale cached answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sudowoodo::core::config::SudowoodoConfig;
use sudowoodo::core::encoder::Encoder;
use sudowoodo::core::matcher::{FineTuneConfig, PairMatcher, TrainPair};
use sudowoodo::core::model_snapshot::{self, MatcherBackend};
use sudowoodo::index::{BlockingIndex, QuantSpec, ShardedCosineIndex};
use sudowoodo::serve::{Request, ServeClient, Server, ServerConfig};

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn snapshot_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sudowoodo-serve-e2e-{tag}-{}-{n}",
        std::process::id()
    ))
}

#[test]
fn served_results_match_in_process_results_over_a_cold_snapshot() {
    let corpus = vectors(300, 16, 1);
    let queries = vectors(40, 16, 2);
    let built = ShardedCosineIndex::from_vectors(&corpus, 32);
    let expected = built.knn_join(&queries, 7);

    // Snapshot, then serve from a cold load (the "other process" role).
    let dir = snapshot_dir("match");
    built.save_snapshot(&dir).unwrap();
    let mut serving = ShardedCosineIndex::load_snapshot(&dir).unwrap();
    serving.set_query_cache_capacity(8);
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0").unwrap();

    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.ping().unwrap();
    let served = client.knn_join(&queries, 7).unwrap();
    assert_eq!(served.len(), expected.len());
    for (a, b) in served.iter().zip(expected.iter()) {
        assert_eq!((a.0, a.1), (b.0, b.1), "served ids match in-process ids");
        assert_eq!(
            a.2.to_bits(),
            b.2.to_bits(),
            "served scores are bit-identical"
        );
    }
    // The second identical batch is a cache hit server-side; results are unchanged.
    assert_eq!(client.knn_join(&queries, 7).unwrap(), served);
    let stats = client.stats().unwrap();
    assert_eq!(stats.len, 300);
    assert_eq!(stats.dim, 16);
    assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    assert!(stats.served_requests >= 4);

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let corpus = vectors(200, 8, 3);
    let index = BlockingIndex::build(corpus, Some(16));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Each thread opens its own connection and sends a thread-specific batch several
    // times; every response must match the in-process answer for *that* batch (the
    // server may coalesce arbitrary combinations across connections).
    let reference = BlockingIndex::build(vectors(200, 8, 3), Some(16));
    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let reference = &reference;
            scope.spawn(move || {
                let queries = vectors(10, 8, 100 + t);
                let expected = reference.knn_join(&queries, 5);
                let mut client = ServeClient::connect(addr).expect("connect");
                for _ in 0..20 {
                    assert_eq!(
                        client.knn_join(&queries, 5).expect("served join"),
                        expected,
                        "thread {t}"
                    );
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.served_requests, 120);
    server.shutdown();
}

/// The quantized serving scenario: a snapshot saved with i8 shard quantization is
/// cold-loaded in the server role (the load restores the quantized tier from the
/// `SWSHARDQ1` payloads alone) and served to 6 concurrent clients — every remote
/// answer must be **bit-identical** to an in-process join over the plain dense
/// layout, proving the two-stage quantized scan is invisible across the snapshot
/// boundary, the wire, and concurrency all at once.
#[test]
fn quantized_snapshots_serve_bit_identically_to_dense_under_concurrency() {
    let corpus = vectors(400, 16, 31);
    let mut built = ShardedCosineIndex::from_vectors(&corpus, 32);
    built.set_quantization(Some(QuantSpec::default()));
    built.compact();
    assert_eq!(built.num_quantized_shards(), built.num_shards());

    let dir = snapshot_dir("quant");
    built.save_snapshot(&dir).unwrap();
    drop(built);

    // Server role: the cold load must come back quantized ("disk wins").
    let mut serving = ShardedCosineIndex::load_snapshot(&dir).unwrap();
    assert_eq!(serving.quantization(), Some(QuantSpec::default()));
    assert_eq!(serving.num_quantized_shards(), serving.num_shards());
    serving.set_query_cache_capacity(8);
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // The oracle is the plain DENSE layout — not the index that was served — so the
    // assertion spans quantization, snapshotting, and the wire protocol together.
    let dense = BlockingIndex::build(corpus, None);
    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let dense = &dense;
            scope.spawn(move || {
                let queries = vectors(12, 16, 200 + t);
                let expected = dense.knn_join(&queries, 6);
                let mut client = ServeClient::connect(addr).expect("connect");
                for _ in 0..10 {
                    let served = client.knn_join(&queries, 6).expect("served join");
                    assert_eq!(served.len(), expected.len(), "thread {t}");
                    for (a, b) in served.iter().zip(expected.iter()) {
                        assert_eq!((a.0, a.1), (b.0, b.1), "thread {t}: ids");
                        assert_eq!(a.2.to_bits(), b.2.to_bits(), "thread {t}: score bits");
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.served_requests, 60);

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn protocol_errors_are_reported_and_do_not_kill_the_connection() {
    let index = BlockingIndex::build(vectors(50, 4, 5), Some(8));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Ragged batch: rejected client-side before any bytes are sent.
    let err = client
        .knn_join(&[vec![1.0, 0.0, 0.0, 0.0], vec![1.0]], 3)
        .unwrap_err();
    assert!(err.to_string().contains("rectangular"), "got: {err}");

    // Wrong dimension: rejected server-side with a named mismatch.
    let err = client.knn_join(&[vec![1.0, 2.0]], 3).unwrap_err();
    assert!(
        err.to_string()
            .contains("does not match the index dimension"),
        "got: {err}"
    );

    // The connection survives both and keeps serving.
    let queries = vectors(3, 4, 6);
    assert!(!client.knn_join(&queries, 3).unwrap().is_empty());

    // Degenerate requests behave like the in-process API.
    assert!(client.knn_join(&queries, 0).unwrap().is_empty());
    assert!(client.knn_join(&[], 3).unwrap().is_empty());

    // A protocol-legal request whose *response* would exceed the frame limit is
    // rejected up front instead of producing an unsendable frame.
    let huge: Vec<Vec<f32>> = vec![vec![1.0, 0.0, 0.0, 0.0]; 450_000];
    let err = client.knn_join(&huge, 10).unwrap_err();
    assert!(err.to_string().contains("frame limit"), "got: {err}");

    // And the connection still serves after that rejection too.
    assert!(!client.knn_join(&queries, 3).unwrap().is_empty());

    server.shutdown();
}

#[test]
fn dense_snapshots_serve_too() {
    let corpus = vectors(100, 8, 7);
    let queries = vectors(10, 8, 8);
    let built = BlockingIndex::build(corpus, None);
    let expected = built.knn_join(&queries, 4);
    let dir = snapshot_dir("dense");
    built.save_snapshot(&dir).unwrap();

    let loaded = BlockingIndex::load_snapshot(&dir).unwrap();
    let server = Server::spawn(Arc::new(loaded), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    assert_eq!(client.knn_join(&queries, 4).unwrap(), expected);
    let stats = client.stats().unwrap();
    assert_eq!((stats.num_shards, stats.spilled_shards), (1, 0));

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_snapshot_dir_feeds_a_serving_process() {
    use sudowoodo::datasets::em::EmProfile;
    use sudowoodo::prelude::{EmPipeline, SudowoodoConfig};

    // Builder role: a tiny EM pipeline with `snapshot_dir` set persists its blocking
    // index as a side effect of blocking.
    let dir = snapshot_dir("pipeline");
    let mut config = SudowoodoConfig::test_config();
    config.blocking_shard_capacity = Some(16);
    config.blocking_query_cache = 4;
    config.snapshot_dir = Some(dir.clone());
    let dataset = EmProfile::abt_buy().generate(0.3, 7);
    let pipeline = EmPipeline::new(config);
    let (encoder, _) = pipeline.pretrain_encoder(&dataset);
    let (candidates, _) = pipeline.block(&encoder, &dataset, 5);
    assert!(!candidates.is_empty());
    assert!(
        dir.join("MANIFEST.swidx").exists(),
        "pipeline must snapshot"
    );

    // Server role: load the pipeline's snapshot cold and answer the same queries the
    // pipeline asked, identically.
    let loaded = BlockingIndex::load_snapshot(&dir).unwrap();
    let server = Server::spawn(Arc::new(loaded), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let texts_a: Vec<String> = dataset
        .table_a
        .iter()
        .map(sudowoodo::text::serialize::serialize_record)
        .collect();
    let emb_a = encoder.embed_all(&texts_a);
    let served = client.knn_join(&emb_a, 5).unwrap();
    assert_eq!(
        served, candidates,
        "served pairs == the pipeline's candidates"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Trains a tiny matcher on the configured test encoder (`SUDOWOODO_TEST_ENCODER`
/// switches the architecture in CI) — the in-process oracle for the model tests.
fn trained_matcher() -> PairMatcher {
    let corpus: Vec<String> = (0..10)
        .map(|i| format!("[COL] title [VAL] acme widget model w{i}"))
        .collect();
    let encoder = Encoder::from_corpus(SudowoodoConfig::test_config().encoder, &corpus, 11);
    let mut matcher = PairMatcher::new(encoder, true, 11);
    let pairs: Vec<TrainPair> = (0..6)
        .map(|i| {
            TrainPair::new(
                corpus[i].clone(),
                corpus[(i + 3) % corpus.len()].clone(),
                i % 2 == 0,
            )
        })
        .collect();
    matcher.fine_tune(
        &pairs,
        &FineTuneConfig {
            epochs: 1,
            batch_size: 4,
            learning_rate: 1e-3,
            seed: 11,
        },
    );
    matcher
}

/// Spawns a server over a small index plus a **cold-loaded** copy of `matcher` —
/// the model travels through the `SWMODEL1` snapshot exactly as in production.
fn spawn_model_server(matcher: &PairMatcher) -> Server {
    let dir = snapshot_dir("model");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(model_snapshot::MODEL_SNAPSHOT_FILE);
    model_snapshot::save_matcher(matcher, &path).unwrap();
    let loaded = model_snapshot::load_matcher(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    let index = BlockingIndex::build(vectors(20, matcher.encoder.dim(), 13), Some(8));
    Server::spawn_with_model(
        Arc::new(index),
        Arc::new(MatcherBackend(loaded)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap()
}

#[test]
fn embed_and_match_answers_are_bit_identical_over_a_cold_model_snapshot() {
    let matcher = trained_matcher();
    let server = spawn_model_server(&matcher);
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let texts: Vec<String> = (0..7)
        .map(|i| format!("[COL] title [VAL] acme widget model w{i}"))
        .collect();

    // EMBED == the in-process encoder, bit for bit.
    let served = client.embed(&texts).unwrap();
    let expected = matcher.encoder.embed_all(&texts);
    assert_eq!(served.len(), expected.len());
    for (a, b) in served.iter().zip(expected.iter()) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "served embedding bits diverged");
        }
    }

    // MATCH == the in-process matcher, bit for bit.
    let pairs: Vec<(String, String)> = texts
        .iter()
        .cloned()
        .zip(texts.iter().rev().cloned())
        .collect();
    let served = client.match_pairs(&pairs).unwrap();
    let expected = matcher.predict_scores(&pairs);
    assert_eq!(served.len(), expected.len());
    for (x, y) in served.iter().zip(expected.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "served match-score bits diverged");
    }

    // The same connection still serves the index workload.
    assert!(!client
        .knn_join(&vectors(3, matcher.encoder.dim(), 14), 2)
        .unwrap()
        .is_empty());
    server.shutdown();
}

#[test]
fn oversized_embed_reply_is_rejected_and_the_connection_survives() {
    let matcher = trained_matcher();
    let dim = matcher.encoder.dim();
    let server = spawn_model_server(&matcher);
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Protocol-legal batch whose *reply* (num × dim f32 rows) cannot be framed:
    // rejected up front with a typed error, before any embedding runs.
    let num = (64 * 1024 * 1024) / (dim * 4) + 1;
    let huge = vec!["a".to_string(); num];
    let err = client.embed(&huge).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("frame limit"), "got: {err}");

    // The connection is still usable for both model and index traffic.
    assert_eq!(client.embed(&huge[..2]).unwrap().len(), 2);
    assert!(!client.knn_join(&vectors(2, dim, 15), 2).unwrap().is_empty());
    server.shutdown();
}

#[test]
fn mismatched_match_batch_answers_a_typed_error() {
    let matcher = trained_matcher();
    let server = spawn_model_server(&matcher);
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Wire-legal but semantically broken: 2 lefts vs 1 right. The typed client
    // wrapper cannot produce this, so speak the protocol directly.
    let err = client
        .request(&Request::MatchPairs {
            lefts: vec!["a".into(), "b".into()],
            rights: vec!["c".into()],
        })
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("misaligned"), "got: {err}");

    // The connection survives and the aligned form works.
    let scores = client
        .match_pairs(&[("a".to_string(), "c".to_string())])
        .unwrap();
    assert_eq!(scores.len(), 1);
    server.shutdown();
}

#[test]
fn model_less_servers_reject_model_opcodes_with_a_typed_error() {
    let index = BlockingIndex::build(vectors(30, 4, 17), Some(8));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let err = client.embed(&["a".to_string()]).unwrap_err();
    assert!(err.to_string().contains("no model loaded"), "got: {err}");
    let err = client
        .match_pairs(&[("a".to_string(), "b".to_string())])
        .unwrap_err();
    assert!(err.to_string().contains("no model loaded"), "got: {err}");

    // The index workload is unaffected.
    assert!(!client.knn_join(&vectors(2, 4, 18), 2).unwrap().is_empty());
    server.shutdown();
}

/// The online streaming-dedup scenario: serve an initial epoch, add records in the
/// builder role, publish them as a `SWDELTA1` delta snapshot, cold-load the delta
/// in the serving role, and hot-swap it in. New records must be findable, and the
/// epoch-keyed query cache must never replay a pre-delta answer.
#[test]
fn streaming_dedup_serves_the_new_epoch_after_a_delta_publish() {
    let corpus = vectors(120, 8, 21);
    let queries = vectors(6, 8, 22);

    let root = snapshot_dir("stream");
    let base_dir = root.join("epoch-0");
    let delta_dir = root.join("epoch-1");
    ShardedCosineIndex::from_vectors(&corpus, 16)
        .save_snapshot(&base_dir)
        .unwrap();

    // Serving role: cold-load the base epoch, cache enabled (the stale-answer hazard).
    let mut serving = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    serving.set_query_cache_capacity(8);
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let before = client.knn_join(&queries, 3).unwrap();
    // Second identical batch: answered from the query cache, same result.
    assert_eq!(client.knn_join(&queries, 3).unwrap(), before);

    // Builder role: load the same base cold, append the *query vectors themselves*
    // (so each query's top hit must move to its new duplicate), publish a delta.
    let mut builder = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    let new_ids = builder.add_batch(&queries);
    assert_eq!(new_ids, 120..126);
    builder.save_delta_snapshot(&base_dir, &delta_dir).unwrap();

    // Serving role: cold-load the delta epoch and hot-swap it in.
    let mut next = ShardedCosineIndex::load_snapshot(&delta_dir).unwrap();
    next.set_query_cache_capacity(8);
    let expected = next.knn_join(&queries, 3);
    server.publish_index(Arc::new(BlockingIndex::Sharded(next)));

    // The same cached batch must now answer from the new epoch — bit-identical to
    // the in-process delta index, never the stale pre-delta answer.
    let after = client.knn_join(&queries, 3).unwrap();
    assert_eq!(after, expected);
    assert_ne!(after, before, "the delta epoch must change the answer");
    for (q, id) in new_ids.enumerate() {
        assert!(
            after.iter().any(|&(query, hit, _)| query == q && hit == id),
            "query {q} must find its newly added duplicate {id}"
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn shutdown_is_prompt_with_idle_clients_attached() {
    let index = BlockingIndex::build(vectors(20, 4, 9), Some(4));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
    let _idle = ServeClient::connect(server.addr()).unwrap();
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not hang on idle connections"
    );
}

/// Regression (wedged shutdown on wildcard binds): the old accept thread was woken
/// by connecting to the listener's own address, and a `0.0.0.0` bind made that
/// connect target the wildcard — unroutable without rewriting it to a loopback —
/// so shutdown hung until a real client happened to dial in. The reactor wakes
/// workers through loopback socket pairs it owns, so the bind address is
/// irrelevant; this pins that for the wildcard case specifically.
#[test]
fn shutdown_is_prompt_on_a_wildcard_bind() {
    let index = BlockingIndex::build(vectors(20, 4, 9), Some(4));
    let server = Server::spawn(Arc::new(index), "0.0.0.0:0").unwrap();
    // The server must actually be reachable (via loopback at the bound port)...
    let port = server.addr().port();
    let mut client = ServeClient::connect(("127.0.0.1", port)).unwrap();
    client.ping().unwrap();
    assert_eq!(client.knn_join(&vectors(3, 4, 1), 2).unwrap().len(), 6);
    // ...and shutting down with that client still attached must not wedge.
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not hang on a 0.0.0.0 bind"
    );
}
