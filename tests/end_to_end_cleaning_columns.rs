//! Cross-crate integration tests: the data-cleaning and column-matching pipelines plus
//! their baselines.

use sudowoodo::baselines::{
    run_baran, run_column_baseline, ColumnFeaturizer, ErrorDetection, PairClassifier,
};
use sudowoodo::datasets::columns::sample_labeled_pairs;
use sudowoodo::prelude::*;

fn tiny_config() -> SudowoodoConfig {
    let mut c = SudowoodoConfig::test_config();
    c.pretrain_epochs = 1;
    c.finetune_epochs = 2;
    c.max_corpus_size = 120;
    c.blocking_k = 4;
    c
}

#[test]
fn cleaning_pipeline_and_baran_produce_comparable_outputs() {
    let dataset = CleaningProfile::beers().generate(0.08, 41);
    let sudowoodo = CleaningPipeline::new(tiny_config()).run(&dataset, 8);
    let baran = run_baran(&dataset, ErrorDetection::Perfect, 8, 41);
    for f1 in [sudowoodo.correction.f1, baran.correction.f1] {
        assert!((0.0..=1.0).contains(&f1));
    }
    // Consistency of the reported counts (at this tiny scale the matcher may legitimately
    // propose very few corrections; absolute quality is covered by the benchmark harness).
    assert!(sudowoodo.errors_in_scope <= dataset.errors.len());
    assert_eq!(sudowoodo.labeled_rows, 8);
}

#[test]
fn cleaning_pipeline_never_counts_labeled_rows_in_the_evaluation() {
    let dataset = CleaningProfile::hospital().generate(0.1, 43);
    let result = CleaningPipeline::new(tiny_config()).run(&dataset, 10);
    assert!(result.errors_in_scope <= dataset.errors.len());
    assert_eq!(result.labeled_rows, 10);
}

#[test]
fn column_pipeline_discovers_clusters_with_reasonable_purity() {
    let corpus = ColumnProfile {
        num_columns: 80,
        min_values: 5,
        max_values: 8,
    }
    .generate(1.0, 45);
    let mut candidates = Vec::new();
    for i in 0..corpus.len() {
        if let Some(j) = (i + 1..corpus.len()).find(|&j| corpus.same_type(i, j)) {
            candidates.push((i, j));
        }
        let other = (i * 31 + 7) % corpus.len();
        if other != i {
            candidates.push((i.min(other), i.max(other)));
        }
    }
    let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 80, 45);
    let result = ColumnPipeline::new(tiny_config()).run(&corpus, &train, &valid, &test);
    assert!(result.num_clusters >= 1 && result.num_clusters <= corpus.len());
    assert!((0.0..=1.0).contains(&result.purity));
    assert!((0.0..=1.0).contains(&result.test.f1));
}

#[test]
fn sherlock_and_sato_baselines_run_on_the_same_splits_as_sudowoodo() {
    let corpus = ColumnProfile {
        num_columns: 80,
        min_values: 5,
        max_values: 8,
    }
    .generate(1.0, 47);
    let candidates: Vec<(usize, usize)> = (0..corpus.len() - 1).map(|i| (i, i + 1)).collect();
    let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 60, 47);
    for featurizer in [ColumnFeaturizer::Sherlock, ColumnFeaturizer::Sato] {
        let result = run_column_baseline(
            &corpus,
            featurizer,
            PairClassifier::LR,
            &train,
            &valid,
            &test,
            47,
        );
        assert!(
            (0.0..=1.0).contains(&result.test.f1),
            "{}: invalid F1",
            result.method
        );
    }
}
