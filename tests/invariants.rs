//! Property-based cross-crate invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo::augment::{augment, DaOp};
use sudowoodo::core::encoder::Encoder;
use sudowoodo::core::EncoderConfig;
use sudowoodo::index::CosineIndex;
use sudowoodo::text::serialize::{serialize_record, split_serialized_attributes};
use sudowoodo::text::Record;

/// Strategy generating a record with 1-4 attributes of short alphanumeric values.
fn record_strategy() -> impl Strategy<Value = Record> {
    proptest::collection::vec(("[a-z]{2,8}", "[a-z0-9 ]{1,20}"), 1..4).prop_map(|pairs| {
        Record::from_pairs(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (a, v))| (format!("{a}{i}"), v.trim().to_string())),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn serialization_roundtrips_attribute_names(record in record_strategy()) {
        let serialized = serialize_record(&record);
        let parsed = split_serialized_attributes(&serialized);
        prop_assert_eq!(parsed.len(), record.len());
        for ((attr, _), (orig_attr, _)) in parsed.iter().zip(record.iter()) {
            prop_assert_eq!(attr.as_str(), orig_attr);
        }
    }

    #[test]
    fn augmentation_preserves_marker_balance(record in record_strategy(), seed in 0u64..1000) {
        let serialized = serialize_record(&record);
        let mut rng = StdRng::seed_from_u64(seed);
        for op in DaOp::entity_ops() {
            let out = augment(&serialized, op, &mut rng);
            prop_assert_eq!(out.matches("[COL]").count(), out.matches("[VAL]").count(),
                "operator {} broke the [COL]/[VAL] structure: {}", op.name(), out);
        }
    }

    #[test]
    fn embeddings_are_always_unit_length(records in proptest::collection::vec(record_strategy(), 3..6)) {
        let corpus: Vec<String> = records.iter().map(serialize_record).collect();
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &corpus, 1);
        for embedding in encoder.embed_all(&corpus) {
            let norm: f32 = embedding.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-3, "embedding norm {} not unit", norm);
        }
    }

    #[test]
    fn knn_results_are_sorted_and_self_is_nearest(vectors in proptest::collection::vec(
        proptest::collection::vec(-1.0f32..1.0, 4), 2..10)) {
        // Skip degenerate all-zero vectors.
        let vectors: Vec<Vec<f32>> = vectors
            .into_iter()
            .map(|v| if v.iter().all(|x| x.abs() < 1e-3) { vec![1.0, 0.0, 0.0, 0.0] } else { v })
            .collect();
        let index = CosineIndex::build(vectors.clone());
        for (i, query) in vectors.iter().enumerate() {
            let hits = index.top_k(query, 3);
            prop_assert!(!hits.is_empty());
            // Scores sorted descending.
            for pair in hits.windows(2) {
                prop_assert!(pair[0].score >= pair[1].score - 1e-6);
            }
            // The vector itself must be among the top hits with cosine ~1.
            prop_assert!(hits.iter().any(|h| h.id == i || (h.score - hits[0].score).abs() < 1e-5));
        }
    }
}
