//! Randomized cross-crate invariants.
//!
//! The seed expressed these as `proptest` properties; that crate is unavailable in the
//! offline build environment, so the same invariants run as seeded random sweeps over the
//! in-repo `rand` shim instead (deterministic per seed, many cases per invariant).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo::augment::{augment, DaOp};
use sudowoodo::core::encoder::Encoder;
use sudowoodo::core::EncoderConfig;
use sudowoodo::index::CosineIndex;
use sudowoodo::text::serialize::{serialize_record, split_serialized_attributes};
use sudowoodo::text::Record;

/// Random lowercase word of length `lo..=hi`.
fn random_word(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..=hi);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// Random record with 1-3 attributes of short alphanumeric values.
fn random_record(rng: &mut StdRng) -> Record {
    let n = rng.gen_range(1..4usize);
    Record::from_pairs((0..n).map(|i| {
        let attr = format!("{}{i}", random_word(rng, 2, 8));
        let words = rng.gen_range(1..4usize);
        let value = (0..words)
            .map(|_| random_word(rng, 1, 6))
            .collect::<Vec<_>>()
            .join(" ");
        (attr, value)
    }))
}

#[test]
fn serialization_roundtrips_attribute_names() {
    for seed in 0..32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = random_record(&mut rng);
        let serialized = serialize_record(&record);
        let parsed = split_serialized_attributes(&serialized);
        assert_eq!(parsed.len(), record.len(), "seed {seed}");
        for ((attr, _), (orig_attr, _)) in parsed.iter().zip(record.iter()) {
            assert_eq!(attr.as_str(), orig_attr, "seed {seed}");
        }
    }
}

#[test]
fn augmentation_preserves_marker_balance() {
    for seed in 0..32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = random_record(&mut rng);
        let serialized = serialize_record(&record);
        for op in DaOp::entity_ops() {
            let out = augment(&serialized, op, &mut rng);
            assert_eq!(
                out.matches("[COL]").count(),
                out.matches("[VAL]").count(),
                "operator {} broke the [COL]/[VAL] structure (seed {seed}): {out}",
                op.name()
            );
        }
    }
}

#[test]
fn embeddings_are_always_unit_length() {
    for seed in 0..4 {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(3..6usize);
        let corpus: Vec<String> = (0..count)
            .map(|_| serialize_record(&random_record(&mut rng)))
            .collect();
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &corpus, 1);
        for embedding in encoder.embed_all(&corpus) {
            let norm: f32 = embedding.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(
                (norm - 1.0).abs() < 1e-3,
                "embedding norm {norm} not unit (seed {seed})"
            );
        }
    }
}

#[test]
fn knn_results_are_sorted_and_self_is_nearest() {
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(2..10usize);
        let vectors: Vec<Vec<f32>> = (0..count)
            .map(|_| {
                let v: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                // Skip degenerate all-zero vectors.
                if v.iter().all(|x| x.abs() < 1e-3) {
                    vec![1.0, 0.0, 0.0, 0.0]
                } else {
                    v
                }
            })
            .collect();
        let index = CosineIndex::build(vectors.clone());
        for (i, query) in vectors.iter().enumerate() {
            let hits = index.top_k(query, 3);
            assert!(!hits.is_empty());
            // Scores sorted descending.
            for pair in hits.windows(2) {
                assert!(pair[0].score >= pair[1].score - 1e-6, "seed {seed}");
            }
            // The vector itself must be among the top hits with cosine ~1.
            assert!(
                hits.iter()
                    .any(|h| h.id == i || (h.score - hits[0].score).abs() < 1e-5),
                "seed {seed}: self not among nearest"
            );
        }
    }
}
