//! Chaos leg for the serving stack: concurrent clients while failpoints fire on spill
//! reads and socket writes, durable faults that quarantine shards, a one-at-a-time
//! sweep over every registered failpoint, and deterministic load-shed / deadline
//! behavior. Throughout: no handler panics, connections stay usable, degraded
//! responses are flagged, and results are bit-identical whenever nothing is armed.
//!
//! The scatter-gather failover cases live here too: a replica killed or wedged
//! mid-sequence is routed around with **exact** results, and only the loss of every
//! replica of a shard set degrades — explicitly, with the missing shards reported,
//! and never cached. Wedging exactly one replica uses a child `shard_server`
//! process with `SUDOWOODO_FAILPOINTS` set on the child alone (failpoints are
//! process-global, so in-process arming would stall every replica at once).
//!
//! Failpoints are process-global, so this file is its own test binary and every test
//! serializes on one mutex, disarming on exit (panic included) via a guard.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use sudowoodo::coord::{Coordinator, CoordinatorConfig, LocalCluster};
use sudowoodo::faults;
use sudowoodo::index::{BlockingIndex, ShardedCosineIndex};
use sudowoodo::serve::{ClientConfig, RetryPolicy, ServeClient, Server, ServerConfig};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

/// Every failpoint the stack registers, for the one-at-a-time sweep.
const ALL_FAILPOINTS: [&str; 8] = [
    "spill.read.io_err",
    "spill.write.io_err",
    "snapshot.payload.torn",
    "snapshot.rename.skip",
    "snapshot.manifest.torn",
    "delta.manifest.torn",
    "serve.write.stall",
    "serve.subset.stall",
];

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn chaos_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sudowoodo-chaos-{tag}-{}-{n}", std::process::id()))
}

/// RAII cleanup for the snapshot dirs the servers read from.
struct DirCleanup(std::path::PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Serves a fully spilled sharded index from a cold snapshot load, so every join
/// actually reads shard files — the surface `spill.read.io_err` targets.
fn spawn_spilled_server(seed: u64, config: ServerConfig) -> (Server, DirCleanup) {
    let dir = chaos_dir("srv");
    ShardedCosineIndex::from_vectors(&vectors(120, 8, seed), 16)
        .save_snapshot(&dir)
        .expect("save");
    let index = BlockingIndex::load_snapshot(&dir).expect("cold load");
    let server = Server::spawn_with_config(Arc::new(index), "127.0.0.1:0", config).expect("spawn");
    (server, DirCleanup(dir))
}

#[test]
fn concurrent_clients_survive_seeded_transient_chaos_bit_identically() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let (server, _dir) = spawn_spilled_server(1, ServerConfig::default());
    let addr = server.addr();
    let reference = BlockingIndex::build(vectors(120, 8, 1), Some(16));

    // Transient faults: probabilistic (seeded, deterministic streams) on the spill
    // read path and the socket write path. Reads retry inside the storage layer and
    // recover before the retry budget runs out, so every answer under chaos is still
    // complete AND bit-identical — the faults cost retries, never correctness.
    faults::arm(
        "spill.read.io_err",
        faults::Policy::Prob {
            num: 1,
            den: 5,
            seed: 0xC4A05,
        },
    );
    faults::arm(
        "serve.write.stall",
        faults::Policy::Prob {
            num: 1,
            den: 7,
            seed: 0x57A11,
        },
    );

    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let reference = &reference;
            scope.spawn(move || {
                let queries = vectors(8, 8, 200 + t);
                let expected = reference.knn_join(&queries, 5);
                let mut client = ServeClient::connect(addr).expect("connect");
                for round in 0..12 {
                    let (pairs, degraded) =
                        client.knn_join_detailed(&queries, 5).expect("served join");
                    assert!(
                        !degraded,
                        "thread {t} round {round}: transient faults recover"
                    );
                    assert_eq!(pairs.len(), expected.len(), "thread {t} round {round}");
                    for (a, b) in pairs.iter().zip(expected.iter()) {
                        assert_eq!((a.0, a.1), (b.0, b.1), "thread {t} round {round}");
                        assert_eq!(a.2.to_bits(), b.2.to_bits(), "thread {t} round {round}");
                    }
                }
            });
        }
    });

    // Disarmed: still bit-identical, and the shared index never quarantined.
    faults::disarm_all();
    let queries = vectors(8, 8, 300);
    let mut client = ServeClient::connect(addr).expect("connect");
    let (pairs, degraded) = client.knn_join_detailed(&queries, 5).expect("clean join");
    assert!(!degraded);
    assert_eq!(pairs, reference.knn_join(&queries, 5));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.degraded_joins, 0, "stats: {stats:?}");
    if let BlockingIndex::Sharded(sharded) = &*server.index() {
        assert!(sharded.quarantined_shards().is_empty());
    }
    server.shutdown();
}

#[test]
fn durable_faults_degrade_explicitly_and_report_quarantined_shards() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let (server, _dir) = spawn_spilled_server(2, ServerConfig::default());
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let queries = vectors(6, 8, 400);

    // Every spill read fails, past any retry budget: the index quarantines the
    // unreadable shards and the server flags the response as degraded — explicitly
    // incomplete, never a silent wrong answer, never a dropped connection.
    faults::arm("spill.read.io_err", faults::Policy::Always);
    let (pairs, degraded) = client
        .knn_join_detailed(&queries, 5)
        .expect("degraded join");
    assert!(degraded, "durable faults must flag the response");
    assert!(pairs.is_empty(), "every shard is unreadable");
    faults::disarm("spill.read.io_err");

    // The quarantine is visible in the routing report and the server counters.
    if let BlockingIndex::Sharded(sharded) = &*server.index() {
        let report = sharded.routing_report();
        assert!(!report.quarantined_shards.is_empty(), "report: {report:?}");
        assert!(report.shards_quarantined > 0, "report: {report:?}");
    } else {
        panic!("expected the sharded layout");
    }
    let stats = client.stats().expect("stats");
    assert!(stats.degraded_joins >= 1, "stats: {stats:?}");

    // The connection survives and keeps answering (still degraded until a compact,
    // which requires the owning process — the server's share is read-only).
    client.ping().expect("ping after durable faults");
    let (_, still_degraded) = client.knn_join_detailed(&queries, 5).expect("join");
    assert!(still_degraded);
    server.shutdown();
}

#[test]
fn every_registered_failpoint_armed_alone_leaves_the_server_answering() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    for point in ALL_FAILPOINTS {
        let (server, _dir) = spawn_spilled_server(3, ServerConfig::default());
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        let queries = vectors(4, 8, 500);

        faults::arm(point, faults::Policy::Times(3));
        client
            .ping()
            .unwrap_or_else(|e| panic!("{point}: ping: {e}"));
        // The join must ANSWER — complete, degraded, or (after the client's retries)
        // a typed error — but the connection must stay usable either way.
        let _ = client.knn_join_detailed(&queries, 3);
        client
            .ping()
            .unwrap_or_else(|e| panic!("{point}: connection died: {e}"));
        faults::disarm(point);

        // Disarmed (and with any transient quarantine only possible for read
        // faults), a fresh server answers this batch; the surviving connection
        // still answers too.
        let (pairs, _) = client
            .knn_join_detailed(&queries, 3)
            .unwrap_or_else(|e| panic!("{point}: post-disarm join: {e}"));
        assert!(!pairs.is_empty() || queries.is_empty(), "{point}");
        server.shutdown();
    }
}

#[test]
fn a_zero_depth_admission_queue_sheds_every_join_with_busy() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let config = ServerConfig {
        admission_queue_depth: 0,
        ..ServerConfig::default()
    };
    let (server, _dir) = spawn_spilled_server(4, config);
    let client_config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };
    let mut client =
        ServeClient::connect_with_config(server.addr(), client_config).expect("connect");

    // PING bypasses the admission queue — liveness keeps working under full shed.
    client.ping().expect("ping under load shed");
    let err = client.knn_join(&vectors(2, 8, 600), 3).unwrap_err();
    assert!(err.to_string().contains("busy"), "got: {err}");
    // The client retried (2 retries = 3 attempts), every attempt was shed, and the
    // connection is still usable.
    let stats = client.stats().expect("stats");
    assert!(stats.busy_rejections >= 3, "stats: {stats:?}");
    client.ping().expect("connection survives shedding");
    server.shutdown();
}

#[test]
fn an_already_expired_deadline_answers_busy_without_running_the_join() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let config = ServerConfig {
        admission_queue_depth: 64,
        request_deadline: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let (server, _dir) = spawn_spilled_server(5, config);
    let client_config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };
    let mut client =
        ServeClient::connect_with_config(server.addr(), client_config).expect("connect");

    let err = client.knn_join(&vectors(2, 8, 700), 3).unwrap_err();
    assert!(err.to_string().contains("busy"), "got: {err}");
    let stats = client.stats().expect("stats");
    assert!(stats.deadline_expirations >= 1, "stats: {stats:?}");
    assert_eq!(stats.degraded_joins, 0, "the join never ran: {stats:?}");
    client.ping().expect("connection survives expirations");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Scatter-gather failover chaos
// ---------------------------------------------------------------------------

/// A `shard_server` child process with failpoints armed via its own environment —
/// the only way to wedge ONE replica of a cluster (the registry is per-process).
struct ChildServer {
    child: Child,
    endpoint: String,
}

impl ChildServer {
    fn spawn(snapshot: &std::path::Path, failpoints: Option<&str>) -> ChildServer {
        let mut command = Command::new(env!("CARGO_BIN_EXE_shard_server"));
        command
            .arg(snapshot)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if let Some(spec) = failpoints {
            command.env("SUDOWOODO_FAILPOINTS", spec);
        }
        let mut child = command.spawn().expect("spawn shard_server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let endpoint = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected shard_server greeting: {line:?}"))
            .to_string();
        ChildServer { child, endpoint }
    }
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn assert_exact(got: &[(usize, usize, f32)], expected: &[(usize, usize, f32)], context: &str) {
    assert_eq!(got.len(), expected.len(), "{context}: result size");
    for (g, e) in got.iter().zip(expected.iter()) {
        assert_eq!((g.0, g.1), (e.0, e.1), "{context}: (query, id)");
        assert_eq!(g.2.to_bits(), e.2.to_bits(), "{context}: score bits");
    }
}

/// Killing one replica between batches is invisible: every shard keeps a live
/// replica (R=2 over 3 endpoints), so the next join fails over and stays exact
/// and non-degraded.
#[test]
fn killing_one_replica_is_invisible_through_failover() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let corpus = vectors(480, 8, 6);
    let queries = vectors(24, 8, 60);
    let index = Arc::new(BlockingIndex::build(corpus, Some(16)));
    let expected = index.knn_join(&queries, 5);

    let mut cluster = LocalCluster::spawn(Arc::clone(&index), 3).expect("spawn cluster");
    let mut coord = Coordinator::connect(
        &cluster.endpoints(),
        CoordinatorConfig {
            replication: 2,
            ..CoordinatorConfig::default()
        },
    )
    .expect("connect coordinator");
    assert_exact(
        &coord.knn_join(&queries, 5).expect("healthy join"),
        &expected,
        "before the kill",
    );

    cluster.kill(1);

    let outcome = coord.knn_join_report(&queries, 5).expect("failover join");
    assert!(
        !outcome.degraded,
        "one replica of two lost must not degrade (missing: {:?})",
        outcome.quarantined_shards
    );
    assert_exact(&outcome.pairs, &expected, "after the kill");
}

/// A replica that accepts connections but wedges mid-request (the stall
/// failpoint holds the subset join for a full second) is routed around within
/// the coordinator's read timeout — exact results, no degradation. The stall is
/// armed in ONE child process via its environment.
#[test]
fn a_stalled_replica_is_routed_around_exactly() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let dir = chaos_dir("stall");
    let _cleanup = DirCleanup(dir.clone());
    ShardedCosineIndex::from_vectors(&vectors(300, 8, 7), 16)
        .save_snapshot(&dir)
        .expect("save");
    let queries = vectors(20, 8, 70);
    let expected = BlockingIndex::load_snapshot(&dir)
        .expect("cold load")
        .knn_join(&queries, 5);

    // One wedged replica, one healthy; R=2 over 2 endpoints puts both on every
    // shard, so every stalled subset has a live fallback.
    let stalled = ChildServer::spawn(&dir, Some("serve.subset.stall=always"));
    let healthy = ChildServer::spawn(&dir, None);
    let mut coord = Coordinator::connect(
        &[stalled.endpoint.clone(), healthy.endpoint.clone()],
        CoordinatorConfig {
            replication: 2,
            client: ClientConfig {
                read_timeout: Some(Duration::from_millis(300)),
                retry: RetryPolicy {
                    max_retries: 0,
                    ..RetryPolicy::default()
                },
            },
            ..CoordinatorConfig::default()
        },
    )
    .expect("connect coordinator");

    let outcome = coord.knn_join_report(&queries, 5).expect("join");
    assert!(
        !outcome.degraded,
        "the healthy replica covers every shard (missing: {:?})",
        outcome.quarantined_shards
    );
    assert_exact(&outcome.pairs, &expected, "stalled replica routed around");
}

/// What a proxied endpoint does when a `KNN_SUBSET` frame arrives. Everything
/// else (STATS at connect time, PING) is forwarded verbatim, so the coordinator's
/// strict connect handshake succeeds against both behaviors.
#[derive(Clone, Copy)]
enum SubsetScript {
    /// Answer the first subset join with a wire `STATUS_BUSY`, forward the rest:
    /// a healthy process load-shedding exactly once. (No server config can do
    /// this — subsets bypass the admission queue — hence the proxy.)
    BusyOnce,
    /// Drop the connection on every subset join: a transport failure
    /// mid-protocol, while still looking healthy at connect time.
    HangUp,
}

/// A frame-level proxy in front of a real server, scripted per-opcode.
struct ScriptedProxy {
    addr: String,
    subset_requests: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl ScriptedProxy {
    fn spawn(upstream: std::net::SocketAddr, script: SubsetScript) -> ScriptedProxy {
        use sudowoodo::serve::protocol as proto;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let subset_requests = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let shed_pending = Arc::new(AtomicBool::new(true));
        let counter = Arc::clone(&subset_requests);
        let stopped = Arc::clone(&stop);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stopped.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(mut down) = conn else { break };
                let counter = Arc::clone(&counter);
                let shed_pending = Arc::clone(&shed_pending);
                std::thread::spawn(move || {
                    let Ok(mut up) = std::net::TcpStream::connect(upstream) else {
                        return;
                    };
                    while let Ok(Some(frame)) = proto::read_frame(&mut down) {
                        if proto::Request::peek_kind(&frame) == Some(proto::RequestKind::KnnSubset)
                        {
                            counter.fetch_add(1, Ordering::Relaxed);
                            match script {
                                // Dropping both streams is the transport failure.
                                SubsetScript::HangUp => return,
                                SubsetScript::BusyOnce => {
                                    if shed_pending.swap(false, Ordering::Relaxed) {
                                        if proto::write_frame(
                                            &mut down,
                                            &proto::Response::Busy.encode(),
                                        )
                                        .is_err()
                                        {
                                            return;
                                        }
                                        continue;
                                    }
                                }
                            }
                        }
                        if proto::write_frame(&mut up, &frame).is_err() {
                            return;
                        }
                        let Ok(Some(reply)) = proto::read_frame(&mut up) else {
                            return;
                        };
                        if proto::write_frame(&mut down, &reply).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        ScriptedProxy {
            addr,
            subset_requests,
            stop,
        }
    }

    fn subset_requests(&self) -> u64 {
        self.subset_requests.load(Ordering::Relaxed)
    }
}

impl Drop for ScriptedProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop so the thread exits.
        let _ = std::net::TcpStream::connect(&self.addr);
    }
}

/// BUSY and transport failure are opposite failover signals, and this pins the
/// difference within ONE call. Endpoint A sheds its first subset join with BUSY
/// (a healthy process saying "not now"); endpoint B accepts connections but
/// hangs up on every subset join (a dead process that still passes the connect
/// handshake). Shards with A as primary get shed, fail over toward B, find it
/// dead, and are lost. Shards with B as primary find B dead and fail over to A —
/// which MUST still be eligible even though it shed earlier in the same call.
/// A coordinator that treated BUSY like a dead endpoint would blacklist A in
/// round one and lose every shard; the report pins that exactly the B-primary
/// shards survive, served by the endpoint that had already said BUSY once.
#[test]
fn a_busy_shed_does_not_blacklist_an_endpoint_but_a_hangup_does() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let corpus = vectors(480, 8, 9);
    let queries = vectors(24, 8, 90);
    let index = Arc::new(BlockingIndex::build(corpus, Some(16)));
    let upstream = Server::spawn(Arc::clone(&index), "127.0.0.1:0").expect("spawn upstream");

    // Placement hashes the proxies' ephemeral addresses, so whether a given
    // shard lands A-primary or B-primary varies per run; the test needs both
    // kinds to exist. Re-bind (fresh ports, fresh placement) until they do.
    let mut tries = 0;
    let (busy, dead, mut coord, a_primary, b_primary) = loop {
        let busy = ScriptedProxy::spawn(upstream.addr(), SubsetScript::BusyOnce);
        let dead = ScriptedProxy::spawn(upstream.addr(), SubsetScript::HangUp);
        let coord = Coordinator::connect(
            &[busy.addr.clone(), dead.addr.clone()],
            CoordinatorConfig::default(),
        )
        .expect("connect through the proxies");
        let primaries = |endpoint: usize| -> Vec<usize> {
            coord
                .placement()
                .iter()
                .enumerate()
                .filter(|(_, replicas)| replicas[0] == endpoint)
                .map(|(shard, _)| shard)
                .collect()
        };
        let (a_primary, b_primary) = (primaries(0), primaries(1));
        if !a_primary.is_empty() && !b_primary.is_empty() {
            break (busy, dead, coord, a_primary, b_primary);
        }
        tries += 1;
        assert!(tries < 16, "no mixed placement in {tries} tries");
    };

    // Call 1: A sheds once. The B-primary shards reach A *after* the shed and
    // must still be served by it; the A-primary shards exhaust (A shed them,
    // B is dead) and are reported lost — nothing silently dropped.
    let outcome = coord.knn_join_report(&queries, 5).expect("join");
    assert!(
        outcome.degraded,
        "A-primary shards have no live replica left"
    );
    assert_eq!(
        outcome.quarantined_shards, a_primary,
        "exactly the A-primary shards are lost"
    );
    let expected_covered = index.knn_join_subset_report(&queries, 5, &b_primary).pairs;
    assert_exact(
        &outcome.pairs,
        &expected_covered,
        "B-primary shards served by the endpoint that shed BUSY earlier",
    );
    assert_eq!(
        busy.subset_requests(),
        2,
        "A: one shed + one re-probe (a blacklisting coordinator would stop at 1)"
    );
    assert_eq!(
        dead.subset_requests(),
        1,
        "B: one hangup makes it call-fatal; it must not be re-probed in-call"
    );

    // Call 2: the shed was transient and deadness was call-scoped. A now serves
    // everything (B's shards fail over to it), so the join is whole again.
    let again = coord.knn_join_report(&queries, 5).expect("second join");
    assert!(!again.degraded, "missing: {:?}", again.quarantined_shards);
    assert_exact(
        &again.pairs,
        &index.knn_join(&queries, 5),
        "one BUSY answer must not leave any lasting mark",
    );
    assert_eq!(dead.subset_requests(), 2, "B is re-probed on the NEXT call");
    upstream.shutdown();
}

/// Losing EVERY replica of a shard set is the one unrecoverable case: the join
/// still answers, explicitly degraded, reporting exactly the shards with no live
/// replica — and a repeated batch recomputes the same degraded answer (the
/// coordinator holds no cache, so a degraded result can never be replayed as
/// complete).
#[test]
fn losing_every_replica_of_a_shard_set_degrades_explicitly_and_never_caches() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let corpus = vectors(480, 8, 8);
    let queries = vectors(24, 8, 80);
    let index = Arc::new(BlockingIndex::build(corpus, Some(16)));

    let mut cluster = LocalCluster::spawn(Arc::clone(&index), 3).expect("spawn cluster");
    let mut coord = Coordinator::connect(
        &cluster.endpoints(),
        CoordinatorConfig {
            replication: 2,
            ..CoordinatorConfig::default()
        },
    )
    .expect("connect coordinator");

    // Endpoints 0 and 1 die; exactly the shards whose whole replica set is
    // {0, 1} lose coverage. The placement is deterministic, so this set is too.
    let expected_missing: Vec<usize> = coord
        .placement()
        .iter()
        .enumerate()
        .filter(|(_, replicas)| replicas.iter().all(|&e| e == 0 || e == 1))
        .map(|(shard, _)| shard)
        .collect();
    assert!(
        !expected_missing.is_empty(),
        "fixture must place at least one shard entirely on the doomed endpoints \
         (placement: {:?})",
        coord.placement()
    );
    let covered: Vec<usize> = (0..coord.num_shards())
        .filter(|s| !expected_missing.contains(s))
        .collect();
    let expected_pairs = index.knn_join_subset_report(&queries, 5, &covered).pairs;

    cluster.kill(0);
    cluster.kill(0); // original endpoint 1

    let outcome = coord.knn_join_report(&queries, 5).expect("degraded join");
    assert!(outcome.degraded, "total shard-set loss must be explicit");
    assert_eq!(
        outcome.quarantined_shards, expected_missing,
        "the missing shards must be reported exactly"
    );
    assert_exact(
        &outcome.pairs,
        &expected_pairs,
        "covered shards still answer exactly",
    );

    // Never cached: the identical batch is recomputed and stays degraded and
    // bit-identical — it cannot resurface later as a complete answer.
    let again = coord.knn_join_report(&queries, 5).expect("repeat join");
    assert_eq!(
        again, outcome,
        "degraded outcomes must not be replayed from any cache"
    );
}
