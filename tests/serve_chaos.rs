//! Chaos leg for the serving stack: concurrent clients while failpoints fire on spill
//! reads and socket writes, durable faults that quarantine shards, a one-at-a-time
//! sweep over every registered failpoint, and deterministic load-shed / deadline
//! behavior. Throughout: no handler panics, connections stay usable, degraded
//! responses are flagged, and results are bit-identical whenever nothing is armed.
//!
//! Failpoints are process-global, so this file is its own test binary and every test
//! serializes on one mutex, disarming on exit (panic included) via a guard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use sudowoodo::faults;
use sudowoodo::index::{BlockingIndex, ShardedCosineIndex};
use sudowoodo::serve::{ClientConfig, RetryPolicy, ServeClient, Server, ServerConfig};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

/// Every failpoint the stack registers, for the one-at-a-time sweep.
const ALL_FAILPOINTS: [&str; 6] = [
    "spill.read.io_err",
    "spill.write.io_err",
    "snapshot.payload.torn",
    "snapshot.rename.skip",
    "snapshot.manifest.torn",
    "serve.write.stall",
];

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn chaos_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sudowoodo-chaos-{tag}-{}-{n}", std::process::id()))
}

/// RAII cleanup for the snapshot dirs the servers read from.
struct DirCleanup(std::path::PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Serves a fully spilled sharded index from a cold snapshot load, so every join
/// actually reads shard files — the surface `spill.read.io_err` targets.
fn spawn_spilled_server(seed: u64, config: ServerConfig) -> (Server, DirCleanup) {
    let dir = chaos_dir("srv");
    ShardedCosineIndex::from_vectors(&vectors(120, 8, seed), 16)
        .save_snapshot(&dir)
        .expect("save");
    let index = BlockingIndex::load_snapshot(&dir).expect("cold load");
    let server = Server::spawn_with_config(Arc::new(index), "127.0.0.1:0", config).expect("spawn");
    (server, DirCleanup(dir))
}

#[test]
fn concurrent_clients_survive_seeded_transient_chaos_bit_identically() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let (server, _dir) = spawn_spilled_server(1, ServerConfig::default());
    let addr = server.addr();
    let reference = BlockingIndex::build(vectors(120, 8, 1), Some(16));

    // Transient faults: probabilistic (seeded, deterministic streams) on the spill
    // read path and the socket write path. Reads retry inside the storage layer and
    // recover before the retry budget runs out, so every answer under chaos is still
    // complete AND bit-identical — the faults cost retries, never correctness.
    faults::arm(
        "spill.read.io_err",
        faults::Policy::Prob {
            num: 1,
            den: 5,
            seed: 0xC4A05,
        },
    );
    faults::arm(
        "serve.write.stall",
        faults::Policy::Prob {
            num: 1,
            den: 7,
            seed: 0x57A11,
        },
    );

    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let reference = &reference;
            scope.spawn(move || {
                let queries = vectors(8, 8, 200 + t);
                let expected = reference.knn_join(&queries, 5);
                let mut client = ServeClient::connect(addr).expect("connect");
                for round in 0..12 {
                    let (pairs, degraded) =
                        client.knn_join_detailed(&queries, 5).expect("served join");
                    assert!(
                        !degraded,
                        "thread {t} round {round}: transient faults recover"
                    );
                    assert_eq!(pairs.len(), expected.len(), "thread {t} round {round}");
                    for (a, b) in pairs.iter().zip(expected.iter()) {
                        assert_eq!((a.0, a.1), (b.0, b.1), "thread {t} round {round}");
                        assert_eq!(a.2.to_bits(), b.2.to_bits(), "thread {t} round {round}");
                    }
                }
            });
        }
    });

    // Disarmed: still bit-identical, and the shared index never quarantined.
    faults::disarm_all();
    let queries = vectors(8, 8, 300);
    let mut client = ServeClient::connect(addr).expect("connect");
    let (pairs, degraded) = client.knn_join_detailed(&queries, 5).expect("clean join");
    assert!(!degraded);
    assert_eq!(pairs, reference.knn_join(&queries, 5));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.degraded_joins, 0, "stats: {stats:?}");
    if let BlockingIndex::Sharded(sharded) = &**server.index() {
        assert!(sharded.quarantined_shards().is_empty());
    }
    server.shutdown();
}

#[test]
fn durable_faults_degrade_explicitly_and_report_quarantined_shards() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let (server, _dir) = spawn_spilled_server(2, ServerConfig::default());
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let queries = vectors(6, 8, 400);

    // Every spill read fails, past any retry budget: the index quarantines the
    // unreadable shards and the server flags the response as degraded — explicitly
    // incomplete, never a silent wrong answer, never a dropped connection.
    faults::arm("spill.read.io_err", faults::Policy::Always);
    let (pairs, degraded) = client
        .knn_join_detailed(&queries, 5)
        .expect("degraded join");
    assert!(degraded, "durable faults must flag the response");
    assert!(pairs.is_empty(), "every shard is unreadable");
    faults::disarm("spill.read.io_err");

    // The quarantine is visible in the routing report and the server counters.
    if let BlockingIndex::Sharded(sharded) = &**server.index() {
        let report = sharded.routing_report();
        assert!(!report.quarantined_shards.is_empty(), "report: {report:?}");
        assert!(report.shards_quarantined > 0, "report: {report:?}");
    } else {
        panic!("expected the sharded layout");
    }
    let stats = client.stats().expect("stats");
    assert!(stats.degraded_joins >= 1, "stats: {stats:?}");

    // The connection survives and keeps answering (still degraded until a compact,
    // which requires the owning process — the server's share is read-only).
    client.ping().expect("ping after durable faults");
    let (_, still_degraded) = client.knn_join_detailed(&queries, 5).expect("join");
    assert!(still_degraded);
    server.shutdown();
}

#[test]
fn every_registered_failpoint_armed_alone_leaves_the_server_answering() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    for point in ALL_FAILPOINTS {
        let (server, _dir) = spawn_spilled_server(3, ServerConfig::default());
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        let queries = vectors(4, 8, 500);

        faults::arm(point, faults::Policy::Times(3));
        client
            .ping()
            .unwrap_or_else(|e| panic!("{point}: ping: {e}"));
        // The join must ANSWER — complete, degraded, or (after the client's retries)
        // a typed error — but the connection must stay usable either way.
        let _ = client.knn_join_detailed(&queries, 3);
        client
            .ping()
            .unwrap_or_else(|e| panic!("{point}: connection died: {e}"));
        faults::disarm(point);

        // Disarmed (and with any transient quarantine only possible for read
        // faults), a fresh server answers this batch; the surviving connection
        // still answers too.
        let (pairs, _) = client
            .knn_join_detailed(&queries, 3)
            .unwrap_or_else(|e| panic!("{point}: post-disarm join: {e}"));
        assert!(!pairs.is_empty() || queries.is_empty(), "{point}");
        server.shutdown();
    }
}

#[test]
fn a_zero_depth_admission_queue_sheds_every_join_with_busy() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let config = ServerConfig {
        admission_queue_depth: 0,
        request_deadline: None,
    };
    let (server, _dir) = spawn_spilled_server(4, config);
    let client_config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };
    let mut client =
        ServeClient::connect_with_config(server.addr(), client_config).expect("connect");

    // PING bypasses the admission queue — liveness keeps working under full shed.
    client.ping().expect("ping under load shed");
    let err = client.knn_join(&vectors(2, 8, 600), 3).unwrap_err();
    assert!(err.to_string().contains("busy"), "got: {err}");
    // The client retried (2 retries = 3 attempts), every attempt was shed, and the
    // connection is still usable.
    let stats = client.stats().expect("stats");
    assert!(stats.busy_rejections >= 3, "stats: {stats:?}");
    client.ping().expect("connection survives shedding");
    server.shutdown();
}

#[test]
fn an_already_expired_deadline_answers_busy_without_running_the_join() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let config = ServerConfig {
        admission_queue_depth: 64,
        request_deadline: Some(Duration::ZERO),
    };
    let (server, _dir) = spawn_spilled_server(5, config);
    let client_config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };
    let mut client =
        ServeClient::connect_with_config(server.addr(), client_config).expect("connect");

    let err = client.knn_join(&vectors(2, 8, 700), 3).unwrap_err();
    assert!(err.to_string().contains("busy"), "got: {err}");
    let stats = client.stats().expect("stats");
    assert!(stats.deadline_expirations >= 1, "stats: {stats:?}");
    assert_eq!(stats.degraded_joins, 0, "the join never ran: {stats:?}");
    client.ping().expect("connection survives expirations");
    server.shutdown();
}
