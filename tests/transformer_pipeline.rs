//! End-to-end smoke tier for `EncoderKind::Transformer`.
//!
//! The pipeline integration tests historically leaned on MeanPool-shaped configurations;
//! this suite pins the batched masked-attention Transformer path through the full EM flow
//! (pre-train → block → pseudo-label → fine-tune → evaluate) and asserts the tape-graph
//! and inference forwards of the *trained* encoder stay identical — the end-to-end
//! counterpart of the layer-level `crates/nn/tests/attention_equivalence.rs` tier.

use sudowoodo::prelude::*;
use sudowoodo_augment::CutoffPlan;
use sudowoodo_nn::tape::Tape;

fn transformer_config() -> SudowoodoConfig {
    let mut c = SudowoodoConfig::test_config();
    c.encoder.kind = EncoderKind::Transformer;
    c.pretrain_epochs = 1;
    c.finetune_epochs = 2;
    c.max_corpus_size = 120;
    c.blocking_k = 5;
    c
}

#[test]
fn em_pipeline_runs_end_to_end_with_the_transformer_encoder() {
    let dataset = EmProfile::abt_buy().generate(0.08, 33);
    let result = EmPipeline::new(transformer_config()).run(&dataset, Some(40));

    assert!(
        result.matching.f1.is_finite() && (0.0..=1.0).contains(&result.matching.f1),
        "Transformer pipeline produced a bogus F1: {}",
        result.matching.f1
    );
    assert!(
        (0.0..=1.0).contains(&result.blocking.recall),
        "Transformer pipeline produced a bogus blocking recall: {}",
        result.blocking.recall
    );
    assert!(result
        .pretrain_report
        .epoch_losses
        .iter()
        .all(|l| l.is_finite()));
}

#[test]
fn trained_transformer_encoder_batch_and_inference_paths_agree() {
    // Train on real pipeline data (weights move away from their benign initialization),
    // then require the batched tape graph (`encode_batch`, the training path) and the
    // batched inference path (`infer_chunk`) — and the frozen per-sequence oracle — to
    // produce identical embeddings, seeded and deterministic.
    let dataset = EmProfile::abt_buy().generate(0.08, 55);
    let corpus = dataset.corpus();
    let (encoder, _report) = pretrain(&corpus, &transformer_config());

    let texts: Vec<String> = corpus.iter().take(24).cloned().collect();
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();

    let mut tape = Tape::new();
    let batched = encoder.encode_batch(&mut tape, &refs, &CutoffPlan::noop());
    let batched = tape.value(batched).clone();

    let inferred = encoder.infer_chunk(&texts);
    assert!(
        batched.approx_eq(&inferred, 1e-4),
        "trained Transformer: encode_batch and infer_chunk embeddings diverged"
    );

    let reference = encoder.infer_chunk_reference(&texts);
    assert!(
        inferred.approx_eq(&reference, 1e-4),
        "trained Transformer: batched inference diverged from the per-sequence oracle"
    );

    // embed_all routes through infer_chunk in parallel chunks; it must agree row-by-row.
    let all = encoder.embed_all(&texts);
    for (r, row) in all.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            assert!(
                (v - inferred.get(r, c)).abs() < 1e-5,
                "embed_all row {r} diverged from infer_chunk"
            );
        }
    }
}
