//! The distributed acceptance tier: scatter-gather over real OS processes must be
//! **bit-identical** to a single-process `knn_join`.
//!
//! Each test publishes one snapshot, spawns `shard_server` child processes that
//! cold-load it (the production shape: separate address spaces, separate page
//! caches, nothing shared but the read-only snapshot directory), places shards
//! onto them with the consistent-hash ring, and compares the coordinator's merged
//! answer against an in-process join over the same cold-loaded snapshot — ids
//! AND score bits, across shard capacities and replication factors. The flagship
//! case is the same 2k-query × 10k-corpus fixture the sharded/dense equivalence
//! tier uses, on a 3-process cluster with replication 2.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use sudowoodo::coord::{Coordinator, CoordinatorConfig};
use sudowoodo::index::{BlockingIndex, ShardedCosineIndex};

/// Deterministic pseudo-random vectors (std-only LCG; same helper as serve_e2e).
fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn snapshot_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sudowoodo-dist-{tag}-{}-{n}", std::process::id()))
}

struct DirCleanup(PathBuf);
impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One `shard_server` child process serving a snapshot. The child exits when its
/// stdin closes, so a panicking (or finished) test never leaks a server.
struct ChildServer {
    child: Child,
    endpoint: String,
}

impl ChildServer {
    fn spawn(snapshot: &std::path::Path) -> ChildServer {
        Self::spawn_with_env(snapshot, &[])
    }

    /// `env` entries are set on the child only — how chaos tests arm failpoints in
    /// exactly one replica of a cluster.
    fn spawn_with_env(snapshot: &std::path::Path, env: &[(&str, &str)]) -> ChildServer {
        let mut command = Command::new(env!("CARGO_BIN_EXE_shard_server"));
        command
            .arg(snapshot)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        for (key, value) in env {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("spawn shard_server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let endpoint = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected shard_server greeting: {line:?}"))
            .to_string();
        ChildServer { child, endpoint }
    }

    /// Kills the replica the way an operator loses one: abruptly. (Closing stdin
    /// would be the graceful path; tests that fail a replica mid-batch need the
    /// abrupt one.)
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        drop(self.child.stdin.take()); // EOF → clean child shutdown
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_cluster(snapshot: &std::path::Path, n: usize) -> Vec<ChildServer> {
    (0..n).map(|_| ChildServer::spawn(snapshot)).collect()
}

fn endpoints(cluster: &[ChildServer]) -> Vec<String> {
    cluster.iter().map(|c| c.endpoint.clone()).collect()
}

/// Pairs must agree exactly: same (query, id) sequence, same score **bits**.
fn assert_bit_identical(
    got: &[(usize, usize, f32)],
    expected: &[(usize, usize, f32)],
    context: &str,
) {
    assert_eq!(got.len(), expected.len(), "{context}: result size");
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        assert_eq!((g.0, g.1), (e.0, e.1), "{context}: pair {i} (query, id)");
        assert_eq!(
            g.2.to_bits(),
            e.2.to_bits(),
            "{context}: pair {i} score bits ({} vs {})",
            g.2,
            e.2
        );
    }
}

/// The flagship: 2k × 10k, three processes, replication 2 — the distributed
/// answer is bit-identical to the single-process join over the same snapshot.
#[test]
fn three_process_cluster_matches_single_process_on_2k_x_10k() {
    let dim = 16;
    let k = 10;
    let corpus = vectors(10_000, dim, 11);
    let queries = vectors(2_000, dim, 12);

    let dir = snapshot_dir("flagship");
    let _cleanup = DirCleanup(dir.clone());
    ShardedCosineIndex::from_vectors(&corpus, 64)
        .save_snapshot(&dir)
        .unwrap();

    // Single-process reference: a cold load of the very same snapshot.
    let local = BlockingIndex::load_snapshot(&dir).unwrap();
    let expected = local.knn_join(&queries, k);
    assert_eq!(expected.len(), queries.len() * k);

    let cluster = spawn_cluster(&dir, 3);
    let mut coord = Coordinator::connect(
        &endpoints(&cluster),
        CoordinatorConfig {
            replication: 2,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    assert_eq!(coord.num_shards(), 10_000usize.div_ceil(64));
    assert_eq!(coord.len(), 10_000);

    let outcome = coord.knn_join_report(&queries, k).unwrap();
    assert!(!outcome.degraded, "a healthy cluster must not degrade");
    assert!(outcome.quarantined_shards.is_empty());
    assert_bit_identical(&outcome.pairs, &expected, "3 processes, R=2, capacity 64");
}

/// Placement must be invisible across shard capacities (including capacity 1 —
/// one row per shard, the worst case for placement fan-out) and replication
/// factors {1, 2}, every process cold-loading the snapshot.
#[test]
fn equivalence_holds_across_capacities_and_replication() {
    let dim = 12;
    let k = 5;
    let corpus = vectors(2_000, dim, 21);
    let queries = vectors(200, dim, 22);

    for capacity in [1usize, 7, 64] {
        let dir = snapshot_dir(&format!("cap{capacity}"));
        let _cleanup = DirCleanup(dir.clone());
        ShardedCosineIndex::from_vectors(&corpus, capacity)
            .save_snapshot(&dir)
            .unwrap();
        let local = BlockingIndex::load_snapshot(&dir).unwrap();
        let expected = local.knn_join(&queries, k);

        for replication in [1usize, 2] {
            let cluster = spawn_cluster(&dir, 2);
            let mut coord = Coordinator::connect(
                &endpoints(&cluster),
                CoordinatorConfig {
                    replication,
                    ..CoordinatorConfig::default()
                },
            )
            .unwrap();
            let got = coord.knn_join(&queries, k).unwrap();
            assert_bit_identical(
                &got,
                &expected,
                &format!("capacity {capacity}, replication {replication}"),
            );
        }
    }
}

/// A snapshot published as a delta chain serves identically: the coordinator and
/// every child process resolve the chain on cold load, and the distributed answer
/// matches the single-process one over the chain head.
#[test]
fn delta_chained_snapshot_serves_identically_across_processes() {
    let dim = 12;
    let k = 5;
    let base_rows = vectors(1_200, dim, 31);
    let added = vectors(300, dim, 32);
    let queries = vectors(150, dim, 33);

    let base_dir = snapshot_dir("delta-base");
    let _cleanup_base = DirCleanup(base_dir.clone());
    let delta_dir = snapshot_dir("delta-head");
    let _cleanup_delta = DirCleanup(delta_dir.clone());

    let index = ShardedCosineIndex::from_vectors(&base_rows, 128);
    index.save_snapshot(&base_dir).unwrap();
    let mut index = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    index.add_batch(&added);
    index.save_delta_snapshot(&base_dir, &delta_dir).unwrap();

    let local = BlockingIndex::load_snapshot(&delta_dir).unwrap();
    assert_eq!(local.len(), 1_500);
    let expected = local.knn_join(&queries, k);

    let cluster = spawn_cluster(&delta_dir, 2);
    let mut coord = Coordinator::connect(
        &endpoints(&cluster),
        CoordinatorConfig {
            replication: 2,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let got = coord.knn_join(&queries, k).unwrap();
    assert_bit_identical(&got, &expected, "delta-chained snapshot, 2 processes");
}

/// Killing one replica mid-run is invisible when every shard keeps a survivor:
/// the next join is still bit-identical and not degraded. (The wider chaos matrix
/// lives in `serve_chaos.rs`; this is the distributed tier's own smoke case.)
#[test]
fn losing_one_replica_of_two_is_invisible() {
    let dim = 12;
    let k = 5;
    let corpus = vectors(2_000, dim, 41);
    let queries = vectors(120, dim, 42);

    let dir = snapshot_dir("failover");
    let _cleanup = DirCleanup(dir.clone());
    ShardedCosineIndex::from_vectors(&corpus, 64)
        .save_snapshot(&dir)
        .unwrap();
    let local = BlockingIndex::load_snapshot(&dir).unwrap();
    let expected = local.knn_join(&queries, k);

    let mut cluster = spawn_cluster(&dir, 3);
    let mut coord = Coordinator::connect(
        &endpoints(&cluster),
        CoordinatorConfig {
            replication: 2,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    assert_bit_identical(
        &coord.knn_join(&queries, k).unwrap(),
        &expected,
        "before the kill",
    );

    cluster.remove(1).kill(); // abrupt death, not graceful shutdown

    let outcome = coord.knn_join_report(&queries, k).unwrap();
    assert!(
        !outcome.degraded,
        "R=2 must survive one process loss without degrading \
         (missing: {:?})",
        outcome.quarantined_shards
    );
    assert_bit_identical(&outcome.pairs, &expected, "after the kill");
}

/// `shard_server` refuses a bad snapshot path with a diagnostic instead of
/// serving nothing (guards the test harness itself).
#[test]
fn shard_server_rejects_a_missing_snapshot() {
    let output = Command::new(env!("CARGO_BIN_EXE_shard_server"))
        .arg("/nonexistent/sudowoodo-snapshot")
        .output()
        .expect("run shard_server");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("failed to load snapshot"));
}

/// Keep the helper honest: a spawned child really does exit when stdin closes.
#[test]
fn shard_server_exits_on_stdin_eof() {
    let dim = 8;
    let corpus = vectors(100, dim, 51);
    let dir = snapshot_dir("eof");
    let _cleanup = DirCleanup(dir.clone());
    ShardedCosineIndex::from_vectors(&corpus, 32)
        .save_snapshot(&dir)
        .unwrap();

    let mut server = ChildServer::spawn(&dir);
    let mut stdin = server.child.stdin.take().expect("stdin piped");
    stdin.flush().ok();
    drop(stdin); // EOF
    let status = server.child.wait().expect("child exits after stdin EOF");
    assert!(status.success());
}
