//! Cross-crate integration tests: the full Entity Matching flow (datasets → pre-training →
//! blocking → pseudo labeling → fine-tuning → evaluation) and its baselines.

use sudowoodo::baselines::{run_auto_fuzzy_join, run_ditto, run_zeroer};
use sudowoodo::prelude::*;

fn tiny_config() -> SudowoodoConfig {
    let mut c = SudowoodoConfig::test_config();
    c.pretrain_epochs = 1;
    c.finetune_epochs = 2;
    c.max_corpus_size = 150;
    c.blocking_k = 5;
    c
}

#[test]
fn sudowoodo_pipeline_beats_the_unsupervised_baselines_on_clean_data() {
    // On the easy (DBLP-ACM-like) dataset, the fine-tuned matcher with pseudo labels should
    // comfortably beat the rule/generative unsupervised baselines.
    let dataset = EmProfile::dblp_acm().generate(0.1, 21);
    let sudowoodo = EmPipeline::new(tiny_config()).run(&dataset, Some(60));
    let zeroer = run_zeroer(&dataset, 21);
    let autofj = run_auto_fuzzy_join(&dataset);
    // At this miniature scale the synthetic easy dataset is almost perfectly separable by
    // raw similarity, so the baselines can reach ~1.0; only require that the learned matcher
    // stays in the same ballpark (the full comparison is produced by the benchmark harness).
    // The from-scratch compact Transformer (SUDOWOODO_TEST_ENCODER=transformer CI leg)
    // learns more slowly than MeanPool in one miniature epoch, so it gets a wider margin —
    // this test guards pipeline functionality, not architecture quality.
    let margin = match tiny_config().encoder.kind {
        EncoderKind::MeanPool => 0.15,
        EncoderKind::Transformer => 0.30,
    };
    assert!(
        sudowoodo.matching.f1 + margin >= zeroer.matching.f1.min(autofj.matching.f1),
        "Sudowoodo F1 {} should not fall far behind the weaker unsupervised baseline ({} / {})",
        sudowoodo.matching.f1,
        zeroer.matching.f1,
        autofj.matching.f1
    );
    assert!(
        sudowoodo.matching.f1 > 0.3,
        "F1 too low: {:?}",
        sudowoodo.matching
    );
}

#[test]
fn blocking_with_learned_embeddings_reaches_high_recall_at_moderate_k() {
    let dataset = EmProfile::dblp_acm().generate(0.1, 23);
    let pipeline = EmPipeline::new(tiny_config());
    let result = pipeline.run(&dataset, Some(40));
    assert!(
        result.blocking.recall > 0.5,
        "blocking recall too low: {:?}",
        result.blocking
    );
    // The candidate set must be far smaller than the cross product.
    assert!(result.blocking.cssr < 0.5);
}

#[test]
fn pseudo_labels_are_mostly_correct_on_easy_data() {
    let dataset = EmProfile::dblp_acm().generate(0.1, 25);
    let result = EmPipeline::new(tiny_config()).run(&dataset, Some(40));
    let (tpr, tnr) = result
        .pseudo_quality
        .expect("pseudo labels enabled by default");
    // Negative pseudo labels should be almost always right (they dominate the candidate
    // space); positive ones should be clearly better than random given the 18% positive rate.
    assert!(tnr > 0.8, "TNR too low: {tnr}");
    assert!(tpr > 0.3, "TPR too low: {tpr}");
}

#[test]
fn ablation_variants_and_ditto_all_run_on_the_same_dataset() {
    let dataset = EmProfile::abt_buy().generate(0.08, 27);
    let config = tiny_config();
    for variant in [
        config.clone().simclr(),
        config.clone().without("PL"),
        config.clone(),
    ] {
        let name = variant.variant_name();
        let result = EmPipeline::new(variant).run(&dataset, Some(30));
        assert!(
            result.matching.f1.is_finite() && (0.0..=1.0).contains(&result.matching.f1),
            "variant {name} produced an invalid F1"
        );
    }
    let ditto = run_ditto(&dataset, Some(30), &config);
    assert!((0.0..=1.0).contains(&ditto.matching.f1));
}

#[test]
fn pipeline_is_deterministic_for_a_fixed_seed() {
    let dataset = EmProfile::beer().generate(0.1, 31);
    let a = EmPipeline::new(tiny_config()).run(&dataset, Some(30));
    let b = EmPipeline::new(tiny_config()).run(&dataset, Some(30));
    assert_eq!(a.matching.f1, b.matching.f1);
    assert_eq!(a.blocking.num_candidates, b.blocking.num_candidates);
    assert_eq!(a.num_pseudo_labels, b.num_pseudo_labels);
}
