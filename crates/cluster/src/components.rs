//! Connected components over pairwise-match edges, plus cluster-quality metrics.
//!
//! §V-B / Appendix C: Sudowoodo turns the pairwise column-matching predictions into clusters
//! of same-type columns by computing connected components, and reports the average purity of
//! the discovered clusters against the ground-truth types.

use std::collections::HashMap;

/// Union-find (disjoint-set) structure with path compression and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// Creates a structure with `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut current = x;
        while self.parent[current] != root {
            let next = self.parent[current];
            self.parent[current] = root;
            current = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`; returns `true` when they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Computes connected components of an undirected graph over `n` nodes given by `edges`.
///
/// Returns the clusters sorted by decreasing size (singletons included).
pub fn connected_components(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for &(a, b) in edges {
        assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} nodes");
        uf.union(a, b);
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let root = uf.find(i);
        groups.entry(root).or_default().push(i);
    }
    let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    clusters
}

/// Average purity of clusters against ground-truth labels, weighted by cluster size.
///
/// The purity of a cluster is the fraction of its members carrying the cluster's majority
/// label. Singleton clusters are trivially pure; pass `min_size` to exclude small clusters
/// from the average (the paper reports purity over discovered multi-column clusters).
pub fn cluster_purity(clusters: &[Vec<usize>], labels: &[usize], min_size: usize) -> f32 {
    let mut weighted = 0.0f32;
    let mut total = 0usize;
    for cluster in clusters {
        if cluster.len() < min_size {
            continue;
        }
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &member in cluster {
            *counts.entry(labels[member]).or_insert(0) += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        weighted += majority as f32;
        total += cluster.len();
    }
    if total == 0 {
        0.0
    } else {
        weighted / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basic_operations() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn components_from_edges() {
        let clusters = connected_components(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4]);
        assert_eq!(clusters[2], vec![5]);
    }

    #[test]
    fn components_with_no_edges_are_singletons() {
        let clusters = connected_components(3, &[]);
        assert_eq!(clusters.len(), 3);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn components_reject_out_of_range_edges() {
        let _ = connected_components(2, &[(0, 5)]);
    }

    #[test]
    fn purity_of_perfect_and_mixed_clusters() {
        // labels: two types
        let labels = vec![0, 0, 0, 1, 1, 1];
        let perfect = vec![vec![0, 1, 2], vec![3, 4, 5]];
        assert!((cluster_purity(&perfect, &labels, 2) - 1.0).abs() < 1e-6);
        let mixed = vec![vec![0, 1, 3], vec![2, 4, 5]];
        assert!((cluster_purity(&mixed, &labels, 2) - 2.0 / 3.0).abs() < 1e-6);
        // min_size filters everything -> 0
        assert_eq!(cluster_purity(&perfect, &labels, 10), 0.0);
    }
}
