//! # sudowoodo-cluster
//!
//! Clustering utilities for the Sudowoodo reproduction:
//!
//! * [`tfidf`] — sparse TF-IDF featurization of serialized data items;
//! * [`mod@kmeans`] — spherical k-means over the sparse vectors;
//! * [`batching`] — the clustering-based negative sampler of Algorithm 2 (mini-batches drawn
//!   within lexical clusters so that in-batch negatives are "hard"), plus uniform batching
//!   for the SimCLR baseline;
//! * [`components`] — union-find connected components and cluster purity, used to turn
//!   pairwise column-matching predictions into discovered semantic-type clusters (§V-B).

#![deny(missing_docs)]

pub mod batching;
pub mod components;
pub mod kmeans;
pub mod tfidf;

pub use batching::{BatchSampler, BatchStrategy};
pub use components::{cluster_purity, connected_components, UnionFind};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use tfidf::{sparse_dot, SparseVector, TfIdfVectorizer};
