//! Clustering-based negative sampling (Algorithm 2 of the paper).
//!
//! Mini-batches for contrastive pre-training are formed *within* TF-IDF/k-means clusters,
//! so that the in-batch negatives of SimCLR are lexically similar ("harder") items. The
//! alternative, uniform batching, is also provided for the SimCLR baseline and the ablation
//! `Sudowoodo (-cls)`.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::kmeans::{kmeans, KMeansConfig};
use crate::tfidf::TfIdfVectorizer;

/// A batching strategy producing mini-batches of item indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchStrategy {
    /// Uniformly shuffled batches (standard SimCLR).
    Uniform,
    /// Cluster the corpus with TF-IDF + k-means and draw batches within clusters.
    Clustered {
        /// Number of k-means clusters (the `num_clusters` hyper-parameter).
        num_clusters: usize,
    },
}

/// A batch sampler that can be re-used across epochs. Clustering results are computed once
/// and cached, matching the "Cache the results for future epochs" note of Algorithm 2.
#[derive(Clone, Debug)]
pub struct BatchSampler {
    strategy: BatchStrategy,
    /// Cached cluster membership (`None` for the uniform strategy).
    clusters: Option<Vec<Vec<usize>>>,
    num_items: usize,
    batch_size: usize,
}

impl BatchSampler {
    /// Builds a sampler for `texts` (the serialized corpus).
    ///
    /// For the clustered strategy this runs TF-IDF featurization and k-means once.
    pub fn new(
        texts: &[String],
        strategy: BatchStrategy,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let clusters = match &strategy {
            BatchStrategy::Uniform => None,
            BatchStrategy::Clustered { num_clusters } => {
                let vectorizer = TfIdfVectorizer::fit(texts.iter().map(|s| s.as_str()));
                let points = vectorizer.transform_all(texts.iter().map(|s| s.as_str()));
                let result = kmeans(
                    &points,
                    &KMeansConfig {
                        k: (*num_clusters).max(1),
                        max_iterations: 10,
                        num_features: vectorizer.num_features(),
                    },
                    rng,
                );
                Some(result.clusters())
            }
        };
        BatchSampler {
            strategy,
            clusters,
            num_items: texts.len(),
            batch_size,
        }
    }

    /// The strategy this sampler was built with.
    pub fn strategy(&self) -> &BatchStrategy {
        &self.strategy
    }

    /// Cached cluster membership, when the clustered strategy is active.
    pub fn clusters(&self) -> Option<&[Vec<usize>]> {
        self.clusters.as_deref()
    }

    /// Generates the mini-batches for one epoch (Algorithm 2 lines 3–12).
    ///
    /// Clusters are shuffled, items are shuffled within each cluster, and batches are filled
    /// by walking the clusters in order, so most batches contain items from a single cluster.
    /// The final partial batch is kept (it simply yields fewer negatives).
    pub fn epoch_batches(&self, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        if self.num_items == 0 {
            return Vec::new();
        }
        let ordered: Vec<usize> = match &self.clusters {
            None => {
                let mut all: Vec<usize> = (0..self.num_items).collect();
                all.shuffle(rng);
                all
            }
            Some(clusters) => {
                let mut cluster_refs: Vec<&Vec<usize>> =
                    clusters.iter().filter(|c| !c.is_empty()).collect();
                cluster_refs.shuffle(rng);
                let mut ordered = Vec::with_capacity(self.num_items);
                for cluster in cluster_refs {
                    let mut members = cluster.clone();
                    members.shuffle(rng);
                    ordered.extend(members);
                }
                ordered
            }
        };
        let mut batches: Vec<Vec<usize>> = ordered
            .chunks(self.batch_size)
            .map(|chunk| chunk.to_vec())
            .collect();
        batches.shuffle(rng);
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> Vec<String> {
        // Two clearly separated lexical topics. The per-item suffix tokens are disjoint
        // between the topics so that rare tokens cannot bridge them.
        let mut c = Vec::new();
        for i in 0..30 {
            c.push(format!("canon printer ink cartridge model sku{i}"));
        }
        for i in 0..30 {
            c.push(format!("deep learning paper transformer attention ref{i}"));
        }
        c
    }

    #[test]
    fn uniform_batches_cover_all_items_exactly_once() {
        let texts = corpus();
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = BatchSampler::new(&texts, BatchStrategy::Uniform, 8, &mut rng);
        let batches = sampler.epoch_batches(&mut rng);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..texts.len()).collect::<Vec<_>>());
        assert!(batches.iter().all(|b| b.len() <= 8));
        assert!(sampler.clusters().is_none());
    }

    #[test]
    fn clustered_batches_cover_all_items_exactly_once() {
        let texts = corpus();
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = BatchSampler::new(
            &texts,
            BatchStrategy::Clustered { num_clusters: 2 },
            8,
            &mut rng,
        );
        let batches = sampler.epoch_batches(&mut rng);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..texts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn clustered_batches_are_mostly_single_topic() {
        // Items 0..30 are printers, 30..60 are papers. With within-cluster batching, most
        // full batches should be topic-pure; uniform batching mixes topics in most batches.
        let texts = corpus();
        let mut rng = StdRng::seed_from_u64(3);
        let clustered = BatchSampler::new(
            &texts,
            BatchStrategy::Clustered { num_clusters: 2 },
            10,
            &mut rng,
        );
        let pure = |batches: &[Vec<usize>]| {
            batches
                .iter()
                .filter(|b| b.len() == 10)
                .filter(|b| b.iter().all(|&i| i < 30) || b.iter().all(|&i| i >= 30))
                .count() as f32
                / batches.iter().filter(|b| b.len() == 10).count().max(1) as f32
        };
        let clustered_purity = pure(&clustered.epoch_batches(&mut rng));
        let uniform = BatchSampler::new(&texts, BatchStrategy::Uniform, 10, &mut rng);
        let uniform_purity = pure(&uniform.epoch_batches(&mut rng));
        assert!(
            clustered_purity > uniform_purity,
            "clustered purity {clustered_purity} should exceed uniform purity {uniform_purity}"
        );
        assert!(clustered_purity > 0.8);
    }

    #[test]
    fn empty_corpus_yields_no_batches() {
        let mut rng = StdRng::seed_from_u64(4);
        let sampler = BatchSampler::new(&[], BatchStrategy::Uniform, 4, &mut rng);
        assert!(sampler.epoch_batches(&mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = BatchSampler::new(&["a".to_string()], BatchStrategy::Uniform, 0, &mut rng);
    }

    #[test]
    fn epochs_differ_but_are_reproducible_with_same_seed() {
        let texts = corpus();
        let mut rng = StdRng::seed_from_u64(6);
        let sampler = BatchSampler::new(&texts, BatchStrategy::Uniform, 8, &mut rng);
        let a = sampler.epoch_batches(&mut StdRng::seed_from_u64(100));
        let b = sampler.epoch_batches(&mut StdRng::seed_from_u64(100));
        let c = sampler.epoch_batches(&mut StdRng::seed_from_u64(101));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
