//! TF-IDF featurization of serialized data items.
//!
//! Used by the clustering-based negative sampler (Algorithm 2) and by the DL-Block-style
//! blocking baseline. Vectors are sparse `(feature, weight)` lists, L2-normalized so that
//! dot products are cosine similarities.
//!
//! When the feature space is small enough to densify ([`to_dense_matrix`]), pairwise
//! scoring and k-means assignment route through the blocked GEMM kernels of
//! [`sudowoodo_nn::matrix::Matrix`] ([`pairwise_cosine`]) instead of per-pair sparse dots.

use std::collections::HashMap;

use sudowoodo_nn::matrix::Matrix;
use sudowoodo_text::tokenize;

/// A sparse vector: sorted `(feature index, weight)` pairs.
pub type SparseVector = Vec<(usize, f32)>;

/// A fitted TF-IDF vectorizer.
#[derive(Clone, Debug)]
pub struct TfIdfVectorizer {
    vocabulary: HashMap<String, usize>,
    idf: Vec<f32>,
}

impl TfIdfVectorizer {
    /// Fits the vectorizer on a corpus of raw texts.
    ///
    /// Tokens appearing in a single document only still get a feature (the corpora here are
    /// small), and marker tokens (`[COL]`, `[VAL]`, ...) are excluded because they appear in
    /// every document and carry no discriminative signal.
    pub fn fit<'a>(texts: impl IntoIterator<Item = &'a str>) -> Self {
        let docs: Vec<Vec<String>> = texts.into_iter().map(tokenize).collect();
        let n_docs = docs.len().max(1);
        let mut vocabulary: HashMap<String, usize> = HashMap::new();
        let mut doc_freq: Vec<usize> = Vec::new();
        for doc in &docs {
            let mut seen: Vec<usize> = Vec::new();
            for token in doc {
                if token.starts_with('[') && token.ends_with(']') {
                    continue;
                }
                let next_id = vocabulary.len();
                let id = *vocabulary.entry(token.clone()).or_insert(next_id);
                if id == doc_freq.len() {
                    doc_freq.push(0);
                }
                if !seen.contains(&id) {
                    seen.push(id);
                    doc_freq[id] += 1;
                }
            }
        }
        let idf = doc_freq
            .iter()
            .map(|&df| ((n_docs as f32 + 1.0) / (df as f32 + 1.0)).ln() + 1.0)
            .collect();
        TfIdfVectorizer { vocabulary, idf }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.vocabulary.len()
    }

    /// Transforms one text into an L2-normalized sparse TF-IDF vector.
    ///
    /// Tokens unseen at fit time are ignored.
    pub fn transform(&self, text: &str) -> SparseVector {
        let mut counts: HashMap<usize, f32> = HashMap::new();
        for token in tokenize(text) {
            if let Some(&id) = self.vocabulary.get(&token) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut vec: SparseVector = counts
            .into_iter()
            .map(|(id, tf)| (id, tf * self.idf[id]))
            .collect();
        vec.sort_by_key(|(id, _)| *id);
        l2_normalize(&mut vec);
        vec
    }

    /// Transforms a batch of texts.
    pub fn transform_all<'a>(&self, texts: impl IntoIterator<Item = &'a str>) -> Vec<SparseVector> {
        texts.into_iter().map(|t| self.transform(t)).collect()
    }
}

/// Normalizes a sparse vector to unit L2 norm (no-op for the zero vector).
pub fn l2_normalize(vec: &mut SparseVector) {
    let norm: f32 = vec.iter().map(|(_, w)| w * w).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for (_, w) in vec.iter_mut() {
            *w /= norm;
        }
    }
}

/// Dot product of two sparse vectors (equals cosine similarity when both are normalized).
pub fn sparse_dot(a: &SparseVector, b: &SparseVector) -> f32 {
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

/// Adds a sparse vector into a dense accumulator (used by k-means centroid updates).
pub fn add_into_dense(dense: &mut [f32], sparse: &SparseVector) {
    for &(id, w) in sparse {
        dense[id] += w;
    }
}

/// Dot product between a dense vector and a sparse vector.
pub fn dense_sparse_dot(dense: &[f32], sparse: &SparseVector) -> f32 {
    sparse.iter().map(|&(id, w)| dense[id] * w).sum()
}

/// Scatter-expands sparse vectors into one dense row-major `n x num_features` matrix, the
/// input shape of the GEMM kernels.
///
/// # Panics
/// Panics when a feature index is out of range.
pub fn to_dense_matrix(points: &[SparseVector], num_features: usize) -> Matrix {
    let mut out = Matrix::zeros(points.len(), num_features);
    for (i, point) in points.iter().enumerate() {
        let row = out.row_mut(i);
        for &(id, w) in point {
            assert!(
                id < num_features,
                "to_dense_matrix: feature {id} out of range"
            );
            row[id] = w;
        }
    }
    out
}

/// All-pairs cosine similarity (`n x n`) of L2-normalized sparse vectors, computed as one
/// fused `X * X^T` GEMM over the densified matrix. Prefer this over `n^2` calls to
/// [`sparse_dot`] whenever `points.len() * num_features` fits in memory comfortably.
pub fn pairwise_cosine(points: &[SparseVector], num_features: usize) -> Matrix {
    let dense = to_dense_matrix(points, num_features);
    dense.matmul_transpose_b(&dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_produces_normalized_vectors() {
        let corpus = [
            "[COL] title [VAL] canon ink cartridge",
            "[COL] title [VAL] epson ink bottle",
            "[COL] title [VAL] canon camera",
        ];
        let v = TfIdfVectorizer::fit(corpus.iter().copied());
        assert!(v.num_features() >= 6);
        let x = v.transform(corpus[0]);
        let norm: f32 = x.iter().map(|(_, w)| w * w).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        // Markers excluded.
        assert!(v.transform("[COL] [VAL]").is_empty());
    }

    #[test]
    fn idf_downweights_common_tokens() {
        let corpus = ["ink canon", "ink epson", "ink hp", "canon camera"];
        let v = TfIdfVectorizer::fit(corpus.iter().copied());
        let x = v.transform("ink canon");
        // "ink" appears in 3 docs, "canon" in 2 -> canon weight must be larger.
        let weights: HashMap<usize, f32> = x.into_iter().collect();
        let ink_id = v.vocabulary["ink"];
        let canon_id = v.vocabulary["canon"];
        assert!(weights[&canon_id] > weights[&ink_id]);
    }

    #[test]
    fn cosine_of_similar_docs_is_higher() {
        let corpus = [
            "canon ink cartridge cyan",
            "canon ink cartridge magenta",
            "florida state university",
        ];
        let v = TfIdfVectorizer::fit(corpus.iter().copied());
        let a = v.transform(corpus[0]);
        let b = v.transform(corpus[1]);
        let c = v.transform(corpus[2]);
        assert!(sparse_dot(&a, &b) > sparse_dot(&a, &c));
        assert!(sparse_dot(&a, &c).abs() < 1e-6);
    }

    #[test]
    fn unknown_tokens_are_ignored() {
        let v = TfIdfVectorizer::fit(["alpha beta"]);
        assert!(v.transform("gamma delta").is_empty());
    }

    #[test]
    fn pairwise_cosine_matches_sparse_dots() {
        let corpus = [
            "canon ink cartridge cyan",
            "canon ink cartridge magenta",
            "florida state university",
            "canon camera lens",
        ];
        let v = TfIdfVectorizer::fit(corpus.iter().copied());
        let points = v.transform_all(corpus.iter().copied());
        let gram = pairwise_cosine(&points, v.num_features());
        assert_eq!(gram.shape(), (4, 4));
        for i in 0..4 {
            for j in 0..4 {
                let expected = sparse_dot(&points[i], &points[j]);
                assert!(
                    (gram.get(i, j) - expected).abs() < 1e-5,
                    "pairwise_cosine[{i}][{j}] = {} but sparse_dot = {expected}",
                    gram.get(i, j)
                );
            }
        }
    }

    #[test]
    fn dense_sparse_helpers() {
        let mut dense = vec![0.0; 4];
        let sparse = vec![(1, 2.0), (3, 0.5)];
        add_into_dense(&mut dense, &sparse);
        assert_eq!(dense, vec![0.0, 2.0, 0.0, 0.5]);
        assert_eq!(dense_sparse_dot(&dense, &sparse), 4.25);
        let mut zero: SparseVector = vec![];
        l2_normalize(&mut zero);
        assert!(zero.is_empty());
    }
}
