//! Spherical k-means over sparse TF-IDF vectors.
//!
//! Algorithm 2 of the paper clusters the unlabeled corpus with k-means over TF-IDF features
//! so that mini-batches can be drawn from within a cluster (lexically similar items become
//! in-batch negatives). Because all vectors are L2-normalized, maximizing the dot product
//! against a centroid is equivalent to cosine assignment (spherical k-means).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::tfidf::{add_into_dense, dense_sparse_dot, SparseVector};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Number of clusters actually produced (≤ requested `k`).
    pub k: usize,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Groups point indices by cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }

    /// Sizes of all clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.clusters().iter().map(|c| c.len()).collect()
    }
}

/// Configuration for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Requested number of clusters (`num_clusters` hyper-parameter, Table IV).
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Dimensionality of the feature space (from the TF-IDF vectorizer).
    pub num_features: usize,
}

/// Runs spherical k-means on sparse unit vectors.
///
/// Empty clusters are re-seeded from random points; when there are fewer points than
/// clusters, `k` is reduced to the number of points.
pub fn kmeans(points: &[SparseVector], config: &KMeansConfig, rng: &mut impl Rng) -> KMeansResult {
    let n = points.len();
    if n == 0 {
        return KMeansResult { assignments: Vec::new(), k: 0, iterations: 0 };
    }
    let k = config.k.clamp(1, n);
    let order: Vec<usize> = {
        let mut o: Vec<usize> = (0..n).collect();
        o.shuffle(rng);
        o
    };
    // k-means++ style seeding with cosine distance (1 - similarity): each new centroid is
    // sampled proportionally to its distance from the closest existing centroid. This avoids
    // the classic failure mode where two seeds land in the same lexical cluster.
    let mut centroid_ids: Vec<usize> = vec![order[0]];
    let mut min_dist: Vec<f32> = points
        .iter()
        .map(|p| (1.0 - crate::tfidf::sparse_dot(p, &points[order[0]])).max(0.0))
        .collect();
    while centroid_ids.len() < k {
        let total: f32 = min_dist.iter().sum();
        let next = if total <= 1e-9 {
            // All remaining points coincide with existing centroids; fall back to any unused.
            order
                .iter()
                .copied()
                .find(|i| !centroid_ids.contains(i))
                .unwrap_or(order[0])
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = 0usize;
            for (i, &d) in min_dist.iter().enumerate() {
                if target <= d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroid_ids.push(next);
        for (i, p) in points.iter().enumerate() {
            let d = (1.0 - crate::tfidf::sparse_dot(p, &points[next])).max(0.0);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    let mut centroids: Vec<Vec<f32>> = centroid_ids
        .iter()
        .map(|&i| {
            let mut c = vec![0.0f32; config.num_features];
            add_into_dense(&mut c, &points[i]);
            c
        })
        .collect();

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, point) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_score = f32::NEG_INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let score = dense_sparse_dot(centroid, point);
                if score > best_score {
                    best_score = score;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step: mean of assigned points, re-normalized (spherical k-means).
        let mut new_centroids = vec![vec![0.0f32; config.num_features]; k];
        let mut counts = vec![0usize; k];
        for (i, point) in points.iter().enumerate() {
            add_into_dense(&mut new_centroids[assignments[i]], point);
            counts[assignments[i]] += 1;
        }
        for (c, centroid) in new_centroids.iter_mut().enumerate() {
            if counts[c] == 0 {
                // Re-seed empty cluster from a random point.
                let &seed = order.choose(rng).expect("non-empty");
                centroid.iter_mut().for_each(|v| *v = 0.0);
                add_into_dense(centroid, &points[seed]);
                continue;
            }
            let norm: f32 = centroid.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in centroid.iter_mut() {
                    *v /= norm;
                }
            }
        }
        centroids = new_centroids;
        if !changed && iterations > 1 {
            break;
        }
    }
    KMeansResult { assignments, k, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::TfIdfVectorizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_topic_corpus() -> Vec<String> {
        let mut corpus = Vec::new();
        for i in 0..20 {
            corpus.push(format!("canon printer ink cartridge model {i}"));
            corpus.push(format!("neural network paper conference acl {i}"));
        }
        corpus
    }

    #[test]
    fn separates_two_obvious_topics() {
        let corpus = two_topic_corpus();
        let v = TfIdfVectorizer::fit(corpus.iter().map(|s| s.as_str()));
        let points = v.transform_all(corpus.iter().map(|s| s.as_str()));
        let mut rng = StdRng::seed_from_u64(42);
        let result = kmeans(
            &points,
            &KMeansConfig { k: 2, max_iterations: 20, num_features: v.num_features() },
            &mut rng,
        );
        assert_eq!(result.k, 2);
        // All printer docs (even indices) should share a cluster, all paper docs another.
        let printer_cluster = result.assignments[0];
        let paper_cluster = result.assignments[1];
        assert_ne!(printer_cluster, paper_cluster);
        for i in 0..corpus.len() {
            let expected = if i % 2 == 0 { printer_cluster } else { paper_cluster };
            assert_eq!(result.assignments[i], expected, "doc {i} misassigned");
        }
    }

    #[test]
    fn handles_fewer_points_than_clusters() {
        let v = TfIdfVectorizer::fit(["a b", "c d"]);
        let points = v.transform_all(["a b", "c d"]);
        let mut rng = StdRng::seed_from_u64(1);
        let result = kmeans(
            &points,
            &KMeansConfig { k: 10, max_iterations: 5, num_features: v.num_features() },
            &mut rng,
        );
        assert_eq!(result.k, 2);
        assert_eq!(result.assignments.len(), 2);
    }

    #[test]
    fn empty_input_produces_empty_result() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = kmeans(&[], &KMeansConfig { k: 3, max_iterations: 5, num_features: 10 }, &mut rng);
        assert_eq!(result.k, 0);
        assert!(result.assignments.is_empty());
    }

    #[test]
    fn cluster_accessors_are_consistent() {
        let corpus = two_topic_corpus();
        let v = TfIdfVectorizer::fit(corpus.iter().map(|s| s.as_str()));
        let points = v.transform_all(corpus.iter().map(|s| s.as_str()));
        let mut rng = StdRng::seed_from_u64(3);
        let result = kmeans(
            &points,
            &KMeansConfig { k: 4, max_iterations: 10, num_features: v.num_features() },
            &mut rng,
        );
        let sizes = result.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), corpus.len());
        assert_eq!(result.clusters().len(), result.k);
    }
}
