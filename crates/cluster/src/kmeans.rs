//! Spherical k-means over sparse TF-IDF vectors.
//!
//! Algorithm 2 of the paper clusters the unlabeled corpus with k-means over TF-IDF features
//! so that mini-batches can be drawn from within a cluster (lexically similar items become
//! in-batch negatives). Because all vectors are L2-normalized, maximizing the dot product
//! against a centroid is equivalent to cosine assignment (spherical k-means).
//!
//! Two performance/robustness properties of this implementation:
//!
//! * **Kernel-routed assignment** — when the corpus fits a dense `n x F` matrix
//!   (`DENSE_ASSIGN_LIMIT`), every Lloyd assignment step is one fused
//!   `points * centroids^T` GEMM tile ([`Matrix::matmul_transpose_b`]) followed by a
//!   per-row argmax; otherwise a rayon-parallel sparse scoring path is used. Both paths
//!   share the argmax tie-break (smallest cluster index), so results are deterministic.
//! * **Robust seeding** — true k-means++ (D² weighting) with a handful of restarts; the
//!   run with the highest total assignment similarity wins. This removes the collapse
//!   mode where two same-topic seeds converge to a degenerate `[n-1, 1]` split.

use rand::Rng;
use rayon::prelude::*;

use sudowoodo_nn::matrix::Matrix;

use crate::tfidf::{add_into_dense, dense_sparse_dot, sparse_dot, to_dense_matrix, SparseVector};

/// Maximum `n * num_features` element count for the densified assignment path
/// (4M f32 = 16 MB — comfortably cache/RAM friendly on any dev machine).
const DENSE_ASSIGN_LIMIT: usize = 4_000_000;

/// Number of k-means++ restarts; the highest-similarity run is kept.
const RESTARTS: usize = 3;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Number of clusters actually produced (≤ requested `k`).
    pub k: usize,
    /// Number of Lloyd iterations executed (of the winning restart).
    pub iterations: usize,
}

impl KMeansResult {
    /// Groups point indices by cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }

    /// Sizes of all clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.clusters().iter().map(|c| c.len()).collect()
    }
}

/// Configuration for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Requested number of clusters (`num_clusters` hyper-parameter, Table IV).
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Dimensionality of the feature space (from the TF-IDF vectorizer).
    pub num_features: usize,
}

/// Runs spherical k-means on sparse unit vectors.
///
/// Empty clusters are re-seeded from random points; when there are fewer points than
/// clusters, `k` is reduced to the number of points.
pub fn kmeans(points: &[SparseVector], config: &KMeansConfig, rng: &mut impl Rng) -> KMeansResult {
    let n = points.len();
    if n == 0 {
        return KMeansResult {
            assignments: Vec::new(),
            k: 0,
            iterations: 0,
        };
    }
    let k = config.k.clamp(1, n);
    // Densify once and reuse across restarts when the corpus is small enough for the GEMM
    // assignment path.
    let dense =
        if n.saturating_mul(config.num_features) <= DENSE_ASSIGN_LIMIT && config.num_features > 0 {
            Some(to_dense_matrix(points, config.num_features))
        } else {
            None
        };

    let mut best: Option<(f32, Vec<usize>, usize)> = None;
    for _ in 0..RESTARTS {
        let (assignments, iterations, score) = lloyd_once(points, dense.as_ref(), k, config, rng);
        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
            best = Some((score, assignments, iterations));
        }
        if k == 1 || k == n {
            break; // further restarts cannot change the outcome
        }
    }
    let (_, assignments, iterations) = best.expect("at least one restart ran");
    KMeansResult {
        assignments,
        k,
        iterations,
    }
}

/// One seeded k-means++ run; returns `(assignments, iterations, total_similarity)`.
fn lloyd_once(
    points: &[SparseVector],
    dense: Option<&Matrix>,
    k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> (Vec<usize>, usize, f32) {
    let n = points.len();

    // k-means++ seeding with squared cosine distance: each new centroid is sampled
    // proportionally to D^2 from the closest existing centroid, strongly preferring
    // points in not-yet-covered lexical regions.
    let first = rng.gen_range(0..n);
    let mut centroid_ids: Vec<usize> = vec![first];
    let mut min_d2: Vec<f32> = points
        .iter()
        .map(|p| {
            let d = (1.0 - sparse_dot(p, &points[first])).max(0.0);
            d * d
        })
        .collect();
    while centroid_ids.len() < k {
        let total: f32 = min_d2.iter().sum();
        let next = if total <= 1e-9 {
            // All remaining points coincide with existing centroids; fall back to any unused.
            (0..n).find(|i| !centroid_ids.contains(i)).unwrap_or(first)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                if target <= d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroid_ids.push(next);
        for (i, p) in points.iter().enumerate() {
            let d = (1.0 - sparse_dot(p, &points[next])).max(0.0);
            let d2 = d * d;
            if d2 < min_d2[i] {
                min_d2[i] = d2;
            }
        }
    }

    // Centroids live in one dense `k x F` matrix — the right-hand side of the assignment
    // GEMM and the accumulator of the update step.
    let mut centroids = Matrix::zeros(k, config.num_features);
    for (c, &i) in centroid_ids.iter().enumerate() {
        add_into_dense(centroids.row_mut(c), &points[i]);
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        // Assignment step: points x centroids^T, argmax per row (ties -> smaller index).
        let new_assignments = assign(points, dense, &centroids);
        let changed = new_assignments != assignments;
        assignments = new_assignments;

        // Update step: mean of assigned points, re-normalized (spherical k-means).
        let mut new_centroids = Matrix::zeros(k, config.num_features);
        let mut counts = vec![0usize; k];
        for (i, point) in points.iter().enumerate() {
            add_into_dense(new_centroids.row_mut(assignments[i]), point);
            counts[assignments[i]] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            let row = new_centroids.row_mut(c);
            if count == 0 {
                // Re-seed empty cluster from a random point.
                let seed = rng.gen_range(0..n);
                row.iter_mut().for_each(|v| *v = 0.0);
                add_into_dense(row, &points[seed]);
                continue;
            }
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
        centroids = new_centroids;
        if !changed && iterations > 1 {
            break;
        }
    }

    // Quality of this restart: total similarity of points to their assigned centroids.
    let score: f32 = points
        .iter()
        .zip(assignments.iter())
        .map(|(p, &c)| dense_sparse_dot(centroids.row(c), p))
        .sum();
    (assignments, iterations, score)
}

/// The assignment step. Dense corpus: one fused GEMM tile + per-row argmax. Sparse corpus:
/// rayon-parallel per-point scoring. Identical tie-break (smallest cluster index).
fn assign(points: &[SparseVector], dense: Option<&Matrix>, centroids: &Matrix) -> Vec<usize> {
    match dense {
        Some(d) => {
            let scores = d.matmul_transpose_b(centroids); // n x k
            (0..scores.rows())
                .map(|r| {
                    let row = scores.row(r);
                    let mut best = 0usize;
                    let mut best_score = f32::NEG_INFINITY;
                    for (c, &s) in row.iter().enumerate() {
                        if s > best_score {
                            best_score = s;
                            best = c;
                        }
                    }
                    best
                })
                .collect()
        }
        None => points
            .par_iter()
            .map(|point| {
                let mut best = 0usize;
                let mut best_score = f32::NEG_INFINITY;
                for c in 0..centroids.rows() {
                    let score = dense_sparse_dot(centroids.row(c), point);
                    if score > best_score {
                        best_score = score;
                        best = c;
                    }
                }
                best
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::TfIdfVectorizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_topic_corpus() -> Vec<String> {
        let mut corpus = Vec::new();
        for i in 0..20 {
            corpus.push(format!("canon printer ink cartridge model {i}"));
            corpus.push(format!("neural network paper conference acl {i}"));
        }
        corpus
    }

    #[test]
    fn separates_two_obvious_topics() {
        let corpus = two_topic_corpus();
        let v = TfIdfVectorizer::fit(corpus.iter().map(|s| s.as_str()));
        let points = v.transform_all(corpus.iter().map(|s| s.as_str()));
        let mut rng = StdRng::seed_from_u64(42);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                max_iterations: 20,
                num_features: v.num_features(),
            },
            &mut rng,
        );
        assert_eq!(result.k, 2);
        // All printer docs (even indices) should share a cluster, all paper docs another.
        let printer_cluster = result.assignments[0];
        let paper_cluster = result.assignments[1];
        assert_ne!(printer_cluster, paper_cluster);
        for i in 0..corpus.len() {
            let expected = if i % 2 == 0 {
                printer_cluster
            } else {
                paper_cluster
            };
            assert_eq!(result.assignments[i], expected, "doc {i} misassigned");
        }
    }

    #[test]
    fn separation_is_robust_across_seeds() {
        // The restartable D^2 seeding must not collapse into a degenerate [n-1, 1] split
        // for *any* of these seeds (the single-shot seeding used to, for about half).
        let corpus = two_topic_corpus();
        let v = TfIdfVectorizer::fit(corpus.iter().map(|s| s.as_str()));
        let points = v.transform_all(corpus.iter().map(|s| s.as_str()));
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = kmeans(
                &points,
                &KMeansConfig {
                    k: 2,
                    max_iterations: 20,
                    num_features: v.num_features(),
                },
                &mut rng,
            );
            let sizes = result.cluster_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), corpus.len());
            assert!(
                sizes.iter().all(|&s| s >= 15),
                "seed {seed}: degenerate split {sizes:?}"
            );
        }
    }

    #[test]
    fn handles_fewer_points_than_clusters() {
        let v = TfIdfVectorizer::fit(["a b", "c d"]);
        let points = v.transform_all(["a b", "c d"]);
        let mut rng = StdRng::seed_from_u64(1);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 10,
                max_iterations: 5,
                num_features: v.num_features(),
            },
            &mut rng,
        );
        assert_eq!(result.k, 2);
        assert_eq!(result.assignments.len(), 2);
    }

    #[test]
    fn empty_input_produces_empty_result() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = kmeans(
            &[],
            &KMeansConfig {
                k: 3,
                max_iterations: 5,
                num_features: 10,
            },
            &mut rng,
        );
        assert_eq!(result.k, 0);
        assert!(result.assignments.is_empty());
    }

    #[test]
    fn dense_and_sparse_assignment_paths_agree() {
        let corpus = two_topic_corpus();
        let v = TfIdfVectorizer::fit(corpus.iter().map(|s| s.as_str()));
        let points = v.transform_all(corpus.iter().map(|s| s.as_str()));
        let dense = to_dense_matrix(&points, v.num_features());
        // Arbitrary centroids: two real points.
        let mut centroids = Matrix::zeros(2, v.num_features());
        add_into_dense(centroids.row_mut(0), &points[0]);
        add_into_dense(centroids.row_mut(1), &points[1]);
        let via_gemm = assign(&points, Some(&dense), &centroids);
        let via_sparse = assign(&points, None, &centroids);
        assert_eq!(via_gemm, via_sparse);
    }

    #[test]
    fn cluster_accessors_are_consistent() {
        let corpus = two_topic_corpus();
        let v = TfIdfVectorizer::fit(corpus.iter().map(|s| s.as_str()));
        let points = v.transform_all(corpus.iter().map(|s| s.as_str()));
        let mut rng = StdRng::seed_from_u64(3);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 4,
                max_iterations: 10,
                num_features: v.num_features(),
            },
            &mut rng,
        );
        let sizes = result.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), corpus.len());
        assert_eq!(result.clusters().len(), result.k);
    }
}
