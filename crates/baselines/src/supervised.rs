//! Supervised / semi-supervised deep EM baselines: Ditto-like, Rotom-like, and
//! DeepMatcher-like matchers.
//!
//! All three baselines hold the encoder architecture constant with Sudowoodo (see DESIGN.md)
//! and differ only in how the paper's corresponding systems differ from Sudowoodo:
//!
//! * **Ditto-like** — no contrastive pre-training (randomly initialized encoder) and the
//!   default sequence-pair fine-tuning head (concatenation only, no `|Z_x − Z_y|` features).
//! * **Rotom-like** — Ditto-like plus training-set augmentation: every labeled pair is
//!   expanded with DA-distorted copies, standing in for Rotom's meta-learned augmentation
//!   policy.
//! * **DeepMatcher-like** — the fully supervised reference point: trained on the complete
//!   train+valid label set.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo_augment::{augment, DaOp};
use sudowoodo_core::config::SudowoodoConfig;
use sudowoodo_core::encoder::Encoder;
use sudowoodo_core::matcher::{FineTuneConfig, PairMatcher, TrainPair};
use sudowoodo_core::pipeline::em::{evaluate_matcher, EmPipeline};
use sudowoodo_datasets::em::{EmDataset, LabeledPair};
use sudowoodo_ml::metrics::{best_f1_threshold, PrF1};
use sudowoodo_text::serialize::serialize_record;

/// Result of a supervised baseline run.
#[derive(Clone, Debug)]
pub struct SupervisedBaselineResult {
    /// Baseline name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Number of labeled pairs used.
    pub labels_used: usize,
    /// Matching quality on the test split.
    pub matching: PrF1,
    /// Wall-clock seconds for training + evaluation.
    pub seconds: f64,
}

fn labeled_to_pairs(dataset: &EmDataset, labeled: &[LabeledPair]) -> Vec<TrainPair> {
    labeled
        .iter()
        .map(|p| {
            TrainPair::new(
                serialize_record(&dataset.table_a[p.a]),
                serialize_record(&dataset.table_b[p.b]),
                p.label,
            )
        })
        .collect()
}

fn train_and_evaluate(
    dataset: &EmDataset,
    labeled: &[LabeledPair],
    train_pairs: &[TrainPair],
    config: &SudowoodoConfig,
    use_diff_head: bool,
    method: &str,
) -> SupervisedBaselineResult {
    let start = std::time::Instant::now();
    // Randomly initialized encoder: vocabulary from the corpus, no contrastive pre-training.
    let encoder = Encoder::from_corpus(config.encoder, &dataset.corpus(), config.seed);
    let mut matcher = PairMatcher::new(encoder, use_diff_head, config.seed);
    matcher.fine_tune(
        train_pairs,
        &FineTuneConfig {
            epochs: config.finetune_epochs,
            batch_size: config.finetune_batch_size,
            learning_rate: config.finetune_lr,
            seed: config.seed,
        },
    );
    // Threshold tuned on the labeled pairs (same protocol as the Sudowoodo pipeline).
    let threshold = if labeled.is_empty() {
        0.5
    } else {
        let inputs: Vec<(String, String)> = labeled
            .iter()
            .map(|p| {
                (
                    serialize_record(&dataset.table_a[p.a]),
                    serialize_record(&dataset.table_b[p.b]),
                )
            })
            .collect();
        let scores = matcher.predict_scores(&inputs);
        let gold: Vec<bool> = labeled.iter().map(|p| p.label).collect();
        best_f1_threshold(&scores, &gold).0
    };
    let matching = evaluate_matcher(&matcher, dataset, &dataset.test, threshold);
    SupervisedBaselineResult {
        method: method.to_string(),
        dataset: dataset.name.clone(),
        labels_used: labeled.len(),
        matching,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Runs the Ditto-like baseline with a label budget (`None` = all train+valid labels).
pub fn run_ditto(
    dataset: &EmDataset,
    label_budget: Option<usize>,
    config: &SudowoodoConfig,
) -> SupervisedBaselineResult {
    let labeled = EmPipeline::new(config.clone()).sample_labels(dataset, label_budget);
    let pairs = labeled_to_pairs(dataset, &labeled);
    let name = match label_budget {
        Some(n) => format!("Ditto ({n})"),
        None => "Ditto (full)".to_string(),
    };
    train_and_evaluate(dataset, &labeled, &pairs, config, false, &name)
}

/// Runs the Rotom-like baseline: Ditto plus DA-based training-set expansion.
pub fn run_rotom(
    dataset: &EmDataset,
    label_budget: Option<usize>,
    config: &SudowoodoConfig,
) -> SupervisedBaselineResult {
    let labeled = EmPipeline::new(config.clone()).sample_labels(dataset, label_budget);
    let mut pairs = labeled_to_pairs(dataset, &labeled);
    // Expand every labeled pair with augmented copies (one per operator family), standing in
    // for Rotom's learned augmentation-selection policy.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(17));
    let ops = [DaOp::TokenDel, DaOp::SpanShuffle, DaOp::ColDel];
    let mut augmented = Vec::with_capacity(pairs.len() * ops.len());
    for pair in &pairs {
        for op in ops {
            augmented.push(TrainPair::new(
                augment(&pair.left, op, &mut rng),
                augment(&pair.right, op, &mut rng),
                pair.label,
            ));
        }
    }
    pairs.extend(augmented);
    let name = match label_budget {
        Some(n) => format!("Rotom ({n})"),
        None => "Rotom (full)".to_string(),
    };
    train_and_evaluate(dataset, &labeled, &pairs, config, false, &name)
}

/// Runs the DeepMatcher-like fully supervised reference (all train+valid labels).
pub fn run_deepmatcher_full(
    dataset: &EmDataset,
    config: &SudowoodoConfig,
) -> SupervisedBaselineResult {
    let labeled = EmPipeline::new(config.clone()).sample_labels(dataset, None);
    let pairs = labeled_to_pairs(dataset, &labeled);
    train_and_evaluate(
        dataset,
        &labeled,
        &pairs,
        config,
        false,
        "DeepMatcher (full)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::em::EmProfile;

    fn tiny_setup() -> (EmDataset, SudowoodoConfig) {
        let dataset = EmProfile::dblp_acm().generate(0.06, 5);
        let mut config = SudowoodoConfig::test_config();
        config.finetune_epochs = 2;
        (dataset, config)
    }

    #[test]
    fn ditto_runs_with_budget_and_full_labels() {
        let (dataset, config) = tiny_setup();
        let budgeted = run_ditto(&dataset, Some(30), &config);
        assert_eq!(budgeted.labels_used, 30);
        assert!(budgeted.method.starts_with("Ditto"));
        assert!(budgeted.matching.f1 >= 0.0 && budgeted.matching.f1 <= 1.0);
        let full = run_ditto(&dataset, None, &config);
        assert!(full.labels_used > budgeted.labels_used);
        assert_eq!(full.method, "Ditto (full)");
    }

    #[test]
    fn rotom_expands_the_training_set() {
        let (dataset, config) = tiny_setup();
        let result = run_rotom(&dataset, Some(20), &config);
        assert_eq!(result.labels_used, 20);
        assert!(result.matching.f1 >= 0.0);
        assert!(result.seconds > 0.0);
    }

    #[test]
    fn deepmatcher_uses_all_labels() {
        let (dataset, config) = tiny_setup();
        let result = run_deepmatcher_full(&dataset, &config);
        assert_eq!(
            result.labels_used,
            dataset.train.len() + dataset.valid.len()
        );
        assert_eq!(result.method, "DeepMatcher (full)");
    }
}
