//! Sherlock-like and Sato-like column-matching baselines (Tables X / XII).
//!
//! Sherlock and Sato are single-column semantic-type classifiers; the paper uses them as
//! feature extractors for pairwise column matching: a pair `(c, c')` is represented as
//! `concat(vec(c), vec(c'), |vec(c) − vec(c')|)` and fed to a classical classifier
//! (LR / SVM / GBT / RF, plus a cosine-similarity-only baseline "SIM"). This module
//! re-implements both feature extractors with hand-crafted statistics:
//!
//! * **Sherlock-like** — per-column character/word/statistical features;
//! * **Sato-like** — Sherlock features plus corpus-level "topic" features (a bag of hashed
//!   token buckets standing in for Sato's LDA topic vector).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo_datasets::columns::{ColumnCorpus, ColumnPair};
use sudowoodo_ml::ensemble::{GradientBoosting, RandomForest};
use sudowoodo_ml::linear::{LinearSvm, LogisticRegression};
use sudowoodo_ml::metrics::{best_f1_threshold, PrF1};
use sudowoodo_ml::tree::TreeConfig;
use sudowoodo_text::Column;

/// Which feature extractor to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnFeaturizer {
    /// Sherlock-like statistical features.
    Sherlock,
    /// Sato-like features (Sherlock + hashed topic features).
    Sato,
}

/// Which pair classifier to train on top of the features.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairClassifier {
    /// Logistic regression.
    LR,
    /// Linear SVM.
    SVM,
    /// Gradient-boosted trees.
    GBT,
    /// Random forest.
    RF,
    /// Cosine similarity of the column vectors only (no learning beyond a threshold).
    SIM,
}

impl PairClassifier {
    /// All classifier variants of Table XII.
    pub fn all() -> Vec<PairClassifier> {
        vec![Self::LR, Self::SVM, Self::GBT, Self::RF, Self::SIM]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::LR => "LR",
            Self::SVM => "SVM",
            Self::GBT => "GBT",
            Self::RF => "RF",
            Self::SIM => "SIM",
        }
    }
}

const TOPIC_BUCKETS: usize = 16;

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Sherlock-like per-column feature vector.
pub fn sherlock_features(column: &Column) -> Vec<f32> {
    let values = &column.values;
    let n = values.len().max(1) as f32;
    let lengths: Vec<f32> = values.iter().map(|v| v.len() as f32).collect();
    let mean_len = lengths.iter().sum::<f32>() / n;
    let max_len = lengths.iter().cloned().fold(0.0, f32::max);
    let digit_fraction = values
        .iter()
        .map(|v| {
            let chars = v.chars().count().max(1) as f32;
            v.chars().filter(|c| c.is_ascii_digit()).count() as f32 / chars
        })
        .sum::<f32>()
        / n;
    let alpha_fraction = values
        .iter()
        .map(|v| {
            let chars = v.chars().count().max(1) as f32;
            v.chars().filter(|c| c.is_alphabetic()).count() as f32 / chars
        })
        .sum::<f32>()
        / n;
    let numeric_fraction = values.iter().filter(|v| v.parse::<f64>().is_ok()).count() as f32 / n;
    let distinct_ratio = {
        let mut d: Vec<&String> = values.iter().collect();
        d.sort();
        d.dedup();
        d.len() as f32 / n
    };
    let mean_tokens = values
        .iter()
        .map(|v| v.split_whitespace().count() as f32)
        .sum::<f32>()
        / n;
    let upper_fraction = values
        .iter()
        .filter(|v| !v.is_empty() && v.chars().all(|c| !c.is_lowercase()))
        .count() as f32
        / n;
    let numeric_values: Vec<f32> = values
        .iter()
        .filter_map(|v| v.parse::<f32>().ok())
        .collect();
    let numeric_mean = if numeric_values.is_empty() {
        0.0
    } else {
        numeric_values.iter().sum::<f32>() / numeric_values.len() as f32
    };
    vec![
        mean_len / 40.0,
        max_len / 80.0,
        digit_fraction,
        alpha_fraction,
        numeric_fraction,
        distinct_ratio,
        mean_tokens / 6.0,
        upper_fraction,
        (numeric_mean.abs() + 1.0).ln() / 10.0,
    ]
}

/// Sato-like feature vector: Sherlock features plus hashed token-topic buckets.
pub fn sato_features(column: &Column) -> Vec<f32> {
    let mut features = sherlock_features(column);
    let mut topics = vec![0.0f32; TOPIC_BUCKETS];
    let mut total = 0.0f32;
    for value in &column.values {
        for token in value.split_whitespace() {
            let bucket = (fnv(&token.to_lowercase()) as usize) % TOPIC_BUCKETS;
            topics[bucket] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for t in topics.iter_mut() {
            *t /= total;
        }
    }
    features.extend(topics);
    features
}

/// Pair features: `concat(vec(c), vec(c'), |vec(c) − vec(c')|)`.
pub fn pair_features(featurizer: ColumnFeaturizer, left: &Column, right: &Column) -> Vec<f32> {
    let f = |c: &Column| match featurizer {
        ColumnFeaturizer::Sherlock => sherlock_features(c),
        ColumnFeaturizer::Sato => sato_features(c),
    };
    let a = f(left);
    let b = f(right);
    let mut out = a.clone();
    out.extend(b.iter().copied());
    out.extend(a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()));
    out
}

/// Result of one featurizer × classifier combination.
#[derive(Clone, Debug)]
pub struct ColumnBaselineResult {
    /// Method name, e.g. `Sato-GBT`.
    pub method: String,
    /// Quality on the validation split.
    pub valid: PrF1,
    /// Quality on the test split.
    pub test: PrF1,
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na <= 1e-9 || nb <= 1e-9 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Trains one featurizer × classifier combination and evaluates it.
pub fn run_column_baseline(
    corpus: &ColumnCorpus,
    featurizer: ColumnFeaturizer,
    classifier: PairClassifier,
    train: &[ColumnPair],
    valid: &[ColumnPair],
    test: &[ColumnPair],
    seed: u64,
) -> ColumnBaselineResult {
    let name = format!(
        "{}-{}",
        match featurizer {
            ColumnFeaturizer::Sherlock => "Sherlock",
            ColumnFeaturizer::Sato => "Sato",
        },
        classifier.name()
    );
    let features = |p: &ColumnPair| {
        pair_features(
            featurizer,
            &corpus.columns[p.left],
            &corpus.columns[p.right],
        )
    };
    let x_train: Vec<Vec<f32>> = train.iter().map(&features).collect();
    let y_train: Vec<bool> = train.iter().map(|p| p.label).collect();
    let mut rng = StdRng::seed_from_u64(seed);

    // A scoring closure abstracting over the classifier type.
    #[allow(clippy::type_complexity)]
    let score: Box<dyn Fn(&[f32]) -> f32> = match classifier {
        PairClassifier::LR => {
            let mut model = LogisticRegression::new(x_train.first().map(|v| v.len()).unwrap_or(1))
                .with_hyperparams(0.3, 1e-4, 60);
            model.fit(&x_train, &y_train, &mut rng);
            Box::new(move |f: &[f32]| model.predict_proba(f))
        }
        PairClassifier::SVM => {
            let mut model = LinearSvm::new(x_train.first().map(|v| v.len()).unwrap_or(1))
                .with_hyperparams(1e-3, 60);
            model.fit(&x_train, &y_train, &mut rng);
            Box::new(move |f: &[f32]| model.predict_proba(f))
        }
        PairClassifier::GBT => {
            let mut model = GradientBoosting::new(
                25,
                0.3,
                TreeConfig {
                    max_depth: 3,
                    min_samples_split: 4,
                    max_features: None,
                },
            );
            model.fit(&x_train, &y_train, &mut rng);
            Box::new(move |f: &[f32]| model.predict_proba(f))
        }
        PairClassifier::RF => {
            let mut model = RandomForest::new(
                15,
                TreeConfig {
                    max_depth: 6,
                    min_samples_split: 4,
                    max_features: None,
                },
            );
            model.fit(&x_train, &y_train, &mut rng);
            Box::new(move |f: &[f32]| model.predict_proba(f))
        }
        PairClassifier::SIM => {
            let fz = featurizer;
            let columns = corpus.columns.clone();
            let _ = (&x_train, &y_train);
            // SIM ignores the pair features; it scores by cosine of the two column vectors.
            // We capture the columns so the closure can recompute per pair via indices packed
            // into the features... instead, compute directly at call sites below.
            let _ = columns;
            Box::new(move |f: &[f32]| {
                // The pair feature layout is [a | b | |a-b|]; recover a and b.
                let d = f.len() / 3;
                let _ = fz;
                cosine(&f[..d], &f[d..2 * d])
            })
        }
    };

    let evaluate = |pairs: &[ColumnPair], threshold: f32| -> PrF1 {
        let predicted: Vec<bool> = pairs
            .iter()
            .map(|p| score(&features(p)) >= threshold)
            .collect();
        let gold: Vec<bool> = pairs.iter().map(|p| p.label).collect();
        PrF1::from_predictions(&predicted, &gold)
    };
    // Threshold chosen on the validation split.
    let valid_scores: Vec<f32> = valid.iter().map(|p| score(&features(p))).collect();
    let valid_gold: Vec<bool> = valid.iter().map(|p| p.label).collect();
    let threshold = if valid.is_empty() {
        0.5
    } else {
        best_f1_threshold(&valid_scores, &valid_gold).0
    };

    ColumnBaselineResult {
        method: name,
        valid: evaluate(valid, threshold),
        test: evaluate(test, threshold),
    }
}

/// Runs the full Table-XII grid: both featurizers × all five classifiers.
pub fn run_column_baseline_grid(
    corpus: &ColumnCorpus,
    train: &[ColumnPair],
    valid: &[ColumnPair],
    test: &[ColumnPair],
    seed: u64,
) -> Vec<ColumnBaselineResult> {
    let mut results = Vec::new();
    for featurizer in [ColumnFeaturizer::Sato, ColumnFeaturizer::Sherlock] {
        for classifier in PairClassifier::all() {
            results.push(run_column_baseline(
                corpus, featurizer, classifier, train, valid, test, seed,
            ));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::columns::{sample_labeled_pairs, ColumnProfile};

    fn corpus_and_candidates() -> (ColumnCorpus, Vec<(usize, usize)>) {
        let corpus = ColumnProfile {
            num_columns: 200,
            min_values: 6,
            max_values: 10,
        }
        .generate(1.0, 3);
        // Candidate pairs mimic the paper's blocking output, which is heavily enriched in
        // same-type pairs (Table XIII reports ~68% positives): pair every column with the
        // next column of the same coarse type and with an arbitrary other column.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for i in 0..corpus.len() {
            if let Some(j) = (i + 1..corpus.len()).find(|&j| corpus.same_type(i, j)) {
                candidates.push((i, j));
            }
            let other = (i * 37 + 11) % corpus.len();
            if other != i {
                candidates.push((i.min(other), i.max(other)));
            }
        }
        (corpus, candidates)
    }

    fn setup() -> (
        ColumnCorpus,
        Vec<ColumnPair>,
        Vec<ColumnPair>,
        Vec<ColumnPair>,
    ) {
        let (corpus, candidates) = corpus_and_candidates();
        let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 300, 11);
        (corpus, train, valid, test)
    }

    #[test]
    fn sherlock_and_sato_features_have_expected_dimensions() {
        let c = Column::from_values(["new york", "chicago", "austin"]);
        assert_eq!(sherlock_features(&c).len(), 9);
        assert_eq!(sato_features(&c).len(), 9 + TOPIC_BUCKETS);
        let p = pair_features(ColumnFeaturizer::Sato, &c, &c);
        assert_eq!(p.len(), 3 * (9 + TOPIC_BUCKETS));
        // Identical columns: the |a-b| part must be all zeros.
        assert!(p[2 * (9 + TOPIC_BUCKETS)..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn features_discriminate_numeric_from_textual_columns() {
        let numeric = Column::from_values(["12", "45", "7", "1999"]);
        let textual = Column::from_values(["new york", "berlin", "tokyo"]);
        let fn_ = sherlock_features(&numeric);
        let ft = sherlock_features(&textual);
        assert!(
            fn_[4] > ft[4],
            "numeric fraction should separate the columns"
        );
        assert!(ft[3] > fn_[3], "alpha fraction should separate the columns");
    }

    #[test]
    fn gbt_baseline_learns_column_matching_better_than_sim() {
        // The GBT-vs-SIM comparison is a statistical property: a few unlucky train/test
        // splits invert it by a hair. Assert the robust version -- GBT learns the task on
        // every split and wins the majority -- instead of pinning one favourable seed.
        let (corpus, candidates) = corpus_and_candidates();
        let mut wins = 0usize;
        let split_seeds = [7u64, 11, 13, 17, 19];
        for &seed in &split_seeds {
            let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 300, seed);
            let gbt = run_column_baseline(
                &corpus,
                ColumnFeaturizer::Sato,
                PairClassifier::GBT,
                &train,
                &valid,
                &test,
                1,
            );
            let sim = run_column_baseline(
                &corpus,
                ColumnFeaturizer::Sato,
                PairClassifier::SIM,
                &train,
                &valid,
                &test,
                1,
            );
            assert!(
                gbt.test.f1 > 0.4,
                "Sato-GBT should learn the task on split {seed}: {:?}",
                gbt.test
            );
            if gbt.test.f1 >= sim.test.f1 {
                wins += 1;
            }
        }
        assert!(
            wins * 2 > split_seeds.len(),
            "GBT should beat the similarity-only baseline on a majority of splits, won {wins}/{}",
            split_seeds.len()
        );
    }

    #[test]
    fn the_grid_produces_all_ten_variants() {
        let (corpus, train, valid, test) = setup();
        // Use smaller splits to keep the grid fast.
        let results = run_column_baseline_grid(&corpus, &train[..80], &valid[..40], &test[..40], 2);
        assert_eq!(results.len(), 10);
        let names: Vec<&str> = results.iter().map(|r| r.method.as_str()).collect();
        assert!(names.contains(&"Sato-GBT"));
        assert!(names.contains(&"Sherlock-SIM"));
        for r in &results {
            assert!(r.test.f1 >= 0.0 && r.test.f1 <= 1.0);
        }
    }
}
