//! Unsupervised EM baselines: ZeroER-like and Auto-FuzzyJoin-like matchers (Table VI).
//!
//! * **ZeroER** (Wu et al., SIGMOD 2020) models the similarity features of candidate pairs
//!   as a two-component Gaussian mixture (match / non-match) and labels pairs by posterior,
//!   using zero labeled examples. The re-implementation uses the same generative idea over
//!   hand-crafted pair-similarity features.
//! * **Auto-FuzzyJoin** (Li et al., SIGMOD 2021) auto-programs a fuzzy join assuming one
//!   table is a (nearly) duplicate-free reference; the re-implementation performs a best-
//!   match fuzzy join and auto-selects the acceptance threshold from the score distribution
//!   (Otsu's criterion), without any labels.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo_datasets::em::{EmDataset, LabeledPair};
use sudowoodo_ml::gmm::{GaussianMixture, GmmConfig};
use sudowoodo_ml::metrics::PrF1;
use sudowoodo_text::jaccard::{char_ngram_dice, edit_similarity, jaccard_text};

/// Result of an unsupervised baseline run.
#[derive(Clone, Debug)]
pub struct UnsupervisedBaselineResult {
    /// Baseline name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Matching quality on the test split.
    pub matching: PrF1,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Similarity features of a pair of records (shared by both baselines).
pub fn pair_features(dataset: &EmDataset, pair: &LabeledPair) -> Vec<f32> {
    let a = dataset.table_a[pair.a].text();
    let b = dataset.table_b[pair.b].text();
    let jac = jaccard_text(&a, &b);
    let dice = char_ngram_dice(&a, &b, 3);
    let edit = edit_similarity(&a, &b);
    let len_ratio = {
        let (la, lb) = (a.len() as f32, b.len() as f32);
        if la.max(lb) <= 0.0 {
            1.0
        } else {
            la.min(lb) / la.max(lb)
        }
    };
    vec![jac, dice, edit, len_ratio]
}

/// Runs the ZeroER-like baseline: fit a 2-component GMM over the similarity features of all
/// labeled-candidate pairs (labels unused), identify the "match" component as the one with
/// the higher mean Jaccard, and classify the test pairs by posterior.
pub fn run_zeroer(dataset: &EmDataset, seed: u64) -> UnsupervisedBaselineResult {
    let start = std::time::Instant::now();
    let all_pairs = dataset.all_pairs();
    let features: Vec<Vec<f32>> = all_pairs
        .iter()
        .map(|p| pair_features(dataset, p))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let gmm = GaussianMixture::fit(&features, &GmmConfig::default(), &mut rng);
    let match_component = gmm.component_with_largest_mean(0);

    let predicted: Vec<bool> = dataset
        .test
        .iter()
        .map(|p| {
            let f = pair_features(dataset, p);
            gmm.posterior(&f)[match_component] >= 0.5
        })
        .collect();
    let gold: Vec<bool> = dataset.test.iter().map(|p| p.label).collect();
    UnsupervisedBaselineResult {
        method: "ZeroER".to_string(),
        dataset: dataset.name.clone(),
        matching: PrF1::from_predictions(&predicted, &gold),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Otsu's threshold over a score distribution: maximizes between-class variance.
fn otsu_threshold(scores: &[f32]) -> f32 {
    if scores.is_empty() {
        return 0.5;
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let total_mean = sorted.iter().sum::<f32>() / sorted.len() as f32;
    let mut best = (0.5f32, f32::MIN);
    for i in 1..sorted.len() {
        let low = &sorted[..i];
        let high = &sorted[i..];
        let w0 = low.len() as f32 / sorted.len() as f32;
        let w1 = 1.0 - w0;
        let m0 = low.iter().sum::<f32>() / low.len() as f32;
        let m1 = high.iter().sum::<f32>() / high.len() as f32;
        let between = w0 * (m0 - total_mean).powi(2) + w1 * (m1 - total_mean).powi(2);
        if between > best.1 {
            best = ((sorted[i - 1] + sorted[i]) / 2.0, between);
        }
    }
    best.0
}

/// Runs the Auto-FuzzyJoin-like baseline: every left record is fuzzily joined with its best
/// right record; the acceptance threshold is chosen automatically from the best-match score
/// distribution. Test pairs are labeled positive iff they appear in the accepted join.
pub fn run_auto_fuzzy_join(dataset: &EmDataset) -> UnsupervisedBaselineResult {
    let start = std::time::Instant::now();
    let texts_a: Vec<String> = dataset.table_a.iter().map(|r| r.text()).collect();
    let texts_b: Vec<String> = dataset.table_b.iter().map(|r| r.text()).collect();

    let score = |a: &str, b: &str| 0.6 * jaccard_text(a, b) + 0.4 * char_ngram_dice(a, b, 3);

    // Best match per left record.
    let mut best_match: Vec<(usize, f32)> = Vec::with_capacity(texts_a.len());
    for a in &texts_a {
        let mut best = (0usize, f32::MIN);
        for (j, b) in texts_b.iter().enumerate() {
            let s = score(a, b);
            if s > best.1 {
                best = (j, s);
            }
        }
        best_match.push(best);
    }
    let threshold = otsu_threshold(&best_match.iter().map(|&(_, s)| s).collect::<Vec<_>>());
    let joined: std::collections::HashSet<(usize, usize)> = best_match
        .iter()
        .enumerate()
        .filter(|(_, &(_, s))| s >= threshold)
        .map(|(i, &(j, _))| (i, j))
        .collect();

    let predicted: Vec<bool> = dataset
        .test
        .iter()
        .map(|p| joined.contains(&(p.a, p.b)))
        .collect();
    let gold: Vec<bool> = dataset.test.iter().map(|p| p.label).collect();
    UnsupervisedBaselineResult {
        method: "Auto-FuzzyJoin".to_string(),
        dataset: dataset.name.clone(),
        matching: PrF1::from_predictions(&predicted, &gold),
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::em::EmProfile;

    #[test]
    fn zeroer_beats_chance_on_the_easy_dataset() {
        let dataset = EmProfile::dblp_acm().generate(0.15, 7);
        let result = run_zeroer(&dataset, 1);
        assert_eq!(result.method, "ZeroER");
        // On the near-clean bibliographic dataset, similarity features separate matches well.
        assert!(
            result.matching.f1 > 0.5,
            "ZeroER F1 too low on easy data: {:?}",
            result.matching
        );
    }

    #[test]
    fn auto_fuzzy_join_beats_chance_on_the_easy_dataset() {
        let dataset = EmProfile::dblp_acm().generate(0.15, 9);
        let result = run_auto_fuzzy_join(&dataset);
        assert!(
            result.matching.f1 > 0.4,
            "Auto-FuzzyJoin F1 too low on easy data: {:?}",
            result.matching
        );
    }

    #[test]
    fn unsupervised_baselines_degrade_on_the_hard_dataset() {
        let easy = EmProfile::dblp_acm().generate(0.15, 11);
        let hard = EmProfile::walmart_amazon().generate(0.15, 11);
        let easy_f1 = run_zeroer(&easy, 2).matching.f1;
        let hard_f1 = run_zeroer(&hard, 2).matching.f1;
        assert!(
            easy_f1 > hard_f1,
            "ZeroER should do worse on the hard dataset (easy {easy_f1}, hard {hard_f1})"
        );
    }

    #[test]
    fn pair_features_are_bounded() {
        let dataset = EmProfile::beer().generate(0.1, 13);
        for p in dataset.test.iter().take(20) {
            let f = pair_features(&dataset, p);
            assert_eq!(f.len(), 4);
            assert!(
                f.iter().all(|v| (0.0..=1.0).contains(v)),
                "features out of range: {f:?}"
            );
        }
    }

    #[test]
    fn otsu_threshold_separates_bimodal_scores() {
        let scores: Vec<f32> = (0..50)
            .map(|i| {
                if i < 25 {
                    0.1 + 0.001 * i as f32
                } else {
                    0.8 + 0.001 * i as f32
                }
            })
            .collect();
        let t = otsu_threshold(&scores);
        assert!(
            t > 0.2 && t < 0.8,
            "threshold {t} should fall between the modes"
        );
        assert_eq!(otsu_threshold(&[]), 0.5);
    }
}
