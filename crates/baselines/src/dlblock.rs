//! DL-Block-like blocking baseline (Figure 7 / Table VII comparison).
//!
//! DL-Block (Thirumuruganathan et al., VLDB 2021) is a deep-learning blocking framework that
//! embeds entities and retrieves nearest neighbours. Without pre-trained embeddings, this
//! re-implementation represents each entity with TF-IDF vectors and performs the same
//! kNN-join retrieval, which preserves the comparison the paper makes: Sudowoodo's
//! contrastively learned embeddings retrieve the same recall with a smaller candidate set
//! than a blocker whose representation is not trained for entity similarity.
//!
//! Retrieval goes through [`ShardedCosineIndex`]: the right table is ingested into
//! fixed-capacity shards and each query tile is scored shard-by-shard, so the baseline
//! scales past the point where the old `|A| x |B|` score matrix would have blown memory.
//! The index runs under a resident-memory budget ([`SHARD_MEMORY_BUDGET`]) — on corpora
//! whose densified TF-IDF matrix exceeds it, cold shards spill to a compact on-disk
//! format — and with routing-statistics shard skipping (on by default), which prunes
//! shards whose cosine upper bound cannot reach the top-k without faulting them back
//! from disk. Neither layer changes retrieval results.

use sudowoodo_cluster::tfidf::{add_into_dense, SparseVector, TfIdfVectorizer};
use sudowoodo_datasets::em::EmDataset;
use sudowoodo_index::{evaluate_blocking, BlockingQuality, ShardedCosineIndex};
use sudowoodo_text::serialize::serialize_record;

/// Above this `rows * features` element count, densifying the TF-IDF vectors would
/// allocate too much; fall back to per-pair sparse dots. (The pairwise *score* matrix no
/// longer constrains the dense path: the sharded index scores `query-tile x shard` GEMM
/// blocks, never the full `|A| x |B|` product.)
const DENSE_SCORE_LIMIT: usize = 8_000_000;

/// Rows per shard of the TF-IDF blocking index. The shard is the unit of parallel GEMM
/// scoring and of ingestion, so it should comfortably exceed the 256-row query tile.
const SHARD_CAPACITY: usize = 2048;

/// Resident-memory budget (bytes) of the TF-IDF blocking index. Densified TF-IDF
/// corpora are the largest matrices the baseline builds; past this budget the
/// least-recently-used shards live on disk and only shards whose routing bound can
/// still reach the top-k are ever read back. Small enough to bound the baseline's
/// footprint on feature-heavy corpora, large enough that the paper-scale fixtures never
/// spill (so tests and benches stay IO-free).
pub const SHARD_MEMORY_BUDGET: usize = 16 * 1024 * 1024;

/// Densifies one sparse TF-IDF vector into a `features`-length row.
fn densify(v: &SparseVector, features: usize) -> Vec<f32> {
    let mut row = vec![0.0f32; features];
    add_into_dense(&mut row, v);
    row
}

/// A blocking run for one `k`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingRun {
    /// Number of neighbours retrieved per left record.
    pub k: usize,
    /// Candidate-set quality.
    pub quality: BlockingQuality,
}

/// Runs the TF-IDF kNN blocker for a range of `k` values, returning one run per `k`.
pub fn run_dlblock_curve(dataset: &EmDataset, ks: &[usize]) -> Vec<BlockingRun> {
    let texts_a: Vec<String> = dataset.table_a.iter().map(serialize_record).collect();
    let texts_b: Vec<String> = dataset.table_b.iter().map(serialize_record).collect();
    let vectorizer = TfIdfVectorizer::fit(texts_a.iter().chain(texts_b.iter()).map(|s| s.as_str()));
    let vec_a = vectorizer.transform_all(texts_a.iter().map(|s| s.as_str()));
    let vec_b = vectorizer.transform_all(texts_b.iter().map(|s| s.as_str()));

    // Retrieve the top-max_k neighbours once, then take prefixes per k. When the feature
    // space densifies comfortably, retrieval is a sharded kNN join — rayon-parallel
    // `query-tile x shard^T` GEMM blocks with deterministic bounded-heap top-k selection,
    // so the full |A| x |B| score matrix is never materialized; otherwise fall back to
    // per-pair sparse dots.
    let max_k = *ks.iter().max().unwrap_or(&1);
    let features = vectorizer.num_features();
    let dense_ok = (vec_a.len().max(vec_b.len())).saturating_mul(features) <= DENSE_SCORE_LIMIT;
    let mut neighbours: Vec<Vec<(usize, f32)>> = Vec::with_capacity(vec_a.len());
    if dense_ok && features > 0 {
        let corpus_b: Vec<Vec<f32>> = vec_b.iter().map(|v| densify(v, features)).collect();
        let queries_a: Vec<Vec<f32>> = vec_a.iter().map(|v| densify(v, features)).collect();
        let index = ShardedCosineIndex::from_vectors_with_budget(
            &corpus_b,
            SHARD_CAPACITY,
            Some(SHARD_MEMORY_BUDGET),
        );
        neighbours.resize(vec_a.len(), Vec::new());
        // The join is ordered by query index, then descending score (ascending id ties).
        for (query, id, score) in index.knn_join(&queries_a, max_k) {
            neighbours[query].push((id, score));
        }
    } else {
        for a in &vec_a {
            let mut scored: Vec<(usize, f32)> = vec_b
                .iter()
                .enumerate()
                .map(|(j, b)| (j, sudowoodo_cluster::sparse_dot(a, b)))
                .collect();
            scored.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(max_k);
            neighbours.push(scored);
        }
    }

    ks.iter()
        .map(|&k| {
            let mut candidates = Vec::new();
            for (i, neigh) in neighbours.iter().enumerate() {
                for &(j, _) in neigh.iter().take(k) {
                    candidates.push((i, j));
                }
            }
            BlockingRun {
                k,
                quality: evaluate_blocking(
                    &candidates,
                    &dataset.gold_matches,
                    dataset.table_a.len(),
                    dataset.table_b.len(),
                ),
            }
        })
        .collect()
}

/// Convenience: the blocking quality at a single `k`.
pub fn run_dlblock(dataset: &EmDataset, k: usize) -> BlockingQuality {
    run_dlblock_curve(dataset, &[k])[0].quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::em::EmProfile;

    #[test]
    fn recall_grows_with_k_and_candidates_scale_linearly() {
        let dataset = EmProfile::abt_buy().generate(0.15, 3);
        let runs = run_dlblock_curve(&dataset, &[1, 5, 10]);
        assert_eq!(runs.len(), 3);
        assert!(runs[0].quality.recall <= runs[1].quality.recall + 1e-6);
        assert!(runs[1].quality.recall <= runs[2].quality.recall + 1e-6);
        assert!(runs[2].quality.num_candidates >= 9 * runs[0].quality.num_candidates);
    }

    #[test]
    fn tfidf_blocking_achieves_reasonable_recall_on_clean_data() {
        let dataset = EmProfile::dblp_acm().generate(0.15, 5);
        let quality = run_dlblock(&dataset, 10);
        assert!(
            quality.recall > 0.8,
            "TF-IDF blocking should retrieve most clean matches, got {}",
            quality.recall
        );
        assert!(quality.cssr < 0.2);
    }
}
