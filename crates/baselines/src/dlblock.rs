//! DL-Block-like blocking baseline (Figure 7 / Table VII comparison).
//!
//! DL-Block (Thirumuruganathan et al., VLDB 2021) is a deep-learning blocking framework that
//! embeds entities and retrieves nearest neighbours. Without pre-trained embeddings, this
//! re-implementation represents each entity with TF-IDF vectors and performs the same
//! kNN-join retrieval, which preserves the comparison the paper makes: Sudowoodo's
//! contrastively learned embeddings retrieve the same recall with a smaller candidate set
//! than a blocker whose representation is not trained for entity similarity.

use sudowoodo_cluster::tfidf::TfIdfVectorizer;
use sudowoodo_datasets::em::EmDataset;
use sudowoodo_index::{evaluate_blocking, BlockingQuality};
use sudowoodo_text::serialize::serialize_record;

/// A blocking run for one `k`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingRun {
    /// Number of neighbours retrieved per left record.
    pub k: usize,
    /// Candidate-set quality.
    pub quality: BlockingQuality,
}

/// Runs the TF-IDF kNN blocker for a range of `k` values, returning one run per `k`.
pub fn run_dlblock_curve(dataset: &EmDataset, ks: &[usize]) -> Vec<BlockingRun> {
    let texts_a: Vec<String> = dataset.table_a.iter().map(serialize_record).collect();
    let texts_b: Vec<String> = dataset.table_b.iter().map(serialize_record).collect();
    let vectorizer = TfIdfVectorizer::fit(texts_a.iter().chain(texts_b.iter()).map(|s| s.as_str()));
    let vec_a = vectorizer.transform_all(texts_a.iter().map(|s| s.as_str()));
    let vec_b = vectorizer.transform_all(texts_b.iter().map(|s| s.as_str()));

    // Score all pairs once (sparse dot products), then take prefixes per k.
    let mut neighbours: Vec<Vec<(usize, f32)>> = Vec::with_capacity(vec_a.len());
    for a in &vec_a {
        let mut scored: Vec<(usize, f32)> = vec_b
            .iter()
            .enumerate()
            .map(|(j, b)| (j, sudowoodo_cluster::sparse_dot(a, b)))
            .collect();
        scored.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(*ks.iter().max().unwrap_or(&1));
        neighbours.push(scored);
    }

    ks.iter()
        .map(|&k| {
            let mut candidates = Vec::new();
            for (i, neigh) in neighbours.iter().enumerate() {
                for &(j, _) in neigh.iter().take(k) {
                    candidates.push((i, j));
                }
            }
            BlockingRun {
                k,
                quality: evaluate_blocking(
                    &candidates,
                    &dataset.gold_matches,
                    dataset.table_a.len(),
                    dataset.table_b.len(),
                ),
            }
        })
        .collect()
}

/// Convenience: the blocking quality at a single `k`.
pub fn run_dlblock(dataset: &EmDataset, k: usize) -> BlockingQuality {
    run_dlblock_curve(dataset, &[k])[0].quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::em::EmProfile;

    #[test]
    fn recall_grows_with_k_and_candidates_scale_linearly() {
        let dataset = EmProfile::abt_buy().generate(0.15, 3);
        let runs = run_dlblock_curve(&dataset, &[1, 5, 10]);
        assert_eq!(runs.len(), 3);
        assert!(runs[0].quality.recall <= runs[1].quality.recall + 1e-6);
        assert!(runs[1].quality.recall <= runs[2].quality.recall + 1e-6);
        assert!(runs[2].quality.num_candidates >= 9 * runs[0].quality.num_candidates);
    }

    #[test]
    fn tfidf_blocking_achieves_reasonable_recall_on_clean_data() {
        let dataset = EmProfile::dblp_acm().generate(0.15, 5);
        let quality = run_dlblock(&dataset, 10);
        assert!(
            quality.recall > 0.8,
            "TF-IDF blocking should retrieve most clean matches, got {}",
            quality.recall
        );
        assert!(quality.cssr < 0.2);
    }
}
