//! # sudowoodo-baselines
//!
//! Re-implementations of the systems the paper compares against, at the
//! algorithmic-idea level (see DESIGN.md for the substitution table):
//!
//! * [`supervised`] — Ditto-like, Rotom-like, and DeepMatcher-like supervised matchers
//!   (Tables V / XVIII);
//! * [`unsupervised`] — ZeroER (Gaussian-mixture over pair similarities) and
//!   Auto-FuzzyJoin-like matchers (Table VI);
//! * [`dlblock`] — a DL-Block-like kNN blocker over TF-IDF representations
//!   (Table VII / Figure 7);
//! * [`baran`] — a Baran-like error-correction ensemble with Raha-like or perfect error
//!   detection (Table VIII);
//! * [`columns`] — Sherlock-like / Sato-like column featurizers paired with
//!   LR / SVM / GBT / RF / SIM pair classifiers (Tables X / XII).

#![warn(missing_docs)]

pub mod baran;
pub mod columns;
pub mod dlblock;
pub mod supervised;
pub mod unsupervised;

pub use baran::{run_baran, BaranResult, ErrorDetection};
pub use columns::{
    run_column_baseline, run_column_baseline_grid, ColumnFeaturizer, PairClassifier,
};
pub use dlblock::{run_dlblock, run_dlblock_curve, BlockingRun};
pub use supervised::{run_deepmatcher_full, run_ditto, run_rotom, SupervisedBaselineResult};
pub use unsupervised::{run_auto_fuzzy_join, run_zeroer, UnsupervisedBaselineResult};
