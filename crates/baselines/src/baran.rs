//! Baran-like error-correction baseline (Table VIII).
//!
//! Baran (Mahdavi & Abedjan, VLDB 2020) learns an ensemble over the outputs of multiple
//! error-correction generators using a few labeled tuples. This re-implementation keeps the
//! same decision procedure at the feature level: every `(cell, candidate)` pair is described
//! by hand-crafted corrector features (edit similarity, column-frequency, format agreement,
//! emptiness), a logistic-regression ensemble is trained on the candidate pairs of a few
//! labeled rows, and corrections are emitted per cell. Two error-detection (ED) settings are
//! supported, mirroring the paper: a Raha-like heuristic detector and a perfect-ED oracle.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sudowoodo_datasets::cleaning::CleaningDataset;
use sudowoodo_ml::linear::LogisticRegression;
use sudowoodo_ml::metrics::PrF1;
use sudowoodo_text::jaccard::edit_similarity;

/// Which error-detection stage precedes the corrector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorDetection {
    /// A Raha-like heuristic detector (rare-value / empty / format-outlier cells).
    RahaLike,
    /// An oracle that flags exactly the truly erroneous cells.
    Perfect,
}

/// Result of a Baran-like run.
#[derive(Clone, Debug)]
pub struct BaranResult {
    /// Method name (includes the ED setting).
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Correction quality over the unlabeled rows.
    pub correction: PrF1,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Per-column value frequencies (used both for features and for the heuristic detector).
fn column_frequencies(dataset: &CleaningDataset) -> Vec<HashMap<String, usize>> {
    let cols = dataset.dirty.num_columns();
    let mut freq = vec![HashMap::new(); cols];
    for row in &dataset.dirty.rows {
        for (c, counts) in freq.iter_mut().enumerate() {
            let v = row.value_at(c).unwrap_or_default().to_string();
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    freq
}

/// Features describing a candidate correction for a cell.
fn candidate_features(
    current: &str,
    candidate: &str,
    col_freq: &HashMap<String, usize>,
    num_rows: usize,
) -> Vec<f32> {
    let edit = edit_similarity(current, candidate);
    let cand_freq = *col_freq.get(candidate).unwrap_or(&0) as f32 / num_rows.max(1) as f32;
    let cur_freq = *col_freq.get(current).unwrap_or(&0) as f32 / num_rows.max(1) as f32;
    let cur_empty = f32::from(current.is_empty() || current == "n/a");
    let same_format = f32::from(
        current.parse::<f64>().is_ok() == candidate.parse::<f64>().is_ok()
            && current.chars().any(|c| c.is_uppercase())
                == candidate.chars().any(|c| c.is_uppercase()),
    );
    let len_ratio = {
        let (a, b) = (current.len() as f32, candidate.len() as f32);
        if a.max(b) <= 0.0 {
            1.0
        } else {
            a.min(b) / a.max(b)
        }
    };
    vec![edit, cand_freq, cur_freq, cur_empty, same_format, len_ratio]
}

/// The Raha-like heuristic detector: a cell is flagged when it is empty, is a rare value in
/// its column, or disagrees with the dominant numeric/textual format of the column.
fn raha_like_detect(
    dataset: &CleaningDataset,
    freq: &[HashMap<String, usize>],
) -> Vec<(usize, usize)> {
    let rows = dataset.dirty.num_rows();
    let cols = dataset.dirty.num_columns();
    let mut flagged = Vec::new();
    // Per-column numeric-format majority.
    let numeric_fraction: Vec<f32> = (0..cols)
        .map(|c| {
            let numeric = dataset
                .dirty
                .rows
                .iter()
                .filter(|r| {
                    r.value_at(c)
                        .map(|v| v.parse::<f64>().is_ok())
                        .unwrap_or(false)
                })
                .count();
            numeric as f32 / rows.max(1) as f32
        })
        .collect();
    for (r, row) in dataset.dirty.rows.iter().enumerate() {
        for c in 0..cols {
            let value = row.value_at(c).unwrap_or_default();
            let count = *freq[c].get(value).unwrap_or(&0);
            let is_empty = value.is_empty() || value == "n/a";
            let is_rare = count <= 1 && rows > 20;
            let numeric_mismatch =
                (value.parse::<f64>().is_ok() as i32 as f32 - numeric_fraction[c].round()).abs()
                    > 0.5
                    && !value.is_empty();
            if is_empty || is_rare || numeric_mismatch {
                flagged.push((r, c));
            }
        }
    }
    flagged
}

/// Runs the Baran-like corrector with the chosen ED setting and `labeled_rows` labeled rows.
pub fn run_baran(
    dataset: &CleaningDataset,
    detection: ErrorDetection,
    labeled_rows: usize,
    seed: u64,
) -> BaranResult {
    let start = std::time::Instant::now();
    let freq = column_frequencies(dataset);
    let num_rows = dataset.dirty.num_rows();

    // Labeled / evaluated row split (uniform sampling, as granted to Sudowoodo as well).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..num_rows).collect();
    order.shuffle(&mut rng);
    let labeled: Vec<usize> = order.iter().copied().take(labeled_rows).collect();
    let evaluated: std::collections::HashSet<usize> =
        order.iter().copied().skip(labeled_rows).collect();

    // Train the ensemble on the labeled rows' candidate pairs.
    let mut x = Vec::new();
    let mut y = Vec::new();
    for &row in &labeled {
        for (c, col_freq) in freq.iter().enumerate() {
            let Some(candidates) = dataset.candidates.get(&(row, c)) else {
                continue;
            };
            let current = dataset.dirty.cell(row, c).unwrap_or_default();
            let clean = dataset.clean.cell(row, c).unwrap_or_default();
            for cand in candidates {
                x.push(candidate_features(current, cand, col_freq, num_rows));
                y.push(cand == clean);
            }
        }
    }
    let mut model = LogisticRegression::new(6).with_hyperparams(0.3, 1e-4, 40);
    model.fit(&x, &y, &mut rng);
    // Candidate sets are heavily imbalanced (at most one correct candidate per cell), so a
    // fixed 0.5 probability cut-off under-fires; calibrate the acceptance threshold on the
    // labeled rows instead (Baran's ensemble similarly tunes itself on the labeled tuples).
    let train_scores: Vec<f32> = x.iter().map(|f| model.predict_proba(f)).collect();
    let acceptance_threshold = if train_scores.is_empty() {
        0.5
    } else {
        sudowoodo_ml::metrics::best_f1_threshold(&train_scores, &y).0
    };

    // Which cells get a correction attempt.
    let detected: std::collections::HashSet<(usize, usize)> = match detection {
        ErrorDetection::Perfect => dataset.error_cells().into_iter().collect(),
        ErrorDetection::RahaLike => raha_like_detect(dataset, &freq).into_iter().collect(),
    };

    // Propose corrections on evaluated rows.
    let mut corrections_made = 0usize;
    let mut correct = 0usize;
    for (&(row, col), candidates) in &dataset.candidates {
        if !evaluated.contains(&row) || !detected.contains(&(row, col)) {
            continue;
        }
        let current = dataset.dirty.cell(row, col).unwrap_or_default();
        let best = candidates
            .iter()
            .map(|cand| {
                (
                    cand,
                    model.predict_proba(&candidate_features(current, cand, &freq[col], num_rows)),
                )
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((candidate, score)) = best {
            if score >= acceptance_threshold && candidate != current {
                corrections_made += 1;
                if dataset.correction_for(row, col) == Some(candidate.as_str()) {
                    correct += 1;
                }
            }
        }
    }
    let errors_in_scope = dataset
        .errors
        .iter()
        .filter(|e| evaluated.contains(&e.row))
        .count();
    let precision = if corrections_made == 0 {
        0.0
    } else {
        correct as f32 / corrections_made as f32
    };
    let recall = if errors_in_scope == 0 {
        0.0
    } else {
        correct as f32 / errors_in_scope as f32
    };
    let f1 = if precision + recall <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    BaranResult {
        method: match detection {
            ErrorDetection::RahaLike => "Raha + Baran".to_string(),
            ErrorDetection::Perfect => "Perfect ED + Baran".to_string(),
        },
        dataset: dataset.name.clone(),
        correction: PrF1 {
            precision,
            recall,
            f1,
        },
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::cleaning::CleaningProfile;

    #[test]
    fn perfect_ed_baran_corrects_a_good_fraction_of_errors() {
        let dataset = CleaningProfile::beers().generate(0.3, 7);
        let result = run_baran(&dataset, ErrorDetection::Perfect, 20, 1);
        assert_eq!(result.method, "Perfect ED + Baran");
        assert!(
            result.correction.f1 > 0.3,
            "perfect-ED Baran should correct a reasonable share: {:?}",
            result.correction
        );
    }

    #[test]
    fn perfect_ed_outperforms_heuristic_ed() {
        let dataset = CleaningProfile::hospital().generate(0.4, 9);
        let raha = run_baran(&dataset, ErrorDetection::RahaLike, 20, 2);
        let perfect = run_baran(&dataset, ErrorDetection::Perfect, 20, 2);
        assert!(
            perfect.correction.f1 >= raha.correction.f1,
            "perfect ED ({}) should be at least as good as heuristic ED ({})",
            perfect.correction.f1,
            raha.correction.f1
        );
    }

    #[test]
    fn candidate_features_are_bounded_and_discriminative() {
        let freq: HashMap<String, usize> = [("texas".to_string(), 5), ("texs".to_string(), 1)]
            .into_iter()
            .collect();
        let good = candidate_features("texs", "texas", &freq, 10);
        let bad = candidate_features("texs", "completely different", &freq, 10);
        assert!(good.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(
            good[0] > bad[0],
            "edit similarity should favour the close fix"
        );
        assert!(
            good[1] > bad[1],
            "frequency should favour the in-domain fix"
        );
    }
}
