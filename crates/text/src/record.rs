//! Structured data items: entity records, relational tables, and table columns.
//!
//! These are the inputs of every Sudowoodo task: Entity Matching consumes [`Record`]s,
//! data cleaning consumes [`Table`]s of records plus per-cell candidate corrections, and
//! semantic type detection consumes [`Column`]s.

use std::fmt;

/// An entity entry / table row: an ordered list of `(attribute, value)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Record {
    attributes: Vec<(String, String)>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record {
            attributes: Vec::new(),
        }
    }

    /// Creates a record from `(attribute, value)` pairs.
    pub fn from_pairs<I, A, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<String>,
        V: Into<String>,
    {
        Record {
            attributes: pairs
                .into_iter()
                .map(|(a, v)| (a.into(), v.into()))
                .collect(),
        }
    }

    /// Appends an attribute.
    pub fn push(&mut self, attribute: impl Into<String>, value: impl Into<String>) {
        self.attributes.push((attribute.into(), value.into()));
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// `true` when the record has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Iterates over `(attribute, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attributes
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
    }

    /// All attribute names in order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|(a, _)| a.as_str()).collect()
    }

    /// Value of the attribute at position `idx`.
    pub fn value_at(&self, idx: usize) -> Option<&str> {
        self.attributes.get(idx).map(|(_, v)| v.as_str())
    }

    /// Attribute name at position `idx`.
    pub fn attribute_at(&self, idx: usize) -> Option<&str> {
        self.attributes.get(idx).map(|(a, _)| a.as_str())
    }

    /// Looks up a value by attribute name (first match).
    pub fn get(&self, attribute: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(a, _)| a == attribute)
            .map(|(_, v)| v.as_str())
    }

    /// Replaces the value at position `idx`, returning the previous value.
    pub fn set_value_at(&mut self, idx: usize, value: impl Into<String>) -> Option<String> {
        self.attributes
            .get_mut(idx)
            .map(|(_, v)| std::mem::replace(v, value.into()))
    }

    /// Removes the attribute at position `idx`.
    pub fn remove_at(&mut self, idx: usize) -> Option<(String, String)> {
        if idx < self.attributes.len() {
            Some(self.attributes.remove(idx))
        } else {
            None
        }
    }

    /// Swaps two attributes (used by the `col_shuffle` augmentation operator).
    pub fn swap(&mut self, i: usize, j: usize) {
        self.attributes.swap(i, j);
    }

    /// Concatenation of all values separated by spaces (used for TF-IDF features and
    /// Jaccard-similarity profiling).
    pub fn text(&self) -> String {
        self.attributes
            .iter()
            .map(|(_, v)| v.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (a, v)) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{a}={v}")?;
        }
        Ok(())
    }
}

/// A relational table: a schema plus rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Ordered column names.
    pub columns: Vec<String>,
    /// Rows; every row should have one value per column.
    pub rows: Vec<Record>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row built from values aligned with the schema.
    ///
    /// # Panics
    /// Panics when the number of values differs from the number of columns.
    pub fn push_row(&mut self, values: Vec<String>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "push_row: expected {} values, got {}",
            self.columns.len(),
            values.len()
        );
        let record = Record::from_pairs(self.columns.iter().cloned().zip(values));
        self.rows.push(record);
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Extracts column `idx` as a [`Column`].
    pub fn column(&self, idx: usize) -> Column {
        Column {
            name: Some(self.columns[idx].clone()),
            values: self
                .rows
                .iter()
                .map(|r| r.value_at(idx).unwrap_or_default().to_string())
                .collect(),
        }
    }

    /// The value of cell `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.value_at(col))
    }

    /// Overwrites the value of cell `(row, col)`.
    pub fn set_cell(&mut self, row: usize, col: usize, value: impl Into<String>) {
        if let Some(r) = self.rows.get_mut(row) {
            r.set_value_at(col, value);
        }
    }
}

/// A table column: an optional header plus values, the data item of column matching.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Column {
    /// Column header, when known. Sudowoodo's bare-bone serialization ignores it.
    pub name: Option<String>,
    /// Cell values.
    pub values: Vec<String>,
}

impl Column {
    /// Creates a column from values.
    pub fn from_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        Column {
            name: None,
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates a named column.
    pub fn named<I, V>(name: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        Column {
            name: Some(name.into()),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Truncates the column to at most `n` values (columns are long; serialization caps them).
    pub fn truncated(&self, n: usize) -> Column {
        Column {
            name: self.name.clone(),
            values: self.values.iter().take(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut r =
            Record::from_pairs([("title", "instant immersion spanish"), ("price", "36.11")]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("price"), Some("36.11"));
        assert_eq!(r.value_at(0), Some("instant immersion spanish"));
        assert_eq!(r.attribute_at(1), Some("price"));
        r.set_value_at(1, "17.10");
        assert_eq!(r.get("price"), Some("17.10"));
        r.push("brand", "encore");
        assert_eq!(r.attribute_names(), vec!["title", "price", "brand"]);
        r.swap(0, 2);
        assert_eq!(r.attribute_at(0), Some("brand"));
        let removed = r.remove_at(0).unwrap();
        assert_eq!(removed.0, "brand");
        assert!(r.text().contains("17.10"));
        assert!(!r.is_empty());
        assert!(format!("{r}").contains("price=17.10"));
    }

    #[test]
    fn table_cells_and_columns() {
        let mut t = Table::new("beers", vec!["name".into(), "abv".into()]);
        t.push_row(vec!["ipa".into(), "0.08".into()]);
        t.push_row(vec!["stout".into(), "0.05".into()]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.cell(1, 0), Some("stout"));
        t.set_cell(1, 1, "0.06");
        assert_eq!(t.cell(1, 1), Some("0.06"));
        let col = t.column(1);
        assert_eq!(col.name.as_deref(), Some("abv"));
        assert_eq!(col.values, vec!["0.08", "0.06"]);
    }

    #[test]
    #[should_panic(expected = "expected 2 values")]
    fn push_row_validates_arity() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn column_truncation() {
        let c = Column::named("state", ["NY", "CA", "FL", "TX"]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        let t = c.truncated(2);
        assert_eq!(t.values, vec!["NY", "CA"]);
        assert_eq!(t.name.as_deref(), Some("state"));
        let anon = Column::from_values(["1", "2"]);
        assert!(anon.name.is_none());
    }
}
