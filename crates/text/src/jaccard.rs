//! Token-set similarity utilities.
//!
//! Jaccard similarity over token sets drives the paper's data-profiling analysis
//! (Table XVI difficulty levels) and is used by the Auto-FuzzyJoin and DL-Block baselines.

use std::collections::HashSet;

use crate::tokenizer::tokenize;

/// Jaccard similarity of two token sets.
pub fn jaccard_tokens(a: &[String], b: &[String]) -> f32 {
    let sa: HashSet<&str> = a.iter().map(|s| s.as_str()).collect();
    let sb: HashSet<&str> = b.iter().map(|s| s.as_str()).collect();
    jaccard_sets(&sa, &sb)
}

/// Jaccard similarity of two raw strings (tokenized first).
pub fn jaccard_text(a: &str, b: &str) -> f32 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    jaccard_tokens(&ta, &tb)
}

fn jaccard_sets(a: &HashSet<&str>, b: &HashSet<&str>) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f32 / union as f32
}

/// Character n-gram multiset overlap (Dice coefficient), a cheap fuzzy string similarity used
/// by the Auto-FuzzyJoin baseline for near-duplicate detection on short strings.
pub fn char_ngram_dice(a: &str, b: &str, n: usize) -> f32 {
    let ga = char_ngrams(a, n);
    let gb = char_ngrams(b, n);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let sa: HashSet<&str> = ga.iter().map(|s| s.as_str()).collect();
    let sb: HashSet<&str> = gb.iter().map(|s| s.as_str()).collect();
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f32 / (sa.len() + sb.len()) as f32
}

fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = s
        .to_lowercase()
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if chars.len() < n {
        if chars.is_empty() {
            return Vec::new();
        }
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Levenshtein edit distance (used by the Baran-like corrector to rank typo fixes).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            current[j + 1] = (prev[j + 1] + 1).min(current[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Normalized edit similarity in `[0, 1]`.
pub fn edit_similarity(a: &str, b: &str) -> f32 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f32 / max_len as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_identical_and_disjoint() {
        assert_eq!(jaccard_text("canon ink cyan", "canon ink cyan"), 1.0);
        assert_eq!(jaccard_text("canon ink", "epson toner"), 0.0);
        assert_eq!(jaccard_text("", ""), 1.0);
        assert_eq!(jaccard_text("canon", ""), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        // {a,b,c} vs {b,c,d}: 2/4
        assert!((jaccard_text("a b c", "b c d") - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dice_handles_short_strings() {
        assert_eq!(char_ngram_dice("", "", 3), 1.0);
        assert_eq!(char_ngram_dice("ab", "", 3), 0.0);
        assert!(char_ngram_dice("microsoft", "microsft", 3) > 0.6);
        assert!(char_ngram_dice("microsoft", "apple", 3) < 0.2);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!((edit_similarity("hospital", "hosptial") - 0.75).abs() < 1e-6);
        assert_eq!(edit_similarity("", ""), 1.0);
    }
}
