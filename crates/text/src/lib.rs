//! # sudowoodo-text
//!
//! Data model, serialization, and tokenization for the Sudowoodo reproduction.
//!
//! All Sudowoodo tasks operate on *data items* serialized into token sequences:
//! entity entries and dirty-table cells become `[COL] attr [VAL] value ...` sequences
//! (the Ditto scheme), table columns become `[VAL] v1 [VAL] v2 ...` sequences, and pairs
//! of items are joined as `[CLS] x [SEP] y [SEP]`.
//!
//! This crate provides:
//! * [`record`] — [`record::Record`], [`record::Table`], [`record::Column`]
//! * [`serialize`] — the serialization schemes of §II-B and §V
//! * [`tokenizer`] — a deterministic word-level tokenizer plus a corpus-built [`tokenizer::Vocab`]
//!   with hashed out-of-vocabulary buckets
//! * [`jaccard`] — token-set and string similarities used for data profiling and rule-based
//!   baselines

#![warn(missing_docs)]

pub mod jaccard;
pub mod record;
pub mod serialize;
pub mod tokenizer;

pub use record::{Column, Record, Table};
pub use serialize::{serialize_column, serialize_pair, serialize_record, serialize_record_pair};
pub use tokenizer::{tokenize, Vocab, VocabConfig};
