//! Serialization of data items into token sequences.
//!
//! Follows the Ditto-style scheme used by the paper (§II-B and §V):
//!
//! * entity entry: `[COL] attr1 [VAL] v1 [COL] attr2 [VAL] v2 ...`
//! * pair: `[CLS] serialize(x) [SEP] serialize(y) [SEP]`
//! * cell, context-free: `[COL] attr_i [VAL] r_i`
//! * cell, contextual: the full row serialization with the cell value replaced by the
//!   candidate correction
//! * column: `[VAL] v1 [VAL] v2 ...` (bare-bone scheme without metadata)

use crate::record::{Column, Record};

/// Marker token starting an attribute name.
pub const COL: &str = "[COL]";
/// Marker token starting an attribute value.
pub const VAL: &str = "[VAL]";
/// Sequence-start marker used for pair serialization.
pub const CLS: &str = "[CLS]";
/// Separator between the two items of a pair.
pub const SEP: &str = "[SEP]";

/// Serializes an entity entry / row: `[COL] a1 [VAL] v1 [COL] a2 [VAL] v2 ...`.
pub fn serialize_record(record: &Record) -> String {
    let mut out = String::new();
    for (attr, value) in record.iter() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(COL);
        out.push(' ');
        out.push_str(attr);
        out.push(' ');
        out.push_str(VAL);
        out.push(' ');
        out.push_str(value);
    }
    out
}

/// Serializes a pair of already-serialized items: `[CLS] x [SEP] y [SEP]`.
pub fn serialize_pair(x: &str, y: &str) -> String {
    format!("{CLS} {x} {SEP} {y} {SEP}")
}

/// Serializes a pair of records.
pub fn serialize_record_pair(x: &Record, y: &Record) -> String {
    serialize_pair(&serialize_record(x), &serialize_record(y))
}

/// Context-free cell serialization: `[COL] attr [VAL] value`.
pub fn serialize_cell(attribute: &str, value: &str) -> String {
    format!("{COL} {attribute} {VAL} {value}")
}

/// Contextual cell serialization: the whole row with the value of `cell_idx` replaced by
/// `replacement` (used to encode a candidate correction in its row context).
pub fn serialize_cell_in_context(row: &Record, cell_idx: usize, replacement: &str) -> String {
    let mut patched = row.clone();
    patched.set_value_at(cell_idx, replacement);
    serialize_record(&patched)
}

/// Bare-bone column serialization: `[VAL] v1 [VAL] v2 ...`, capped at `max_values` cells.
pub fn serialize_column(column: &Column, max_values: usize) -> String {
    let mut out = String::new();
    for value in column.values.iter().take(max_values) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(VAL);
        out.push(' ');
        out.push_str(value);
    }
    out
}

/// Column serialization including the header name, for the "with metadata" variant
/// discussed in §V-B.
pub fn serialize_column_with_name(column: &Column, max_values: usize) -> String {
    let body = serialize_column(column, max_values);
    match &column.name {
        Some(name) => format!("{COL} {name} {body}"),
        None => body,
    }
}

/// Splits a serialized record back into `(attribute, value)` chunks. Used by the
/// attribute-level augmentation operators which must respect `[COL] ... [VAL] ...` spans.
pub fn split_serialized_attributes(serialized: &str) -> Vec<(String, String)> {
    let tokens: Vec<&str> = serialized.split_whitespace().collect();
    let mut result = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i] == COL {
            // attribute name runs until [VAL]
            let mut attr = Vec::new();
            i += 1;
            while i < tokens.len() && tokens[i] != VAL {
                attr.push(tokens[i]);
                i += 1;
            }
            // skip [VAL]
            if i < tokens.len() && tokens[i] == VAL {
                i += 1;
            }
            let mut value = Vec::new();
            while i < tokens.len() && tokens[i] != COL {
                value.push(tokens[i]);
                i += 1;
            }
            result.push((attr.join(" "), value.join(" ")));
        } else {
            i += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record::from_pairs([
            ("title", "instant immers spanish dlux 2"),
            ("price", "36.11"),
        ])
    }

    #[test]
    fn record_serialization_uses_col_val_markers() {
        let s = serialize_record(&sample_record());
        assert_eq!(
            s,
            "[COL] title [VAL] instant immers spanish dlux 2 [COL] price [VAL] 36.11"
        );
    }

    #[test]
    fn pair_serialization_wraps_with_cls_sep() {
        let r = sample_record();
        let s = serialize_record_pair(&r, &r);
        assert!(s.starts_with("[CLS] [COL] title"));
        assert!(s.ends_with("[SEP]"));
        assert_eq!(s.matches(SEP).count(), 2);
    }

    #[test]
    fn cell_serializations() {
        assert_eq!(serialize_cell("state", "CA"), "[COL] state [VAL] CA");
        let row = Record::from_pairs([("state", "CA"), ("zip", "98052")]);
        let s = serialize_cell_in_context(&row, 0, "WA");
        assert_eq!(s, "[COL] state [VAL] WA [COL] zip [VAL] 98052");
    }

    #[test]
    fn column_serialization_caps_length() {
        let c = Column::named("state", ["New York", "California", "Florida"]);
        assert_eq!(serialize_column(&c, 2), "[VAL] New York [VAL] California");
        assert!(serialize_column_with_name(&c, 1).starts_with("[COL] state [VAL]"));
        let anon = Column::from_values(["a"]);
        assert_eq!(serialize_column_with_name(&anon, 5), "[VAL] a");
    }

    #[test]
    fn split_attributes_roundtrip() {
        let r = sample_record();
        let s = serialize_record(&r);
        let parts = split_serialized_attributes(&s);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "title");
        assert_eq!(parts[0].1, "instant immers spanish dlux 2");
        assert_eq!(parts[1], ("price".to_string(), "36.11".to_string()));
    }

    #[test]
    fn split_attributes_handles_missing_values() {
        let parts = split_serialized_attributes("[COL] manufacturer [VAL] [COL] price [VAL] 7.49");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], ("manufacturer".to_string(), String::new()));
        assert_eq!(parts[1].1, "7.49");
    }
}
