//! Tokenization and vocabulary management.
//!
//! The paper relies on the sub-word tokenizers of RoBERTa/DistilBERT. This reproduction
//! uses a corpus-built word-level vocabulary with a deterministic character-trigram hashing
//! fallback for out-of-vocabulary tokens, so rare strings (product IDs, zip codes) still map
//! to stable ids instead of collapsing into a single `[UNK]` bucket — which matters for the
//! contrastive objective, where exactly those rare tokens distinguish hard negatives.

use std::collections::HashMap;

/// Splits serialized text into lowercase tokens.
///
/// Special marker tokens (`[COL]`, `[VAL]`, `[CLS]`, `[SEP]`) are preserved verbatim;
/// everything else is lowercased and split on whitespace and punctuation boundaries, with
/// digit runs kept together.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    tokenize_each(text, |t| {
        tokens.push(t.to_string());
        true
    });
    tokens
}

/// Streaming flavour of [`tokenize`]: calls `f` once per token, reusing a single buffer
/// instead of allocating one `String` per token. `f` returns `false` to stop early (used
/// by [`Vocab::encode`] to bail out at `max_len` — encoding is on the hot path of every
/// embedding batch, so it should neither allocate per token nor scan past the cutoff).
pub fn tokenize_each(text: &str, mut f: impl FnMut(&str) -> bool) {
    let mut current = String::new();
    for raw in text.split_whitespace() {
        if raw.starts_with('[') && raw.ends_with(']') {
            if !f(raw) {
                return;
            }
            continue;
        }
        current.clear();
        let mut current_is_alnum = false;
        for ch in raw.chars() {
            let is_alnum = ch.is_alphanumeric();
            if is_alnum {
                if !current.is_empty() && !current_is_alnum {
                    if !f(&current) {
                        return;
                    }
                    current.clear();
                }
                current.push(ch.to_ascii_lowercase());
            } else {
                if !current.is_empty() && current_is_alnum {
                    if !f(&current) {
                        return;
                    }
                    current.clear();
                }
                // punctuation characters are dropped (they carry no signal in these corpora)
            }
            current_is_alnum = is_alnum;
        }
        if !current.is_empty() && !f(&current) {
            return;
        }
    }
}

/// Reserved token ids.
pub mod special {
    /// Padding token id.
    pub const PAD: usize = 0;
    /// Unknown-token id (only used when hashing is disabled).
    pub const UNK: usize = 1;
    /// `[COL]` marker id.
    pub const COL: usize = 2;
    /// `[VAL]` marker id.
    pub const VAL: usize = 3;
    /// `[CLS]` marker id.
    pub const CLS: usize = 4;
    /// `[SEP]` marker id.
    pub const SEP: usize = 5;
    /// Number of reserved ids.
    pub const COUNT: usize = 6;
}

/// A token vocabulary built from a corpus.
#[derive(Clone, Debug)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
    /// Number of hash buckets appended after the in-vocabulary ids for OOV tokens.
    hash_buckets: usize,
}

/// Configuration for building a [`Vocab`].
#[derive(Clone, Debug)]
pub struct VocabConfig {
    /// Keep at most this many distinct non-special tokens (most frequent first).
    pub max_size: usize,
    /// Drop tokens seen fewer than this many times.
    pub min_count: usize,
    /// Number of hash buckets for out-of-vocabulary tokens (0 disables hashing; OOV → UNK).
    pub hash_buckets: usize,
}

impl Default for VocabConfig {
    fn default() -> Self {
        VocabConfig {
            max_size: 20_000,
            min_count: 1,
            hash_buckets: 512,
        }
    }
}

impl Vocab {
    /// Builds a vocabulary from an iterator of already-tokenized documents.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a [String]>, config: &VocabConfig) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for doc in docs {
            for token in doc {
                if is_special(token) {
                    continue;
                }
                *counts.entry(token.clone()).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= config.min_count)
            .collect();
        // Sort by frequency (descending) then token (ascending) for determinism.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(config.max_size);

        let mut token_to_id = HashMap::new();
        let mut id_to_token = vec![
            "[PAD]".to_string(),
            "[UNK]".to_string(),
            "[COL]".to_string(),
            "[VAL]".to_string(),
            "[CLS]".to_string(),
            "[SEP]".to_string(),
        ];
        token_to_id.insert("[PAD]".to_string(), special::PAD);
        token_to_id.insert("[UNK]".to_string(), special::UNK);
        token_to_id.insert("[COL]".to_string(), special::COL);
        token_to_id.insert("[VAL]".to_string(), special::VAL);
        token_to_id.insert("[CLS]".to_string(), special::CLS);
        token_to_id.insert("[SEP]".to_string(), special::SEP);
        for (token, _) in ranked {
            let id = id_to_token.len();
            token_to_id.insert(token.clone(), id);
            id_to_token.push(token);
        }
        Vocab {
            token_to_id,
            id_to_token,
            hash_buckets: config.hash_buckets,
        }
    }

    /// Builds a vocabulary directly from raw (unserialized) strings.
    pub fn build_from_texts<'a>(
        texts: impl IntoIterator<Item = &'a str>,
        config: &VocabConfig,
    ) -> Self {
        let tokenized: Vec<Vec<String>> = texts.into_iter().map(tokenize).collect();
        Vocab::build(tokenized.iter().map(|t| t.as_slice()), config)
    }

    /// Total number of ids the vocabulary can emit (known tokens + hash buckets).
    pub fn size(&self) -> usize {
        self.id_to_token.len() + self.hash_buckets
    }

    /// Number of known (non-hashed) tokens including the special tokens.
    pub fn known_size(&self) -> usize {
        self.id_to_token.len()
    }

    /// Maps a token to its id, hashing out-of-vocabulary tokens into the bucket range.
    pub fn id_of(&self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        if self.hash_buckets == 0 {
            return special::UNK;
        }
        let bucket = fnv1a(token) as usize % self.hash_buckets;
        self.id_to_token.len() + bucket
    }

    /// The token for an in-vocabulary id.
    pub fn token_of(&self, id: usize) -> Option<&str> {
        self.id_to_token.get(id).map(|s| s.as_str())
    }

    /// Encodes text into token ids, truncated to `max_len`. Streams through
    /// [`tokenize_each`], so no per-token strings are allocated and tokenization stops
    /// as soon as `max_len` ids exist.
    pub fn encode(&self, text: &str, max_len: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = Vec::with_capacity(max_len.min(64));
        tokenize_each(text, |t| {
            if ids.len() >= max_len {
                return false;
            }
            ids.push(self.id_of(t));
            ids.len() < max_len
        });
        if ids.is_empty() {
            ids.push(special::PAD);
        }
        ids
    }

    /// The vocabulary's persistable parts: the id-ordered token list (specials
    /// first) and the OOV hash-bucket count. Together with
    /// [`Vocab::from_parts`] this is the round trip a model snapshot uses —
    /// `token_to_id` is derived, so it is not part of the representation.
    pub fn parts(&self) -> (&[String], usize) {
        (&self.id_to_token, self.hash_buckets)
    }

    /// Rebuilds a vocabulary from [`Vocab::parts`] output. `id_to_token` must be
    /// the full id-ordered token list, specials included — token `i` gets id `i`,
    /// so a round trip preserves every id assignment (and therefore every
    /// embedding-row binding) exactly.
    pub fn from_parts(id_to_token: Vec<String>, hash_buckets: usize) -> Self {
        let token_to_id = id_to_token
            .iter()
            .enumerate()
            .map(|(id, token)| (token.clone(), id))
            .collect();
        Vocab {
            token_to_id,
            id_to_token,
            hash_buckets,
        }
    }

    /// Encodes a list of already-produced tokens.
    pub fn encode_tokens(&self, tokens: &[String], max_len: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = tokens.iter().map(|t| self.id_of(t)).collect();
        ids.truncate(max_len);
        if ids.is_empty() {
            ids.push(special::PAD);
        }
        ids
    }
}

fn is_special(token: &str) -> bool {
    token.starts_with('[') && token.ends_with(']')
}

/// FNV-1a hash, used for deterministic OOV bucketing.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits_punctuation() {
        let tokens = tokenize("[COL] Title [VAL] Canon CLI-8C Ink, 0621B002!");
        assert_eq!(
            tokens,
            vec!["[COL]", "title", "[VAL]", "canon", "cli", "8c", "ink", "0621b002"]
        );
    }

    #[test]
    fn tokenize_keeps_digit_runs() {
        assert_eq!(tokenize("zip 98052-1234"), vec!["zip", "98052", "1234"]);
    }

    #[test]
    fn vocab_assigns_stable_ids_and_hashes_oov() {
        let docs = [
            tokenize("canon ink cartridge cyan"),
            tokenize("canon printer ink"),
        ];
        let vocab = Vocab::build(
            docs.iter().map(|d| d.as_slice()),
            &VocabConfig {
                max_size: 100,
                min_count: 1,
                hash_buckets: 16,
            },
        );
        // Most frequent tokens get the smallest post-special ids.
        let canon = vocab.id_of("canon");
        let ink = vocab.id_of("ink");
        assert!(canon >= special::COUNT && ink >= special::COUNT);
        assert!(canon < vocab.known_size() && ink < vocab.known_size());
        // OOV hashes deterministically into the bucket range.
        let oov1 = vocab.id_of("zzz-unseen");
        let oov2 = vocab.id_of("zzz-unseen");
        assert_eq!(oov1, oov2);
        assert!(oov1 >= vocab.known_size());
        assert!(oov1 < vocab.size());
        assert_eq!(vocab.token_of(special::COL), Some("[COL]"));
    }

    #[test]
    fn vocab_without_buckets_maps_oov_to_unk() {
        let vocab = Vocab::build_from_texts(
            ["alpha beta"],
            &VocabConfig {
                max_size: 10,
                min_count: 1,
                hash_buckets: 0,
            },
        );
        assert_eq!(vocab.id_of("gamma"), special::UNK);
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let vocab = Vocab::build_from_texts(
            ["common common rare"],
            &VocabConfig {
                max_size: 10,
                min_count: 2,
                hash_buckets: 0,
            },
        );
        assert!(vocab.id_of("common") >= special::COUNT);
        assert_eq!(vocab.id_of("rare"), special::UNK);
    }

    #[test]
    fn encode_truncates_and_never_returns_empty() {
        let vocab = Vocab::build_from_texts(["a b c d e"], &VocabConfig::default());
        assert_eq!(vocab.encode("a b c d e", 3).len(), 3);
        assert_eq!(vocab.encode("", 8), vec![special::PAD]);
        let tokens = vec!["a".to_string(), "b".to_string()];
        assert_eq!(vocab.encode_tokens(&tokens, 8).len(), 2);
    }

    #[test]
    fn special_tokens_preserved_in_encoding() {
        let vocab = Vocab::build_from_texts(["[COL] title [VAL] canon"], &VocabConfig::default());
        let ids = vocab.encode("[COL] title [VAL] canon", 16);
        assert_eq!(ids[0], special::COL);
        assert_eq!(ids[2], special::VAL);
    }
}
