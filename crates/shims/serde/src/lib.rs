//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the minimal
//! contract the workspace needs: a [`Serialize`] trait that lowers a value into an owned
//! JSON [`Value`] tree, implementations for the primitive / container types used by the
//! benchmark harness, and a `#[derive(Serialize)]` macro (re-exported from
//! `serde_derive`) for plain structs and fieldless enums.
//!
//! `serde_json` (the sibling shim) pretty-prints the [`Value`] tree.

#![warn(missing_docs)]

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap};

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like browsers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    /// Produces the JSON value representing `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output (HashMap iteration order is unspecified).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(3usize.to_value(), Value::Number(3.0));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }

    #[test]
    fn tuples_and_maps() {
        assert_eq!(
            (1u8, "x").to_value(),
            Value::Array(vec![Value::Number(1.0), Value::String("x".into())])
        );
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(
            m.to_value(),
            Value::Object(vec![
                ("a".into(), Value::Number(1.0)),
                ("b".into(), Value::Number(2.0)),
            ])
        );
    }
}
