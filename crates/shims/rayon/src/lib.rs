//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate re-implements the small
//! parallel-iterator subset the workspace uses — `par_iter`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter` on ranges, with `enumerate` / `map` / `for_each` /
//! `collect` — on top of `std::thread::scope`.
//!
//! Work distribution is a shared atomic cursor over an eagerly materialized item list;
//! results are written into pre-allocated slots so `collect` preserves input order exactly
//! like real rayon. Thread count follows `RAYON_NUM_THREADS` when set, otherwise
//! `std::thread::available_parallelism()`; everything degrades to a plain sequential loop
//! on a single hardware thread (or for single-item workloads).

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the pool-less scheduler will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One write-once result slot per input item; indices are disjoint across workers.
struct Slots<R>(Vec<UnsafeCell<Option<R>>>);

unsafe impl<R: Send> Sync for Slots<R> {}

thread_local! {
    /// `true` inside a worker thread of an outer `drive` call. Nested parallel iterators
    /// (e.g. a parallel GEMM inside a parallel query-block loop) run sequentially instead
    /// of spawning threads-inside-threads — the outer loop already saturates the cores.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` over `items`, preserving order in the returned vector.
fn drive<I: Send, R: Send, F: Fn(I) -> R + Sync>(items: Vec<I>, f: F) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 || IN_WORKER.get() {
        return items.into_iter().map(f).collect();
    }

    let mut slots = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
    {
        // Hand items out through per-index cells so any worker can claim any index.
        let work: Vec<UnsafeCell<Option<I>>> = items
            .into_iter()
            .map(|i| UnsafeCell::new(Some(i)))
            .collect();
        let work = Slots(work);
        let cursor = AtomicUsize::new(0);
        let slots_ref = &slots;
        let work_ref = &work;
        let f_ref = &f;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_WORKER.set(true);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // SAFETY: the atomic cursor hands each index to exactly one
                        // worker, so every cell is taken/written by a single thread.
                        let item =
                            unsafe { (*work_ref.0[i].get()).take() }.expect("item claimed once");
                        let result = f_ref(item);
                        unsafe { *slots_ref.0[i].get() = Some(result) };
                    }
                });
            }
        });
    }
    slots
        .0
        .iter_mut()
        .map(|c| c.get_mut().take().expect("every slot filled"))
        .collect()
}

/// An eager parallel iterator: the item list is materialized, execution happens at the
/// terminal operation (`for_each` / `collect`).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iterator awaiting its terminal operation.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily maps items; run with `.collect()` or `.for_each()`.
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` over all items in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        drive(self.items, f);
    }

    /// Collects the items (order preserved).
    pub fn collect<C: From<Vec<I>>>(self) -> C {
        C::from(self.items)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> ParMap<I, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(drive(self.items, self.f))
    }

    /// Executes the map in parallel, discarding results.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let f = self.f;
        drive(self.items, move |i| g(f(i)));
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over item references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous chunks of (at most) `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "par_chunks: chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable contiguous chunks of (at most) `size` items.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// Conversion into a parallel iterator (ranges and vectors).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Everything call sites need, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_touch_every_element_once() {
        let mut xs = vec![0u32; 997];
        xs.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, 1 + (i / 64) as u32);
        }
    }

    #[test]
    fn for_each_runs_every_item() {
        let count = AtomicUsize::new(0);
        (0..257).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn nested_parallel_iterators_run_inline_and_stay_correct() {
        // On multicore hosts the inner iterator must detect it is inside an outer worker
        // and run inline (no threads-inside-threads); results are identical either way.
        let xs: Vec<usize> = (0..64).collect();
        let nested: Vec<usize> = xs
            .par_iter()
            .map(|&x| {
                let inner: Vec<usize> = (0..8).into_par_iter().map(|y| x * 8 + y).collect();
                inner.iter().sum()
            })
            .collect();
        let expected: Vec<usize> = (0..64).map(|x| (0..8).map(|y| x * 8 + y).sum()).collect();
        assert_eq!(nested, expected);
    }

    #[test]
    fn par_chunks_shapes() {
        let xs: Vec<u8> = (0..10).collect();
        let sizes: Vec<usize> = xs.par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert!(super::current_num_threads() >= 1);
    }
}
