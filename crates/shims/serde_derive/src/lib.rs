//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace actually uses —
//! non-generic structs with named fields, tuple structs, unit structs, and fieldless
//! enums — by walking the raw [`proc_macro::TokenStream`] (no `syn`/`quote`, which are
//! unavailable offline). Deriving on generic items is a compile error with a clear
//! message rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait: `fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code
            .parse()
            .expect("serde_derive: generated code must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "derive(Serialize): expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "derive(Serialize): expected type name, got {other:?}"
            ))
        }
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) shim does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                let entries = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), serde::Serialize::to_value(&self.{f}))",
                            f
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                Ok(impl_block(
                    &name,
                    &format!("serde::Value::Object(vec![{entries}])"),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                let items = (0..arity)
                    .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                Ok(impl_block(
                    &name,
                    &format!("serde::Value::Array(vec![{items}])"),
                ))
            }
            _ => Ok(impl_block(&name, "serde::Value::Null")), // unit struct
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = enum_variants(g.stream())?;
                let arms = variants
                    .iter()
                    .map(|v| format!("{name}::{v} => serde::Value::String({v:?}.to_string()),"))
                    .collect::<Vec<_>>()
                    .join("\n");
                Ok(impl_block(&name, &format!("match self {{ {arms} }}")))
            }
            other => Err(format!("derive(Serialize): malformed enum body {other:?}")),
        },
        other => Err(format!(
            "derive(Serialize): unsupported item kind `{other}`"
        )),
    }
}

fn impl_block(name: &str, body: &str) -> String {
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Field names of a `{ ... }` struct body: idents directly followed by `:` at depth 0,
/// with attributes and visibility skipped.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility in front of the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                match tokens.get(i + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        fields.push(id.to_string());
                        i += 2;
                        // Skip the type: everything until a comma outside `<...>` nesting
                        // (angle brackets arrive as plain puncts in the token tree).
                        let mut depth = 0i32;
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                match p.as_char() {
                                    '<' => depth += 1,
                                    '>' => depth -= 1,
                                    ',' if depth == 0 => {
                                        i += 1;
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            i += 1;
                        }
                    }
                    other => {
                        return Err(format!(
                            "derive(Serialize): expected `:` after field `{id}`, got {other:?}"
                        ))
                    }
                }
            }
            other => return Err(format!("derive(Serialize): unexpected token {other:?}")),
        }
    }
    Ok(fields)
}

/// Number of comma-separated entries in a tuple-struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => arity += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add an entry.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        arity -= 1;
    }
    arity
}

/// Variant names of a fieldless enum; variants with payloads are rejected.
fn enum_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                match tokens.get(i) {
                    None => variants.push(name),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        variants.push(name);
                        i += 1;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Discriminant: `Name = expr,`
                        variants.push(name);
                        while i < tokens.len() {
                            if matches!(&tokens[i], TokenTree::Punct(q) if q.as_char() == ',') {
                                i += 1;
                                break;
                            }
                            i += 1;
                        }
                    }
                    Some(other) => {
                        return Err(format!(
                            "derive(Serialize) shim only supports fieldless enum variants; \
                             `{name}` is followed by {other:?}"
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "derive(Serialize): unexpected enum token {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}
