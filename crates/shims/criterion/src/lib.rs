//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/API surface the workspace's benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], `bench_function`, `Bencher::iter`,
//! [`black_box`] — and measures wall-clock time with a warmup phase, automatic
//! per-sample iteration calibration, and a median/min/max report per benchmark.
//! It is intentionally far simpler than real criterion (no statistics engine, no
//! HTML reports) but emits stable one-line results that the repo's benchmark logs
//! can track over time.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects per-sample timings and prints a summary line.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(300),
            target_sample_time: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the warmup duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the wall-clock target per timed sample.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_sample_time = d;
        self
    }

    /// Runs one benchmark and prints `name  time: [min median max]`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warmup: self.warmup,
            target_sample_time: self.target_sample_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut per_iter: Vec<f64> = bencher.samples_ns;
        if per_iter.is_empty() {
            println!("{name:<48} time: [no samples]");
            return self;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{name:<48} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
        self
    }
}

/// Per-benchmark measurement state handed to the closure of `bench_function`.
pub struct Bencher {
    warmup: Duration,
    target_sample_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times the routine: warmup, calibrate iterations per sample, record samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup, also yielding a per-iteration estimate for calibration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let iters_per_sample =
            ((self.target_sample_time.as_nanos() as f64 / per_iter_ns).ceil() as u64).max(1);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 40 + 2)
        });
        assert!(ran);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
