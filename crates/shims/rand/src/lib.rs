//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so the workspace
//! vendors the narrow API subset it actually uses behind the same paths as the real crate:
//! [`Rng`] (`gen_range` / `gen` / `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! statistically solid for the simulation workloads here, and explicitly **not**
//! cryptographically secure.

#![warn(missing_docs)]

/// Low-level generator interface: raw 32/64-bit outputs.
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded internally via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Random: Sized {
    /// Draws one value.
    fn random(rng: &mut impl RngCore) -> Self;
}

impl Random for f32 {
    fn random(rng: &mut impl RngCore) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for f64 {
    fn random(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u32 {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Random for usize {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` bounds.
///
/// The blanket [`SampleRange`] impls below route through this trait, mirroring the real
/// crate's structure so that integer-literal ranges still infer their default type.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly between `lo` and `hi` (`inclusive` controls the upper bound).
    ///
    /// # Panics
    /// Panics when the bounds describe an empty range.
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive integer range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "gen_range: empty integer range");
                    (hi as i128 - lo as i128) as u128
                };
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self {
                let unit = <$t as Random>::random(rng); // [0, 1)
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive float range");
                    // Stretch the [0, 1) grid to include the upper endpoint.
                    lo + (unit / (1.0 - <$t>::EPSILON)).min(1.0) * (hi - lo)
                } else {
                    assert!(lo < hi, "gen_range: empty float range");
                    lo + unit * (hi - lo)
                }
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges that can be sampled uniformly (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform draw of a [`Random`] type (`f32`/`f64` in `[0, 1)`, full-width integers).
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Random>::random(self) < p
    }
}

impl<T: RngCore> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and random-choice extensions for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut impl RngCore);

        /// Uniformly random element, or `None` for an empty slice.
        fn choose(&self, rng: &mut impl RngCore) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose(&self, rng: &mut impl RngCore) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z: f32 = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&z));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
