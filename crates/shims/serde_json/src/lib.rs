//! Offline stand-in for `serde_json`.
//!
//! Prints the [`serde::Value`] tree produced by the `serde` shim as JSON text
//! (`to_string` / `to_string_pretty`). Escaping covers the JSON control set; numbers are
//! emitted without a trailing `.0` when they are integral so that `usize` counters look
//! like integers in the output files.

#![warn(missing_docs)]

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// Serialization error. The shim is infallible in practice but keeps the `Result`
/// signature of the real crate so call sites stay identical.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding of any [`Serialize`] value.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON encoding (two-space indent) of any [`Serialize`] value.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Object(entries) => {
            write_seq(out, indent, level, entries.len(), '{', '}', |out, i| {
                let (key, v) = &entries[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json's null behaviour.
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip_simple_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("ab\"c".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"ab\"c","xs":[1,2.5],"flag":true,"none":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"ab\\\"c\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&3.25f64).unwrap(), "3.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
