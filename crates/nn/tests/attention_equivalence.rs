//! Equivalence tier for the batched masked multi-head attention path.
//!
//! The batched path (`forward_batch`/`infer_batch` over a padded `[batch*max_len, dim]`
//! row-block) must be numerically indistinguishable — forward **and** backward — from the
//! per-sequence path (`forward`/`infer` on one `len x dim` sequence at a time), which is
//! kept frozen as the oracle exactly like [`Matrix::matmul_naive`] is for the GEMM
//! kernels. Seeded sweeps cover ragged length mixes (including empty sequences, i.e.
//! all-padding blocks, and full-length sequences), batch sizes {1, 2, 17, 64}, and head
//! counts {1, 2, 4}. Padding rows of the packed input are filled with garbage on purpose:
//! if any of it leaked through the additive-`-inf` key mask, the masked layer norm, or
//! the padding-aware pooling, the comparisons below would fail.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_nn::layers::{padded_row_validity, Layer, MultiHeadSelfAttention, TransformerBlock};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::param::Param;
use sudowoodo_nn::tape::{Gradients, Tape, VarId};

const DIM: usize = 8;
const MAX_LEN: usize = 6;
const BATCH_SIZES: [usize; 4] = [1, 2, 17, 64];
const HEAD_COUNTS: [usize; 3] = [1, 2, 4];
const TOL: f32 = 1e-4;

/// Ragged sequence lengths for one batch: deterministically mixes empty sequences
/// (all-padding blocks), full-length sequences, and everything in between.
fn ragged_lens(batch: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut lens: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..=MAX_LEN)).collect();
    if batch > 1 {
        lens[0] = 0; // always include an all-padding block ...
        lens[batch - 1] = MAX_LEN; // ... and a sequence with no padding at all
    } else {
        lens[0] = MAX_LEN - 2; // a single sequence with a padding tail
    }
    lens
}

/// Per-sequence inputs plus their packed `[batch*max_len, dim]` row-block. Padding rows
/// are filled with large garbage values that must never influence any compared output.
fn ragged_batch(lens: &[usize], rng: &mut StdRng) -> (Vec<Matrix>, Matrix) {
    let seqs: Vec<Matrix> = lens
        .iter()
        .map(|&len| Matrix::from_fn(len, DIM, |_, _| rng.gen_range(-1.0f32..1.0)))
        .collect();
    let mut packed = Matrix::full(lens.len() * MAX_LEN, DIM, 777.0);
    for (b, seq) in seqs.iter().enumerate() {
        for t in 0..seq.rows() {
            packed.row_mut(b * MAX_LEN + t).copy_from_slice(seq.row(t));
        }
    }
    (seqs, packed)
}

/// Extracts the valid rows of a packed `[batch*max_len, dim]` output for sequence `b`.
fn unpack_rows(packed: &Matrix, b: usize, len: usize) -> Matrix {
    packed.slice_rows(b * MAX_LEN, b * MAX_LEN + len)
}

/// Sums the gradient of every tape binding of `param` (a parameter can be bound more than
/// once per graph, e.g. once per sequence in the oracle path).
fn param_grad(tape: &Tape, grads: &Gradients, param: &Param) -> Matrix {
    let (rows, cols) = param.shape();
    let mut acc = Matrix::zeros(rows, cols);
    for (node, bound) in tape.bindings() {
        if bound.same_storage(param) {
            if let Some(g) = grads.get(*node) {
                acc.add_assign(g);
            }
        }
    }
    acc
}

/// Scalar loss over a packed attention output: padding-aware mean pooling then sum, so
/// padding rows contribute nothing (the same pooling the encoder uses).
fn packed_loss(tape: &mut Tape, y: VarId, lens: &[usize]) -> VarId {
    let pooled = tape.padded_segment_mean_rows(y, lens, MAX_LEN);
    tape.sum_all(pooled)
}

/// The same loss through the per-sequence oracle: mean rows of each non-empty sequence
/// output, summed (empty sequences pool to zero and add nothing).
fn oracle_loss(tape: &mut Tape, outputs: &[Option<VarId>]) -> VarId {
    let mut total: Option<VarId> = None;
    for out in outputs.iter().flatten() {
        let mean = tape.mean_rows(*out);
        let s = tape.sum_all(mean);
        total = Some(match total {
            Some(t) => tape.add(t, s),
            None => s,
        });
    }
    total.expect("oracle_loss: at least one non-empty sequence required")
}

#[test]
fn batched_attention_forward_matches_per_sequence_oracle() {
    for (case, &batch) in BATCH_SIZES.iter().enumerate() {
        for &heads in &HEAD_COUNTS {
            let mut rng = StdRng::seed_from_u64(100 + case as u64);
            let mut layer_rng = StdRng::seed_from_u64(7);
            let attn = MultiHeadSelfAttention::new("a", DIM, heads, &mut layer_rng);
            let lens = ragged_lens(batch, &mut rng);
            let (seqs, packed) = ragged_batch(&lens, &mut rng);

            // Batched tape forward.
            let mut tape = Tape::new();
            let x = tape.constant(packed.clone());
            let y = attn.forward_batch(&mut tape, x, &lens, MAX_LEN);
            let batched = tape.value(y).clone();

            // Tape-free batched inference.
            let inferred = attn.infer_batch(&packed, &lens, MAX_LEN);
            assert!(
                batched.approx_eq(&inferred, TOL),
                "batch {batch} heads {heads}: forward_batch and infer_batch diverged"
            );

            // Per-sequence oracle, one graph per sequence.
            for (b, seq) in seqs.iter().enumerate() {
                if lens[b] == 0 {
                    continue;
                }
                let mut oracle_tape = Tape::new();
                let xs = oracle_tape.constant(seq.clone());
                let ys = attn.forward(&mut oracle_tape, xs);
                let expected = oracle_tape.value(ys);
                let got = unpack_rows(&batched, b, lens[b]);
                assert!(
                    got.approx_eq(expected, TOL),
                    "batch {batch} heads {heads} seq {b} (len {}): batched rows diverged \
                     from the per-sequence oracle",
                    lens[b]
                );
            }
        }
    }
}

#[test]
fn batched_attention_backward_matches_per_sequence_oracle() {
    for (case, &batch) in BATCH_SIZES.iter().enumerate() {
        for &heads in &HEAD_COUNTS {
            let mut rng = StdRng::seed_from_u64(200 + case as u64);
            let mut layer_rng = StdRng::seed_from_u64(13);
            let attn = MultiHeadSelfAttention::new("a", DIM, heads, &mut layer_rng);
            let lens = ragged_lens(batch, &mut rng);
            let (seqs, packed) = ragged_batch(&lens, &mut rng);

            // Batched graph: pack -> attention -> padding-aware pooling -> sum.
            let mut tape = Tape::new();
            let x = tape.constant(packed.clone());
            let y = attn.forward_batch(&mut tape, x, &lens, MAX_LEN);
            let loss = packed_loss(&mut tape, y, &lens);
            let grads = tape.backward(loss);

            // Oracle graph: one per-sequence sub-graph per non-empty sequence, same loss.
            let mut oracle_tape = Tape::new();
            let mut oracle_inputs = Vec::new();
            let outputs: Vec<Option<VarId>> = seqs
                .iter()
                .map(|seq| {
                    if seq.rows() == 0 {
                        oracle_inputs.push(None);
                        return None;
                    }
                    let xs = oracle_tape.constant(seq.clone());
                    oracle_inputs.push(Some(xs));
                    Some(attn.forward(&mut oracle_tape, xs))
                })
                .collect();
            let oracle_loss_node = oracle_loss(&mut oracle_tape, &outputs);
            let oracle_grads = oracle_tape.backward(oracle_loss_node);

            assert!(
                (tape.scalar(loss) - oracle_tape.scalar(oracle_loss_node)).abs() < TOL,
                "batch {batch} heads {heads}: losses diverged"
            );

            // Every parameter gradient must agree.
            for p in attn.params() {
                let got = param_grad(&tape, &grads, &p);
                let expected = param_grad(&oracle_tape, &oracle_grads, &p);
                assert!(
                    got.approx_eq(&expected, TOL),
                    "batch {batch} heads {heads}: gradient of {} diverged",
                    p.name()
                );
            }

            // Input gradients: valid rows match the oracle, padding rows are exactly zero
            // (garbage never receives — or propagates — gradient).
            let dx = grads.get(x).expect("input must receive gradient");
            for (b, input) in oracle_inputs.iter().enumerate() {
                let got = unpack_rows(dx, b, lens[b]);
                if let Some(xs) = input {
                    let expected = oracle_grads.get(*xs).expect("oracle input gradient");
                    assert!(
                        got.approx_eq(expected, TOL),
                        "batch {batch} heads {heads} seq {b}: input gradient diverged"
                    );
                }
                let pad = dx.slice_rows(b * MAX_LEN + lens[b], (b + 1) * MAX_LEN);
                assert!(
                    pad.data().iter().all(|&g| g == 0.0),
                    "batch {batch} heads {heads} seq {b}: padding rows received gradient"
                );
            }
        }
    }
}

#[test]
fn batched_transformer_block_matches_per_sequence_oracle() {
    for (case, &batch) in [2usize, 17].iter().enumerate() {
        for &heads in &HEAD_COUNTS {
            let mut rng = StdRng::seed_from_u64(300 + case as u64);
            let mut layer_rng = StdRng::seed_from_u64(19);
            let block = TransformerBlock::new("b", DIM, heads, 2 * DIM, &mut layer_rng);
            let lens = ragged_lens(batch, &mut rng);
            let (seqs, packed) = ragged_batch(&lens, &mut rng);

            let mut tape = Tape::new();
            let x = tape.constant(packed.clone());
            let y = block.forward_batch(&mut tape, x, &lens, MAX_LEN);
            let batched = tape.value(y).clone();

            let inferred = block.infer_batch(&packed, &lens, MAX_LEN);
            assert!(
                batched.approx_eq(&inferred, TOL),
                "batch {batch} heads {heads}: block forward_batch and infer_batch diverged"
            );

            for (b, seq) in seqs.iter().enumerate() {
                if lens[b] == 0 {
                    continue;
                }
                let mut oracle_tape = Tape::new();
                let xs = oracle_tape.constant(seq.clone());
                let ys = block.forward(&mut oracle_tape, xs);
                assert!(
                    unpack_rows(&batched, b, lens[b]).approx_eq(oracle_tape.value(ys), TOL),
                    "batch {batch} heads {heads} seq {b}: block output diverged"
                );
                assert!(
                    unpack_rows(&inferred, b, lens[b]).approx_eq(&block.infer(seq), TOL),
                    "batch {batch} heads {heads} seq {b}: block inference diverged"
                );
            }
        }
    }
}

#[test]
fn batched_transformer_block_backward_matches_per_sequence_oracle() {
    for &heads in &HEAD_COUNTS {
        let mut rng = StdRng::seed_from_u64(400);
        let mut layer_rng = StdRng::seed_from_u64(23);
        let block = TransformerBlock::new("b", DIM, heads, 2 * DIM, &mut layer_rng);
        let lens = ragged_lens(5, &mut rng);
        let (seqs, packed) = ragged_batch(&lens, &mut rng);

        let mut tape = Tape::new();
        let x = tape.constant(packed);
        let y = block.forward_batch(&mut tape, x, &lens, MAX_LEN);
        let loss = packed_loss(&mut tape, y, &lens);
        let grads = tape.backward(loss);

        let mut oracle_tape = Tape::new();
        let outputs: Vec<Option<VarId>> = seqs
            .iter()
            .map(|seq| {
                if seq.rows() == 0 {
                    return None;
                }
                let xs = oracle_tape.constant(seq.clone());
                Some(block.forward(&mut oracle_tape, xs))
            })
            .collect();
        let oracle_loss_node = oracle_loss(&mut oracle_tape, &outputs);
        let oracle_grads = oracle_tape.backward(oracle_loss_node);

        for p in block.params() {
            let got = param_grad(&tape, &grads, &p);
            let expected = param_grad(&oracle_tape, &oracle_grads, &p);
            assert!(
                got.approx_eq(&expected, TOL),
                "heads {heads}: block gradient of {} diverged",
                p.name()
            );
        }
    }
}

#[test]
fn fully_padded_batch_is_defined_and_gradient_free() {
    // A batch whose every sequence is empty: the masked softmax sees zero valid keys
    // everywhere, the output must be defined, and no parameter may receive a gradient
    // contribution (everything pools to zero).
    let mut layer_rng = StdRng::seed_from_u64(29);
    let attn = MultiHeadSelfAttention::new("a", DIM, 2, &mut layer_rng);
    let lens = vec![0usize, 0, 0];
    let packed = Matrix::full(lens.len() * MAX_LEN, DIM, 777.0);

    let mut tape = Tape::new();
    let x = tape.constant(packed.clone());
    let y = attn.forward_batch(&mut tape, x, &lens, MAX_LEN);
    assert!(tape.value(y).data().iter().all(|v| v.is_finite()));
    let pooled = tape.padded_segment_mean_rows(y, &lens, MAX_LEN);
    assert_eq!(tape.value(pooled).shape(), (3, DIM));
    assert!(tape.value(pooled).data().iter().all(|&v| v == 0.0));
    let loss = tape.sum_all(pooled);
    let grads = tape.backward(loss);
    for p in attn.params() {
        let g = param_grad(&tape, &grads, &p);
        assert!(
            g.data().iter().all(|&v| v == 0.0),
            "all-padding batch leaked gradient into {}",
            p.name()
        );
    }

    let inferred = attn.infer_batch(&packed, &lens, MAX_LEN);
    assert!(inferred.data().iter().all(|v| v.is_finite()));
}

#[test]
fn masked_layers_zero_padding_rows() {
    // The padding-aware standardization forces padding rows to exactly zero, and the
    // validity helper marks exactly the leading `lens[b]` rows of each block.
    let lens = [2usize, 0, MAX_LEN];
    let valid = padded_row_validity(&lens, MAX_LEN);
    assert_eq!(valid.len(), lens.len() * MAX_LEN);
    assert_eq!(valid.iter().filter(|&&v| v).count(), 2 + MAX_LEN);

    let mut rng = StdRng::seed_from_u64(31);
    let x = Matrix::from_fn(valid.len(), DIM, |_, _| rng.gen_range(-2.0f32..2.0));
    let y = sudowoodo_nn::tape::masked_standardize_rows(&x, 1e-5, &valid);
    for (r, &ok) in valid.iter().enumerate() {
        if ok {
            let mean: f32 = y.row(r).iter().sum::<f32>() / DIM as f32;
            assert!(mean.abs() < 1e-5);
        } else {
            assert!(y.row(r).iter().all(|&v| v == 0.0));
        }
    }
}
