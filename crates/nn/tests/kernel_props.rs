//! Kernel-equivalence property tests.
//!
//! The blocked / SIMD / parallel GEMM kernels must be numerically interchangeable with
//! the naive reference triple loop (`Matrix::matmul_naive`). These randomized sweeps
//! check that across a grid of shapes — including the degenerate `1 x d` and `d x 1`
//! cases and shapes large enough to cross the parallel threshold — every entry agrees
//! within a tolerance of `1e-5` scaled by the contraction magnitude (the FMA kernels
//! round less than the reference, so exact bit equality is not the contract).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo_nn::matrix::Matrix;

/// Absolute tolerance for one output entry of a `k`-term contraction of values bounded
/// by `amax * bmax`: `1e-5` relative to the worst-case accumulated magnitude.
fn contraction_tol(k: usize, amax: f32, bmax: f32) -> f32 {
    1e-5 * (k.max(1) as f32).sqrt() * amax.max(1e-3) * bmax.max(1e-3)
}

fn assert_matrices_match(result: &Matrix, reference: &Matrix, tol: f32, what: &str) {
    assert_eq!(result.shape(), reference.shape(), "{what}: shape mismatch");
    for r in 0..result.rows() {
        for c in 0..result.cols() {
            let x = result.get(r, c);
            let y = reference.get(r, c);
            assert!(
                (x - y).abs() <= tol,
                "{what}: entry ({r},{c}) differs: kernel {x} vs reference {y} (tol {tol})"
            );
        }
    }
}

/// Shape grid: degenerate vectors, odd sizes around the 4/8-wide kernel boundaries, and
/// one shape past the parallel FLOP threshold (1M).
fn shape_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 7, 1),   // 1 x d times d x 1
        (7, 1, 5),   // outer product
        (1, 64, 33), // row vector times matrix
        (33, 64, 1), // matrix times column vector
        (3, 4, 5),
        (8, 8, 8),
        (13, 29, 17), // all odd, exercises every remainder path
        (32, 33, 34),
        (64, 64, 64),
        (128, 96, 112),
        (112, 128, 96),
        (160, 144, 150), // > 1M flops: crosses the rayon threshold on multicore hosts
    ]
}

#[test]
fn blocked_matmul_matches_naive_reference_across_shapes() {
    for (case, &(m, k, n)) in shape_grid().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + case as u64);
        let a = Matrix::random_normal(m, k, 1.0, &mut rng);
        let b = Matrix::random_normal(k, n, 1.0, &mut rng);
        let tol = contraction_tol(k, a.max_abs(), b.max_abs());
        assert_matrices_match(
            &a.matmul(&b),
            &a.matmul_naive(&b),
            tol,
            &format!("matmul {m}x{k}*{k}x{n}"),
        );
    }
}

#[test]
fn fused_transpose_b_matches_naive_reference_across_shapes() {
    for (case, &(m, k, n)) in shape_grid().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(2000 + case as u64);
        let a = Matrix::random_normal(m, k, 1.0, &mut rng);
        let b = Matrix::random_normal(n, k, 1.0, &mut rng); // transposed layout
        let tol = contraction_tol(k, a.max_abs(), b.max_abs());
        assert_matrices_match(
            &a.matmul_transpose_b(&b),
            &a.matmul_naive(&b.transpose()),
            tol,
            &format!("matmul_transpose_b {m}x{k}*({n}x{k})^T"),
        );
    }
}

#[test]
fn fused_transpose_a_matches_naive_reference_across_shapes() {
    for (case, &(m, k, n)) in shape_grid().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(3000 + case as u64);
        let a = Matrix::random_normal(k, m, 1.0, &mut rng); // transposed layout
        let b = Matrix::random_normal(k, n, 1.0, &mut rng);
        let tol = contraction_tol(k, a.max_abs(), b.max_abs());
        assert_matrices_match(
            &a.matmul_transpose_a(&b),
            &a.transpose().matmul_naive(&b),
            tol,
            &format!("matmul_transpose_a ({k}x{m})^T*{k}x{n}"),
        );
    }
}

#[test]
fn kernels_handle_adversarial_values() {
    // Zeros, exact negatives, denormal-adjacent magnitudes: the skip-zero optimization of
    // the reference and the non-skipping SIMD kernels must still agree.
    let a = Matrix::from_rows(&[
        vec![0.0, -1.0, 1.0, 0.0, 1e-20],
        vec![0.0, 0.0, 0.0, 0.0, 0.0],
        vec![1e4, -1e4, 1e-4, -1e-4, 0.5],
    ]);
    let b = Matrix::from_rows(&[
        vec![1.0, 2.0],
        vec![-1.0, 0.0],
        vec![0.0, 1e-20],
        vec![3.0, -3.0],
        vec![0.5, 0.25],
    ]);
    let tol = contraction_tol(5, a.max_abs(), b.max_abs());
    assert_matrices_match(
        &a.matmul(&b),
        &a.matmul_naive(&b),
        tol,
        "adversarial matmul",
    );
    let bt = b.transpose(); // 2 x 5
    assert_matrices_match(
        &a.matmul_transpose_b(&bt),
        &a.matmul_naive(&b),
        tol,
        "adversarial matmul_transpose_b",
    );
}

#[test]
fn matmul_associativity_sanity_against_double_precision() {
    // One direct f64 cross-check so the reference itself is anchored to ground truth.
    let mut rng = StdRng::seed_from_u64(77);
    let a = Matrix::random_normal(9, 23, 1.0, &mut rng);
    let b = Matrix::random_normal(23, 11, 1.0, &mut rng);
    let fast = a.matmul(&b);
    for r in 0..9 {
        for c in 0..11 {
            let exact: f64 = (0..23)
                .map(|k| a.get(r, k) as f64 * b.get(k, c) as f64)
                .sum();
            assert!(
                (fast.get(r, c) as f64 - exact).abs() < 1e-4,
                "entry ({r},{c}) drifted from f64 ground truth"
            );
        }
    }
}
