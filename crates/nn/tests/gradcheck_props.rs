//! Randomized gradient checks for the fused ops and layers of `sudowoodo-nn`.
//!
//! Each check builds small random computation graphs across several seeds and validates
//! the analytic gradients against central finite differences. (The seed expressed these
//! with `proptest`, which is unavailable in the offline build environment; seeded random
//! sweeps test the same properties deterministically.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_nn::gradcheck::check_gradients;
use sudowoodo_nn::layers::{
    FeedForward, Layer, LayerNorm, Linear, MultiHeadSelfAttention, TransformerBlock,
};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::param::Param;

const CASES: u64 = 16;

/// Small matrix with bounded values (finite differences are unstable with huge magnitudes
/// in f32).
fn small_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.5f32..1.5))
}

fn max_rel(reports: &[sudowoodo_nn::gradcheck::GradCheckReport]) -> f32 {
    reports.iter().map(|r| r.max_rel_diff).fold(0.0, f32::max)
}

#[test]
fn linear_layer_gradients_match_finite_differences() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = small_matrix(3, 4, &mut rng);
        let mut layer_rng = StdRng::seed_from_u64(11);
        let layer = Linear::new("l", 4, 2, &mut layer_rng);
        let params = layer.params();
        let reports = check_gradients(
            &params,
            |tape| {
                let input = tape.constant(x.clone());
                let y = layer.forward(tape, input);
                let sq = tape.pow2(y);
                tape.mean_all(sq)
            },
            1e-2,
        );
        assert!(max_rel(&reports) < 0.05, "seed {seed}: {reports:?}");
    }
}

#[test]
fn layer_norm_gradients_match_finite_differences() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = small_matrix(2, 6, &mut rng);
        let ln = LayerNorm::new("ln", 6);
        let params = ln.params();
        let reports = check_gradients(
            &params,
            |tape| {
                let input = tape.constant(x.clone());
                let y = ln.forward(tape, input);
                let sq = tape.pow2(y);
                tape.mean_all(sq)
            },
            1e-2,
        );
        assert!(max_rel(&reports) < 0.05, "seed {seed}: {reports:?}");
    }
}

#[test]
fn softmax_cross_entropy_gradients_match() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = small_matrix(1, 5, &mut rng);
        let p = Param::new("logit_shift", x);
        let reports = check_gradients(
            std::slice::from_ref(&p),
            |tape| {
                let w = tape.param(&p);
                tape.softmax_cross_entropy(w, &[2])
            },
            1e-2,
        );
        assert!(max_rel(&reports) < 0.05, "seed {seed}: {reports:?}");
    }
}

#[test]
fn l2_normalize_gradients_match() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep the vector away from the origin where the normalization is non-smooth.
        let raw = Matrix::from_fn(2, 3, |_, _| rng.gen_range(0.2f32..1.5));
        let p = Param::new("v", raw);
        let reports = check_gradients(
            std::slice::from_ref(&p),
            |tape| {
                let w = tape.param(&p);
                let n = tape.l2_normalize_rows(w);
                let sq = tape.pow2(n);
                tape.sum_all(sq)
            },
            1e-3,
        );
        // Sum of squares of a normalized row is constant 1, so the gradient must be ~0.
        assert!(reports[0].max_abs_diff < 0.05, "seed {seed}: {reports:?}");
    }
}

#[test]
fn attention_block_gradients_match() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = small_matrix(3, 8, &mut rng);
        let mut attn_rng = StdRng::seed_from_u64(17);
        let attn = MultiHeadSelfAttention::new("a", 8, 2, &mut attn_rng);
        let params = attn.params();
        // Check a subset (weights of q and output proj) to keep runtime bounded.
        let subset = vec![params[0].clone(), params[6].clone()];
        let reports = check_gradients(
            &subset,
            |tape| {
                let input = tape.constant(x.clone());
                let y = attn.forward(tape, input);
                let sq = tape.pow2(y);
                tape.mean_all(sq)
            },
            1e-2,
        );
        assert!(max_rel(&reports) < 0.08, "seed {seed}: {reports:?}");
    }
}

#[test]
fn batched_masked_attention_gradients_match() {
    // The batched padded path (fused score tiles + masked softmax + padding-aware
    // pooling) must itself pass finite differences, not only agree with the per-sequence
    // oracle (tests/attention_equivalence.rs covers the latter).
    let max_len = 4;
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(seed);
        let lens = [rng.gen_range(1..=max_len), rng.gen_range(0..max_len)];
        let x = small_matrix(2 * max_len, 8, &mut rng);
        let mut attn_rng = StdRng::seed_from_u64(31);
        let attn = MultiHeadSelfAttention::new("a", 8, 2, &mut attn_rng);
        let params = attn.params();
        let subset = vec![params[0].clone(), params[2].clone(), params[6].clone()];
        let reports = check_gradients(
            &subset,
            |tape| {
                let input = tape.constant(x.clone());
                let y = attn.forward_batch(tape, input, &lens, max_len);
                let pooled = tape.padded_segment_mean_rows(y, &lens, max_len);
                let sq = tape.pow2(pooled);
                tape.mean_all(sq)
            },
            1e-2,
        );
        // Slightly looser than the per-sequence attention check: the masked softmax uses
        // the fast exponential (~1e-6 relative error), which shows up as ~5e-5 absolute
        // noise in central differences with this epsilon — visible only on the tiniest
        // gradient entries.
        assert!(max_rel(&reports) < 0.15, "seed {seed}: {reports:?}");
    }
}

#[test]
fn batched_transformer_block_gradients_match() {
    let max_len = 3;
    for seed in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let lens = [max_len, rng.gen_range(0..max_len)];
        let x = small_matrix(2 * max_len, 8, &mut rng);
        let mut block_rng = StdRng::seed_from_u64(37);
        let block = TransformerBlock::new("b", 8, 2, 16, &mut block_rng);
        let params = block.params();
        // Check a spread of sub-layer parameters (norm gain, attention weight, ff weight).
        let subset = vec![params[0].clone(), params[2].clone(), params[11].clone()];
        let reports = check_gradients(
            &subset,
            |tape| {
                let input = tape.constant(x.clone());
                let y = block.forward_batch(tape, input, &lens, max_len);
                let pooled = tape.padded_segment_mean_rows(y, &lens, max_len);
                let sq = tape.pow2(pooled);
                tape.mean_all(sq)
            },
            1e-2,
        );
        assert!(max_rel(&reports) < 0.08, "seed {seed}: {reports:?}");
    }
}

#[test]
fn feed_forward_gradients_match() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = small_matrix(2, 4, &mut rng);
        let mut ff_rng = StdRng::seed_from_u64(23);
        let ff = FeedForward::new("ff", 4, 8, &mut ff_rng);
        let params = ff.params();
        let reports = check_gradients(
            &params,
            |tape| {
                let input = tape.constant(x.clone());
                let y = ff.forward(tape, input);
                let sq = tape.pow2(y);
                tape.mean_all(sq)
            },
            1e-2,
        );
        assert!(max_rel(&reports) < 0.08, "seed {seed}: {reports:?}");
    }
}

#[test]
fn mixed_graph_gradcheck_with_abs_concat_and_slices() {
    // A deterministic end-to-end check that exercises Abs, ConcatCols, SliceCols, MeanRows,
    // the ops used by the Sudowoodo pairwise fine-tuning head.
    let mut rng = StdRng::seed_from_u64(29);
    let w = Param::new("w", Matrix::random_uniform(6, 2, 0.5, &mut rng));
    let a = Matrix::random_uniform(4, 3, 1.0, &mut rng);
    let b = Matrix::random_uniform(4, 3, 1.0, &mut rng);
    let reports = check_gradients(
        std::slice::from_ref(&w),
        |tape| {
            let av = tape.constant(a.clone());
            let bv = tape.constant(b.clone());
            let diff = tape.sub(av, bv);
            let abs = tape.abs(diff);
            let cat = tape.concat_cols(av, abs); // 4 x 6
            let wv = tape.param(&w);
            let logits = tape.matmul(cat, wv); // 4 x 2
            tape.softmax_cross_entropy(logits, &[0, 1, 1, 0])
        },
        1e-2,
    );
    assert!(
        reports[0].max_rel_diff < 0.05,
        "mixed graph gradcheck failed: {:?}",
        reports
    );
}
