//! Property-based gradient checks for the fused ops and layers of `sudowoodo-nn`.
//!
//! Each property builds a small random computation graph and validates the analytic
//! gradients against central finite differences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo_nn::gradcheck::check_gradients;
use sudowoodo_nn::layers::{FeedForward, Layer, LayerNorm, Linear, MultiHeadSelfAttention};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::param::Param;

/// Strategy producing a small matrix with bounded values (finite differences are unstable
/// with huge magnitudes in f32).
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn max_rel(reports: &[sudowoodo_nn::gradcheck::GradCheckReport]) -> f32 {
    reports.iter().map(|r| r.max_rel_diff).fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn linear_layer_gradients_match_finite_differences(x in small_matrix(3, 4)) {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = Linear::new("l", 4, 2, &mut rng);
        let params = layer.params();
        let reports = check_gradients(&params, |tape| {
            let input = tape.constant(x.clone());
            let y = layer.forward(tape, input);
            let sq = tape.pow2(y);
            tape.mean_all(sq)
        }, 1e-2);
        prop_assert!(max_rel(&reports) < 0.05, "reports: {:?}", reports);
    }

    #[test]
    fn layer_norm_gradients_match_finite_differences(x in small_matrix(2, 6)) {
        let ln = LayerNorm::new("ln", 6);
        let params = ln.params();
        let reports = check_gradients(&params, |tape| {
            let input = tape.constant(x.clone());
            let y = ln.forward(tape, input);
            let sq = tape.pow2(y);
            tape.mean_all(sq)
        }, 1e-2);
        prop_assert!(max_rel(&reports) < 0.05, "reports: {:?}", reports);
    }

    #[test]
    fn softmax_cross_entropy_gradients_match(x in small_matrix(1, 5)) {
        let p = Param::new("logit_shift", x.clone());
        let reports = check_gradients(&[p.clone()], |tape| {
            let w = tape.param(&p);
            tape.softmax_cross_entropy(w, &[2])
        }, 1e-2);
        prop_assert!(max_rel(&reports) < 0.05, "reports: {:?}", reports);
    }

    #[test]
    fn l2_normalize_gradients_match(raw in proptest::collection::vec(0.2f32..1.5, 6)) {
        // Keep the vector away from the origin where the normalization is non-smooth.
        let p = Param::new("v", Matrix::from_vec(2, 3, raw));
        let reports = check_gradients(&[p.clone()], |tape| {
            let w = tape.param(&p);
            let n = tape.l2_normalize_rows(w);
            let sq = tape.pow2(n);
            tape.sum_all(sq)
        }, 1e-3);
        // sum of squares of a normalized row is constant 1, so gradient should be ~0;
        // also check a non-trivial reduction below.
        prop_assert!(reports[0].max_abs_diff < 0.05, "reports: {:?}", reports);
    }

    #[test]
    fn attention_block_gradients_match(x in small_matrix(3, 8)) {
        let mut rng = StdRng::seed_from_u64(17);
        let attn = MultiHeadSelfAttention::new("a", 8, 2, &mut rng);
        let params = attn.params();
        // Check a subset (weights of q and output proj) to keep runtime bounded.
        let subset = vec![params[0].clone(), params[6].clone()];
        let reports = check_gradients(&subset, |tape| {
            let input = tape.constant(x.clone());
            let y = attn.forward(tape, input);
            let sq = tape.pow2(y);
            tape.mean_all(sq)
        }, 1e-2);
        prop_assert!(max_rel(&reports) < 0.08, "reports: {:?}", reports);
    }

    #[test]
    fn feed_forward_gradients_match(x in small_matrix(2, 4)) {
        let mut rng = StdRng::seed_from_u64(23);
        let ff = FeedForward::new("ff", 4, 8, &mut rng);
        let params = ff.params();
        let reports = check_gradients(&params, |tape| {
            let input = tape.constant(x.clone());
            let y = ff.forward(tape, input);
            let sq = tape.pow2(y);
            tape.mean_all(sq)
        }, 1e-2);
        prop_assert!(max_rel(&reports) < 0.08, "reports: {:?}", reports);
    }
}

#[test]
fn mixed_graph_gradcheck_with_abs_concat_and_slices() {
    // A deterministic end-to-end check that exercises Abs, ConcatCols, SliceCols, MeanRows,
    // the ops used by the Sudowoodo pairwise fine-tuning head.
    let mut rng = StdRng::seed_from_u64(29);
    let w = Param::new("w", Matrix::random_uniform(6, 2, 0.5, &mut rng));
    let a = Matrix::random_uniform(4, 3, 1.0, &mut rng);
    let b = Matrix::random_uniform(4, 3, 1.0, &mut rng);
    let reports = check_gradients(
        &[w.clone()],
        |tape| {
            let av = tape.constant(a.clone());
            let bv = tape.constant(b.clone());
            let diff = tape.sub(av, bv);
            let abs = tape.abs(diff);
            let cat = tape.concat_cols(av, abs); // 4 x 6
            let wv = tape.param(&w);
            let logits = tape.matmul(cat, wv); // 4 x 2
            tape.softmax_cross_entropy(logits, &[0, 1, 1, 0])
        },
        1e-2,
    );
    assert!(
        reports[0].max_rel_diff < 0.05,
        "mixed graph gradcheck failed: {:?}",
        reports
    );
}
