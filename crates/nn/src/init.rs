//! Weight initialization helpers.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::random_uniform(rows, cols, a, rng)
}

/// He/Kaiming normal initialization: `N(0, 2/fan_in)`.
pub fn he_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    Matrix::random_normal(rows, cols, std, rng)
}

/// Small-scale normal initialization used for embedding tables: `N(0, 0.02^2)`
/// (the convention used by BERT-style models).
pub fn embedding_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::random_normal(rows, cols, 0.02, rng)
}

/// All-zeros initialization (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

/// All-ones initialization (LayerNorm gains).
pub fn ones(rows: usize, cols: usize) -> Matrix {
    Matrix::full(rows, cols, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(16, 48, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(m.max_abs() <= bound + 1e-6);
        assert!(m.max_abs() > bound * 0.5, "values should fill the range");
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = he_normal(128, 128, &mut rng);
        let var = m.data().iter().map(|x| x * x).sum::<f32>() / m.len() as f32;
        assert!((var - 2.0 / 128.0).abs() < 5e-3);
    }

    #[test]
    fn constant_inits() {
        assert_eq!(zeros(2, 2).sum(), 0.0);
        assert_eq!(ones(2, 3).sum(), 6.0);
        let mut rng = StdRng::seed_from_u64(9);
        let e = embedding_normal(100, 8, &mut rng);
        assert!(e.max_abs() < 0.15);
    }
}
