//! Neural network layers built on the autodiff [`Tape`].
//!
//! Every layer owns its [`Param`]s, exposes `forward(&self, &mut Tape, ...) -> VarId`, and
//! reports its parameters through [`Layer::params`] so optimizers can update them.

use rand::Rng;

use crate::init;
use crate::matrix::Matrix;
use crate::param::Param;
use crate::tape::{Tape, VarId};

/// Per-row validity flags of a packed `[batch*max_len, d]` row-block: row `b*max_len + t`
/// is valid when `t < lens[b]`. Shared by the batched layers and their tests.
pub fn padded_row_validity(lens: &[usize], max_len: usize) -> Vec<bool> {
    let mut valid = Vec::with_capacity(lens.len() * max_len);
    for &len in lens {
        for t in 0..max_len {
            valid.push(t < len);
        }
    }
    valid
}

/// Per-row valid-key counts of the `[batch*heads*max_len, max_len]` attention-score tile
/// stack: every query row of tile `(b, h)` may attend to the `lens[b]` real keys of its
/// own sequence, so its softmax is masked after `lens[b]` columns.
pub fn attention_valid_counts(lens: &[usize], heads: usize, max_len: usize) -> Vec<usize> {
    let mut valid = Vec::with_capacity(lens.len() * heads * max_len);
    for &len in lens {
        for _ in 0..heads * max_len {
            valid.push(len.min(max_len));
        }
    }
    valid
}

/// Common interface for parameterized layers.
pub trait Layer {
    /// All trainable parameters of the layer (and its sub-layers).
    fn params(&self) -> Vec<Param>;

    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.num_elements()).sum()
    }
}

/// A fully connected layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix of shape `in_dim x out_dim`.
    pub weight: Param,
    /// Bias row vector of shape `1 x out_dim`, or `None` for a bias-free layer.
    pub bias: Option<Param>,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialized weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::xavier_uniform(in_dim, out_dim, rng),
            ),
            bias: Some(Param::new(format!("{name}.bias"), init::zeros(1, out_dim))),
        }
    }

    /// Creates a linear layer without a bias term.
    pub fn new_no_bias(name: &str, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::xavier_uniform(in_dim, out_dim, rng),
            ),
            bias: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().0
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().1
    }

    /// Applies the layer to an `n x in_dim` input.
    pub fn forward(&self, tape: &mut Tape, x: VarId) -> VarId {
        let w = tape.param(&self.weight);
        let mut y = tape.matmul(x, w);
        if let Some(bias) = &self.bias {
            let b = tape.param(bias);
            y = tape.add_row_broadcast(y, b);
        }
        y
    }

    /// Inference-only forward: one batched GEMM straight on matrices, no tape, no
    /// gradient bookkeeping, and no parameter cloning (weights are read under a shared
    /// lock; the bias adds in place on the GEMM output). Safe to call from many threads
    /// at once.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = self.weight.with_value(|w| x.matmul(w));
        if let Some(bias) = &self.bias {
            bias.with_value(|b| y.add_row_broadcast_mut(b));
        }
        y
    }
}

impl Layer for Linear {
    fn params(&self) -> Vec<Param> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// A token-embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Table of shape `vocab_size x dim`.
    pub table: Param,
}

impl Embedding {
    /// Creates an embedding table with BERT-style `N(0, 0.02^2)` initialization.
    pub fn new(name: &str, vocab_size: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            table: Param::new(
                format!("{name}.table"),
                init::embedding_normal(vocab_size, dim, rng),
            ),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.table.shape().0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.shape().1
    }

    /// Looks up the embeddings for a sequence of token ids, producing `len x dim`.
    pub fn forward(&self, tape: &mut Tape, token_ids: &[usize]) -> VarId {
        let table = tape.param(&self.table);
        tape.gather_rows(table, token_ids)
    }

    /// Embedding lookup without recording gradients for the table (used at inference time).
    /// Only the requested rows are copied; the table itself is read under a shared lock.
    pub fn lookup(&self, token_ids: &[usize]) -> Matrix {
        self.table.with_value(|t| t.gather_rows(token_ids))
    }
}

impl Layer for Embedding {
    fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }
}

/// Layer normalization over the last dimension of an `n x d` activation.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Per-feature gain, `1 x d`.
    pub gain: Param,
    /// Per-feature bias, `1 x d`.
    pub bias: Param,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm with unit gain and zero bias.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gain: Param::new(format!("{name}.gain"), init::ones(1, dim)),
            bias: Param::new(format!("{name}.bias"), init::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Applies layer normalization.
    pub fn forward(&self, tape: &mut Tape, x: VarId) -> VarId {
        let standardized = tape.standardize_rows(x, self.eps);
        let g = tape.param(&self.gain);
        let scaled = tape.mul_row_broadcast(standardized, g);
        let b = tape.param(&self.bias);
        tape.add_row_broadcast(scaled, b)
    }

    /// Inference-only forward (no tape).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let standardized = crate::tape::standardize_rows(x, self.eps);
        let scaled = self.gain.with_value(|g| standardized.mul_row_broadcast(g));
        self.bias.with_value(|b| scaled.add_row_broadcast(b))
    }

    /// Padding-aware forward over a packed `[batch*max_len, d]` row-block: rows flagged
    /// `false` in `valid` skip standardization (they are forced to zero, so padding rows
    /// cost nothing and contribute no gradient), valid rows match [`LayerNorm::forward`]
    /// exactly.
    pub fn forward_batch(&self, tape: &mut Tape, x: VarId, valid: &[bool]) -> VarId {
        let standardized = tape.masked_standardize_rows(x, self.eps, valid);
        let g = tape.param(&self.gain);
        let scaled = tape.mul_row_broadcast(standardized, g);
        let b = tape.param(&self.bias);
        tape.add_row_broadcast(scaled, b)
    }

    /// Inference-only padding-aware forward (no tape). Gain and bias apply in place on
    /// the standardized buffer — no extra allocation per sub-layer call.
    pub fn infer_batch(&self, x: &Matrix, valid: &[bool]) -> Matrix {
        let mut standardized = crate::tape::masked_standardize_rows(x, self.eps, valid);
        self.gain
            .with_value(|g| standardized.mul_row_broadcast_mut(g));
        self.bias
            .with_value(|b| standardized.add_row_broadcast_mut(b));
        standardized
    }
}

impl Layer for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gain.clone(), self.bias.clone()]
    }
}

/// Position-wise feed-forward network: `Linear -> GELU -> Linear`.
#[derive(Clone, Debug)]
pub struct FeedForward {
    /// Expansion layer.
    pub lift: Linear,
    /// Projection layer back to the model dimension.
    pub project: Linear,
}

impl FeedForward {
    /// Creates a feed-forward block with the given hidden width.
    pub fn new(name: &str, dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        FeedForward {
            lift: Linear::new(&format!("{name}.lift"), dim, hidden, rng),
            project: Linear::new(&format!("{name}.project"), hidden, dim, rng),
        }
    }

    /// Applies the block.
    pub fn forward(&self, tape: &mut Tape, x: VarId) -> VarId {
        let h = self.lift.forward(tape, x);
        let h = tape.gelu(h);
        self.project.forward(tape, h)
    }

    /// Inference-only forward (no tape): two batched GEMMs and an in-place GELU map.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = self.lift.infer(x);
        crate::tape::gelu_slice(h.data_mut());
        self.project.infer(&h)
    }
}

impl Layer for FeedForward {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.lift.params();
        ps.extend(self.project.params());
        ps
    }
}

/// Multi-head scaled dot-product self-attention over a single sequence (`seq x dim`).
#[derive(Clone, Debug)]
pub struct MultiHeadSelfAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of attention heads; must divide the model dimension.
    pub num_heads: usize,
}

impl MultiHeadSelfAttention {
    /// Creates the attention block.
    ///
    /// # Panics
    /// Panics when `dim` is not divisible by `num_heads`.
    pub fn new(name: &str, dim: usize, num_heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            num_heads > 0 && dim.is_multiple_of(num_heads),
            "dim must be divisible by num_heads"
        );
        MultiHeadSelfAttention {
            wq: Linear::new(&format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(&format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(&format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(&format!("{name}.wo"), dim, dim, rng),
            num_heads,
        }
    }

    /// Applies self-attention to a `seq x dim` input and returns a `seq x dim` output.
    pub fn forward(&self, tape: &mut Tape, x: VarId) -> VarId {
        let dim = self.wq.out_dim();
        let head_dim = dim / self.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();

        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);

        let mut head_outputs = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let start = h * head_dim;
            let end = start + head_dim;
            let qh = tape.slice_cols(q, start, end);
            let kh = tape.slice_cols(k, start, end);
            let vh = tape.slice_cols(v, start, end);
            let scores = tape.matmul_transpose_b(qh, kh); // fused Q*K^T
            let scores = tape.scale(scores, scale);
            let attn = tape.row_softmax(scores);
            head_outputs.push(tape.matmul(attn, vh));
        }
        let mut concat = head_outputs[0];
        for &h in &head_outputs[1..] {
            concat = tape.concat_cols(concat, h);
        }
        self.wo.forward(tape, concat)
    }

    /// Inference-only forward (no tape); scores go through the fused `Q*K^T` kernel.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let dim = self.wq.out_dim();
        let head_dim = dim / self.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();

        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);

        let mut head_outputs = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let start = h * head_dim;
            let end = start + head_dim;
            let qh = q.slice_cols(start, end);
            let kh = k.slice_cols(start, end);
            let vh = v.slice_cols(start, end);
            let mut scores = qh.matmul_transpose_b(&kh);
            scores.scale_mut(scale);
            let attn = crate::tape::row_softmax(&scores);
            head_outputs.push(attn.matmul(&vh));
        }
        let refs: Vec<&Matrix> = head_outputs.iter().collect();
        self.wo.infer(&Matrix::hstack(&refs))
    }

    /// Batched masked forward over a packed `[batch*max_len, dim]` row-block holding
    /// `lens.len()` sequences padded to `max_len` rows each. The Q/K/V/O projections run
    /// as single whole-batch GEMMs; the scores of all heads of all sequences are fused
    /// `A * B^T` GEMM tiles ([`Tape::attention_scores`]); padding keys are masked out of
    /// the softmax ([`Tape::masked_row_softmax`]), so the rows of every sequence attend
    /// exactly as in the per-sequence [`MultiHeadSelfAttention::forward`] oracle.
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        x: VarId,
        lens: &[usize],
        max_len: usize,
    ) -> VarId {
        let dim = self.wq.out_dim();
        let head_dim = dim / self.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();

        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);

        let scores = tape.attention_scores(q, k, self.num_heads, max_len, scale);
        let valid = attention_valid_counts(lens, self.num_heads, max_len);
        let attn = tape.masked_row_softmax(scores, &valid);
        let ctx = tape.attention_context(attn, v, self.num_heads, max_len);
        self.wo.forward(tape, ctx)
    }

    /// Inference-only batched masked forward (no tape); same packing as
    /// [`MultiHeadSelfAttention::forward_batch`], but the scores → masked softmax →
    /// context chain runs as the fused allocation-free kernel
    /// [`crate::tape::masked_attention_infer`] (numerically identical to the composed
    /// tape ops — the equivalence tests pin both against the per-sequence oracle).
    pub fn infer_batch(&self, x: &Matrix, lens: &[usize], max_len: usize) -> Matrix {
        let dim = self.wq.out_dim();
        let head_dim = dim / self.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();

        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let ctx =
            crate::tape::masked_attention_infer(&q, &k, &v, self.num_heads, max_len, scale, lens);
        self.wo.infer(&ctx)
    }
}

impl Layer for MultiHeadSelfAttention {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.wq.params();
        ps.extend(self.wk.params());
        ps.extend(self.wv.params());
        ps.extend(self.wo.params());
        ps
    }
}

/// A pre-norm Transformer encoder block: `x + Attn(LN(x))`, then `x + FF(LN(x))`.
#[derive(Clone, Debug)]
pub struct TransformerBlock {
    /// LayerNorm in front of the attention sub-layer.
    pub norm1: LayerNorm,
    /// Self-attention sub-layer.
    pub attention: MultiHeadSelfAttention,
    /// LayerNorm in front of the feed-forward sub-layer.
    pub norm2: LayerNorm,
    /// Feed-forward sub-layer.
    pub feed_forward: FeedForward,
}

impl TransformerBlock {
    /// Creates a Transformer block.
    pub fn new(
        name: &str,
        dim: usize,
        num_heads: usize,
        ff_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerBlock {
            norm1: LayerNorm::new(&format!("{name}.norm1"), dim),
            attention: MultiHeadSelfAttention::new(&format!("{name}.attn"), dim, num_heads, rng),
            norm2: LayerNorm::new(&format!("{name}.norm2"), dim),
            feed_forward: FeedForward::new(&format!("{name}.ff"), dim, ff_hidden, rng),
        }
    }

    /// Applies the block to a `seq x dim` input.
    pub fn forward(&self, tape: &mut Tape, x: VarId) -> VarId {
        let normed = self.norm1.forward(tape, x);
        let attended = self.attention.forward(tape, normed);
        let x = tape.add(x, attended);
        let normed = self.norm2.forward(tape, x);
        let ff = self.feed_forward.forward(tape, normed);
        tape.add(x, ff)
    }

    /// Inference-only forward (no tape).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut x = x.add(&self.attention.infer(&self.norm1.infer(x)));
        let ff = self.feed_forward.infer(&self.norm2.infer(&x));
        x.add_assign(&ff);
        x
    }

    /// Batched masked forward over a packed `[batch*max_len, dim]` row-block: layer norms
    /// skip padding rows, attention masks padding keys, and the feed-forward runs as one
    /// whole-batch GEMM pair. Valid rows match [`TransformerBlock::forward`] exactly.
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        x: VarId,
        lens: &[usize],
        max_len: usize,
    ) -> VarId {
        let valid = padded_row_validity(lens, max_len);
        let normed = self.norm1.forward_batch(tape, x, &valid);
        let attended = self.attention.forward_batch(tape, normed, lens, max_len);
        let x = tape.add(x, attended);
        let normed = self.norm2.forward_batch(tape, x, &valid);
        let ff = self.feed_forward.forward(tape, normed);
        tape.add(x, ff)
    }

    /// Inference-only batched masked forward (no tape). Residuals accumulate in place on
    /// the owned sub-layer outputs (element-wise addition commutes, so the values match
    /// the tape path exactly).
    pub fn infer_batch(&self, x: &Matrix, lens: &[usize], max_len: usize) -> Matrix {
        let valid = padded_row_validity(lens, max_len);
        let normed = self.norm1.infer_batch(x, &valid);
        let mut x1 = self.attention.infer_batch(&normed, lens, max_len);
        x1.add_assign(x);
        let mut out = self
            .feed_forward
            .infer(&self.norm2.infer_batch(&x1, &valid));
        out.add_assign(&x1);
        out
    }
}

impl Layer for TransformerBlock {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.norm1.params();
        ps.extend(self.attention.params());
        ps.extend(self.norm2.params());
        ps.extend(self.feed_forward.params());
        ps
    }
}

/// Learned absolute positional embeddings added to token embeddings.
#[derive(Clone, Debug)]
pub struct PositionalEmbedding {
    /// Table of shape `max_len x dim`.
    pub table: Param,
}

impl PositionalEmbedding {
    /// Creates a positional-embedding table.
    pub fn new(name: &str, max_len: usize, dim: usize, rng: &mut impl Rng) -> Self {
        PositionalEmbedding {
            table: Param::new(
                format!("{name}.pos"),
                init::embedding_normal(max_len, dim, rng),
            ),
        }
    }

    /// Maximum supported sequence length.
    pub fn max_len(&self) -> usize {
        self.table.shape().0
    }

    /// Adds positional embeddings for positions `0..len` to a `len x dim` input.
    ///
    /// Sequences longer than `max_len` reuse the final position embedding.
    pub fn forward(&self, tape: &mut Tape, x: VarId, len: usize) -> VarId {
        let max = self.max_len();
        let indices: Vec<usize> = (0..len).map(|i| i.min(max - 1)).collect();
        let table = tape.param(&self.table);
        let pos = tape.gather_rows(table, &indices);
        tape.add(x, pos)
    }

    /// Inference-only forward (no tape).
    pub fn infer(&self, x: &Matrix, len: usize) -> Matrix {
        let max = self.max_len();
        let indices: Vec<usize> = (0..len).map(|i| i.min(max - 1)).collect();
        let pos = self.table.with_value(|t| t.gather_rows(&indices));
        x.add(&pos)
    }

    /// Positional indices of a packed `[batch*max_len, d]` row-block: every block repeats
    /// positions `0..max_len` (clamped to the table size). Padding rows receive a position
    /// embedding too, but it never leaks — attention masks them and pooling skips them.
    fn padded_indices(&self, batch: usize, max_len: usize) -> Vec<usize> {
        let max = self.max_len();
        let mut indices = Vec::with_capacity(batch * max_len);
        for _ in 0..batch {
            indices.extend((0..max_len).map(|i| i.min(max - 1)));
        }
        indices
    }

    /// Adds positional embeddings to every sequence of a packed `[batch*max_len, d]`
    /// row-block.
    pub fn forward_batch(&self, tape: &mut Tape, x: VarId, batch: usize, max_len: usize) -> VarId {
        let indices = self.padded_indices(batch, max_len);
        let table = tape.param(&self.table);
        let pos = tape.gather_rows(table, &indices);
        tape.add(x, pos)
    }

    /// Inference-only batched forward (no tape); the sum accumulates in place on the
    /// gathered position rows.
    pub fn infer_batch(&self, x: &Matrix, batch: usize, max_len: usize) -> Matrix {
        let indices = self.padded_indices(batch, max_len);
        let mut pos = self.table.with_value(|t| t.gather_rows(&indices));
        pos.add_assign(x);
        pos
    }
}

impl Layer for PositionalEmbedding {
    fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("l", 4, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(5, 4));
        let y = layer.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
        // With a zero input the output equals the bias (zero-initialized).
        assert_eq!(tape.value(y).sum(), 0.0);
        assert_eq!(layer.num_parameters(), 4 * 3 + 3);
    }

    #[test]
    fn linear_no_bias_has_fewer_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new_no_bias("l", 4, 3, &mut rng);
        assert_eq!(layer.num_parameters(), 12);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
    }

    #[test]
    fn embedding_lookup_matches_table_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let emb = Embedding::new("e", 10, 6, &mut rng);
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &[2, 7, 2]);
        let v = tape.value(out);
        assert_eq!(v.shape(), (3, 6));
        assert_eq!(v.row(0), v.row(2));
        assert_eq!(v.row(1), emb.lookup(&[7]).row(0));
        assert_eq!(emb.vocab_size(), 10);
        assert_eq!(emb.dim(), 6);
    }

    #[test]
    fn layer_norm_standardizes_rows() {
        let ln = LayerNorm::new("ln", 4);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]));
        let y = ln.forward(&mut tape, x);
        let row = tape.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let attn = MultiHeadSelfAttention::new("a", 8, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::random_normal(5, 8, 1.0, &mut rng));
        let y = attn.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn attention_rejects_bad_head_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MultiHeadSelfAttention::new("a", 10, 3, &mut rng);
    }

    #[test]
    fn transformer_block_is_differentiable() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = TransformerBlock::new("b", 8, 2, 16, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::random_normal(4, 8, 1.0, &mut rng));
        let y = block.forward(&mut tape, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        // Every bound parameter should receive a finite gradient.
        let mut checked = 0;
        for (id, _) in tape.bindings() {
            if let Some(g) = grads.get(*id) {
                assert!(g.data().iter().all(|v| v.is_finite()));
                checked += 1;
            }
        }
        assert!(checked > 0);
        assert!(block.num_parameters() > 0);
    }

    #[test]
    fn positional_embedding_clamps_long_sequences() {
        let mut rng = StdRng::seed_from_u64(7);
        let pos = PositionalEmbedding::new("p", 4, 6, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(6, 6));
        let y = pos.forward(&mut tape, x, 6);
        let v = tape.value(y);
        // Positions beyond max_len reuse the last row.
        assert_eq!(v.row(4), v.row(5));
        assert_eq!(pos.max_len(), 4);
    }
}
