//! Finite-difference gradient checking.
//!
//! Used by the test-suite (including property tests) to validate the hand-written backward
//! passes of the fused ops in [`crate::tape`].

use crate::param::Param;
use crate::tape::{Tape, VarId};

/// Result of checking one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Parameter name.
    pub name: String,
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Maximum relative difference (normalized by the larger magnitude, floored at 1e-3).
    pub max_rel_diff: f32,
}

/// Compares analytic gradients against central finite differences for every element of
/// every parameter in `params`.
///
/// `build_loss` must construct a fresh forward pass on the provided tape, reading the
/// *current* values of the parameters, and return the id of a scalar loss node.
pub fn check_gradients(
    params: &[Param],
    mut build_loss: impl FnMut(&mut Tape) -> VarId,
    epsilon: f32,
) -> Vec<GradCheckReport> {
    // Analytic gradients.
    let mut tape = Tape::new();
    let loss = build_loss(&mut tape);
    let grads = tape.backward(loss);
    let mut analytic: Vec<(Param, Vec<f32>)> = Vec::new();
    for p in params {
        let (rows, cols) = p.shape();
        // Sum gradients over all bindings of this parameter.
        let mut acc = vec![0.0f32; rows * cols];
        for (node, bound) in tape.bindings() {
            if bound.same_storage(p) {
                if let Some(g) = grads.get(*node) {
                    for (a, b) in acc.iter_mut().zip(g.data()) {
                        *a += *b;
                    }
                }
            }
        }
        analytic.push((p.clone(), acc));
    }

    // Numeric gradients via central differences.
    let mut reports = Vec::new();
    for (p, analytic_grad) in analytic {
        let (rows, cols) = p.shape();
        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for r in 0..rows {
            for c in 0..cols {
                p.nudge(r, c, epsilon);
                let mut t_plus = Tape::new();
                let l_plus = build_loss(&mut t_plus);
                let f_plus = t_plus.scalar(l_plus);

                p.nudge(r, c, -2.0 * epsilon);
                let mut t_minus = Tape::new();
                let l_minus = build_loss(&mut t_minus);
                let f_minus = t_minus.scalar(l_minus);

                p.nudge(r, c, epsilon); // restore

                let numeric = (f_plus - f_minus) / (2.0 * epsilon);
                let a = analytic_grad[r * cols + c];
                let abs_diff = (numeric - a).abs();
                let denom = numeric.abs().max(a.abs()).max(1e-3);
                max_abs = max_abs.max(abs_diff);
                max_rel = max_rel.max(abs_diff / denom);
            }
        }
        reports.push(GradCheckReport {
            name: p.name(),
            max_abs_diff: max_abs,
            max_rel_diff: max_rel,
        });
    }
    reports
}

/// Asserts that every parameter passes the gradient check within `rel_tol`.
///
/// # Panics
/// Panics with a descriptive message when any parameter fails.
pub fn assert_gradients_close(
    params: &[Param],
    build_loss: impl FnMut(&mut Tape) -> VarId,
    epsilon: f32,
    rel_tol: f32,
) {
    let reports = check_gradients(params, build_loss, epsilon);
    for r in &reports {
        assert!(
            r.max_rel_diff <= rel_tol,
            "gradient check failed for {}: max_rel_diff={} max_abs_diff={} (tol {})",
            r.name,
            r.max_rel_diff,
            r.max_abs_diff,
            rel_tol
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn detects_correct_gradient_of_quadratic() {
        let p = Param::new("w", Matrix::from_rows(&[vec![0.3, -0.7]]));
        assert_gradients_close(
            std::slice::from_ref(&p),
            |tape| {
                let w = tape.param(&p);
                let sq = tape.pow2(w);
                tape.sum_all(sq)
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn detects_wrong_gradient() {
        // exp(x) has gradient exp(x); a loss computed with `ln` after clamping behaves
        // differently from what an intentionally mismatched analytic path would give.
        // Here we simulate a wrong backward by comparing against a different function value:
        // build returns sum(2*w) analytically (grad 2), but we check against sum(w^2) numerically
        // by changing behaviour across calls.
        let p = Param::new("w", Matrix::from_rows(&[vec![1.5]]));
        let p_handle = p.clone(); // same storage; the move closure keeps its own handle
        let mut call = 0usize;
        assert_gradients_close(
            std::slice::from_ref(&p),
            move |tape| {
                call += 1;
                let w = tape.param(&p_handle);
                if call == 1 {
                    let s = tape.scale(w, 2.0);
                    tape.sum_all(s)
                } else {
                    let sq = tape.pow2(w);
                    tape.sum_all(sq)
                }
            },
            1e-3,
            1e-2,
        );
    }
}
