//! Finite-difference gradient checking.
//!
//! Used by the test-suite (including property tests) to validate the hand-written backward
//! passes of the fused ops in [`crate::tape`].

use crate::param::Param;
use crate::tape::{Tape, VarId};

/// Result of checking one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Parameter name.
    pub name: String,
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Maximum relative difference (normalized by the larger magnitude, floored at 1e-3).
    pub max_rel_diff: f32,
}

/// Compares analytic gradients against central finite differences for every element of
/// every parameter in `params`.
///
/// `build_loss` must construct a fresh forward pass on the provided tape, reading the
/// *current* values of the parameters, and return the id of a scalar loss node.
pub fn check_gradients(
    params: &[Param],
    mut build_loss: impl FnMut(&mut Tape) -> VarId,
    epsilon: f32,
) -> Vec<GradCheckReport> {
    // Analytic gradients.
    let mut tape = Tape::new();
    let loss = build_loss(&mut tape);
    let grads = tape.backward(loss);
    let mut analytic: Vec<(Param, Vec<f32>)> = Vec::new();
    for p in params {
        let (rows, cols) = p.shape();
        // Sum gradients over all bindings of this parameter.
        let mut acc = vec![0.0f32; rows * cols];
        for (node, bound) in tape.bindings() {
            if bound.same_storage(p) {
                if let Some(g) = grads.get(*node) {
                    for (a, b) in acc.iter_mut().zip(g.data()) {
                        *a += *b;
                    }
                }
            }
        }
        analytic.push((p.clone(), acc));
    }

    // Numeric gradients via central differences.
    let mut reports = Vec::new();
    for (p, analytic_grad) in analytic {
        let (rows, cols) = p.shape();
        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for r in 0..rows {
            for c in 0..cols {
                p.nudge(r, c, epsilon);
                let mut t_plus = Tape::new();
                let l_plus = build_loss(&mut t_plus);
                let f_plus = t_plus.scalar(l_plus);

                p.nudge(r, c, -2.0 * epsilon);
                let mut t_minus = Tape::new();
                let l_minus = build_loss(&mut t_minus);
                let f_minus = t_minus.scalar(l_minus);

                p.nudge(r, c, epsilon); // restore

                let numeric = (f_plus - f_minus) / (2.0 * epsilon);
                let a = analytic_grad[r * cols + c];
                let abs_diff = (numeric - a).abs();
                let denom = numeric.abs().max(a.abs()).max(1e-3);
                max_abs = max_abs.max(abs_diff);
                max_rel = max_rel.max(abs_diff / denom);
            }
        }
        reports.push(GradCheckReport {
            name: p.name(),
            max_abs_diff: max_abs,
            max_rel_diff: max_rel,
        });
    }
    reports
}

/// Asserts that every parameter passes the gradient check within `rel_tol`.
///
/// # Panics
/// Panics with a descriptive message when any parameter fails.
pub fn assert_gradients_close(
    params: &[Param],
    build_loss: impl FnMut(&mut Tape) -> VarId,
    epsilon: f32,
    rel_tol: f32,
) {
    let reports = check_gradients(params, build_loss, epsilon);
    for r in &reports {
        assert!(
            r.max_rel_diff <= rel_tol,
            "gradient check failed for {}: max_rel_diff={} max_abs_diff={} (tol {})",
            r.name,
            r.max_rel_diff,
            r.max_abs_diff,
            rel_tol
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn detects_correct_gradient_of_quadratic() {
        let p = Param::new("w", Matrix::from_rows(&[vec![0.3, -0.7]]));
        assert_gradients_close(
            std::slice::from_ref(&p),
            |tape| {
                let w = tape.param(&p);
                let sq = tape.pow2(w);
                tape.sum_all(sq)
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn masked_row_softmax_gradients_match_finite_differences() {
        // Valid prefixes of mixed widths, including a fully masked row whose entries must
        // keep zero gradient (nudging them cannot change the loss).
        let valid = [3usize, 1, 0, 4];
        let p = Param::new(
            "scores",
            Matrix::from_rows(&[
                vec![0.4, -1.2, 0.7, 0.1],
                vec![1.5, 0.3, -0.8, 2.0],
                vec![9.0, -9.0, 5.0, -5.0],
                vec![-0.6, 0.9, 0.2, -1.1],
            ]),
        );
        let p_handle = p.clone();
        assert_gradients_close(
            std::slice::from_ref(&p),
            move |tape| {
                let w = tape.param(&p_handle);
                let soft = tape.masked_row_softmax(w, &valid);
                // A non-uniform readout so the softmax Jacobian is exercised off-diagonal.
                let weights = tape.constant(Matrix::from_rows(&[
                    vec![1.0, -2.0, 3.0, 0.5],
                    vec![0.2, 1.3, -0.7, 2.1],
                    vec![1.0, 1.0, 1.0, 1.0],
                    vec![-1.5, 0.4, 2.2, -0.3],
                ]));
                let weighted = tape.mul(soft, weights);
                tape.sum_all(weighted)
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn padded_segment_mean_rows_gradients_match_finite_differences() {
        // Three blocks of stride 3 with lengths {2, 0, 3}: padding rows and the empty
        // block must stay gradient-free, pooled rows scale by 1/len.
        let lens = [2usize, 0, 3];
        let p = Param::new(
            "packed",
            Matrix::from_fn(9, 2, |r, c| 0.3 * r as f32 - 0.2 * c as f32),
        );
        let p_handle = p.clone();
        assert_gradients_close(
            std::slice::from_ref(&p),
            move |tape| {
                let w = tape.param(&p_handle);
                let pooled = tape.padded_segment_mean_rows(w, &lens, 3);
                let sq = tape.pow2(pooled);
                tape.sum_all(sq)
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn masked_standardize_rows_gradients_match_finite_differences() {
        let valid = [true, false, true];
        let p = Param::new(
            "x",
            Matrix::from_rows(&[
                vec![0.9, -0.4, 1.3, 0.2],
                vec![5.0, -5.0, 5.0, -5.0],
                vec![-1.1, 0.6, 0.3, -0.8],
            ]),
        );
        let p_handle = p.clone();
        assert_gradients_close(
            std::slice::from_ref(&p),
            move |tape| {
                let w = tape.param(&p_handle);
                let y = tape.masked_standardize_rows(w, 1e-5, &valid);
                let weights = tape.constant(Matrix::from_fn(3, 4, |r, c| {
                    0.5 + 0.3 * r as f32 - 0.4 * c as f32
                }));
                let weighted = tape.mul(y, weights);
                tape.sum_all(weighted)
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn attention_score_and_context_gradients_match_finite_differences() {
        // Two packed sequences, two heads, ragged valid-key counts: checks the fused
        // scores -> masked softmax -> context chain end to end against finite differences.
        let lens = [2usize, 3];
        let seq = 3;
        let heads = 2;
        let q = Param::new(
            "q",
            Matrix::from_fn(6, 4, |r, c| 0.1 * r as f32 - 0.15 * c as f32),
        );
        let k = Param::new(
            "k",
            Matrix::from_fn(6, 4, |r, c| 0.07 * (r + c) as f32 - 0.2),
        );
        let v = Param::new(
            "v",
            Matrix::from_fn(6, 4, |r, c| 0.11 * r as f32 + 0.05 * c as f32),
        );
        let params = [q.clone(), k.clone(), v.clone()];
        let valid: Vec<usize> = lens
            .iter()
            .flat_map(|&len| std::iter::repeat_n(len, heads * seq))
            .collect();
        assert_gradients_close(
            &params,
            move |tape| {
                let qv = tape.param(&q);
                let kv = tape.param(&k);
                let vv = tape.param(&v);
                let scores = tape.attention_scores(qv, kv, heads, seq, 0.5);
                let attn = tape.masked_row_softmax(scores, &valid);
                let ctx = tape.attention_context(attn, vv, heads, seq);
                let pooled = tape.padded_segment_mean_rows(ctx, &lens, seq);
                let sq = tape.pow2(pooled);
                tape.sum_all(sq)
            },
            1e-3,
            // f32 central differences bottom out around 1e-4 absolute error; with the
            // relative denominator floored at 1e-3 that shows up as a few percent.
            5e-2,
        );
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn detects_wrong_gradient() {
        // exp(x) has gradient exp(x); a loss computed with `ln` after clamping behaves
        // differently from what an intentionally mismatched analytic path would give.
        // Here we simulate a wrong backward by comparing against a different function value:
        // build returns sum(2*w) analytically (grad 2), but we check against sum(w^2) numerically
        // by changing behaviour across calls.
        let p = Param::new("w", Matrix::from_rows(&[vec![1.5]]));
        let p_handle = p.clone(); // same storage; the move closure keeps its own handle
        let mut call = 0usize;
        assert_gradients_close(
            std::slice::from_ref(&p),
            move |tape| {
                call += 1;
                let w = tape.param(&p_handle);
                if call == 1 {
                    let s = tape.scale(w, 2.0);
                    tape.sum_all(s)
                } else {
                    let sq = tape.pow2(w);
                    tape.sum_all(sq)
                }
            },
            1e-3,
            1e-2,
        );
    }
}
