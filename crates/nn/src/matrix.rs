//! Dense row-major `f32` matrix used as the single tensor type of the autodiff engine.
//!
//! Every value flowing through [`crate::tape::Tape`] is a 2-D matrix. Vectors are
//! represented as `1 x d` (row vectors) or `n x 1` (column vectors).
//!
//! ## Kernel layer
//!
//! Encoder forward/backward, blocking, matching, and clustering all bottom out in a
//! handful of GEMM-shaped products, so those are implemented as real kernels rather than
//! textbook loops:
//!
//! * [`Matrix::matmul`] — register-tiled `A * B`: B is packed into streaming column
//!   panels and multiplied in 8×32 (AVX-512F) or 4×16 (AVX2+FMA) accumulator tiles held
//!   in registers across the contraction, detected at runtime, with a 4-way k-unrolled
//!   AXPY fallback for small/odd shapes and rayon row-band parallelism above a FLOP
//!   threshold;
//! * [`Matrix::matmul_transpose_b`] — fused `A * B^T` (dot-product microkernel over pairs
//!   of contiguous rows, 4 output columns per pass) — exactly the shape of the SimCLR /
//!   Barlow Twins similarity matrices and of batched cosine scoring, without ever
//!   materializing the transpose;
//! * [`Matrix::matmul_transpose_a`] — fused `A^T * B` for the backward pass of `matmul`;
//! * [`Matrix::scale_mut`] / [`Matrix::add_scaled`] / [`Matrix::add_hadamard`] — in-place
//!   accumulation primitives used by the tape's gradient accumulation so the backward
//!   pass does not allocate one matrix per op;
//! * [`Matrix::matmul_naive`] — the original triple loop, kept as the reference
//!   implementation for the kernel-equivalence property tests and the speedup benches.

use rand::Rng;
use rayon::prelude::*;

/// FLOP threshold (`m * k * n`) above which GEMM kernels fan out across threads.
/// Below it the sequential microkernel wins because task distribution costs more than
/// the multiply itself (the models here are small, most products are tiny).
const PAR_FLOPS: usize = 1 << 20;

/// FLOP threshold above which `matmul` takes the pack-and-tile path. Packing copies all
/// of B once; below this the plain AXPY row kernel wins because the training graphs are
/// full of tiny products where a per-op pack allocation would dominate.
const TILE_FLOPS: usize = 1 << 14;

pub(crate) mod kernels {
    //! SIMD microkernels with runtime feature detection.
    //!
    //! Every kernel has a scalar fallback with the same accumulation order; the AVX2+FMA
    //! variants differ only by fused multiply-adds (which are *more* accurate, not less).
    //! Callers must slice arguments consistently; the kernels themselves are safe wrappers
    //! around `target_feature` internals.

    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// `true` when AVX2+FMA microkernels are usable on this CPU (checked once).
    #[inline]
    pub fn use_avx2_fma() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVAILABLE: OnceLock<bool> = OnceLock::new();
            *AVAILABLE.get_or_init(|| {
                std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// `out[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]` — the 4-way k-unrolled AXPY
    /// at the heart of `matmul`: four B rows are consumed per pass over the output row,
    /// quartering the load/store traffic on `out`.
    #[inline]
    pub fn axpy4(out: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
        debug_assert!(
            b0.len() >= out.len()
                && b1.len() >= out.len()
                && b2.len() >= out.len()
                && b3.len() >= out.len()
        );
        #[cfg(target_arch = "x86_64")]
        if use_avx2_fma() {
            // SAFETY: feature presence checked above; slice lengths checked above.
            unsafe { axpy4_avx2(out, a, b0, b1, b2, b3) };
            return;
        }
        for (j, o) in out.iter_mut().enumerate() {
            *o += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
        }
    }

    /// `true` when AVX-512F single-precision kernels are usable (checked once).
    #[inline]
    pub fn use_avx512() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVAILABLE: OnceLock<bool> = OnceLock::new();
            *AVAILABLE.get_or_init(|| std::is_x86_feature_detected!("avx512f"))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// `true` when the register-tiled GEMM band kernel is available.
    #[inline]
    pub fn has_gemm_tile() -> bool {
        use_avx2_fma()
    }

    /// Column-panel width of the packed-B layout: 32 with AVX-512 (two zmm per row of
    /// the accumulator tile), 16 with AVX2 (two ymm).
    #[inline]
    pub fn panel_width() -> usize {
        if use_avx512() {
            32
        } else {
            16
        }
    }

    /// Packs row-major `b` (`k x n`) into contiguous column panels of [`panel_width`]:
    /// panel `p` holds columns `[p*w, p*w+w)` as `k` consecutive groups of `w` floats.
    /// One extra pass over B that turns the band kernel's column walk (stride `4n` bytes,
    /// catastrophic for power-of-two `n` due to cache-set aliasing) into pure streaming.
    pub fn pack_b_panels(b: &[f32], k: usize, n: usize, width: usize) -> Vec<f32> {
        debug_assert_eq!(b.len(), k * n);
        let mut packed = Vec::with_capacity(k * n);
        let mut j = 0;
        while j < n {
            let w = width.min(n - j);
            for kk in 0..k {
                packed.extend_from_slice(&b[kk * n + j..kk * n + j + w]);
            }
            j += w;
        }
        packed
    }

    /// Register-tiled GEMM band over packed B: computes 4 output rows at once, holding
    /// the accumulator tile (4 x panel) in registers through the whole k-loop — zero
    /// loads/stores on the output inside the contraction, so the kernel runs at FMA
    /// throughput instead of saturating the load ports like AXPY does.
    ///
    /// `a0..a3` are the four A rows (length `k`), `packed` is [`pack_b_panels`] output
    /// for the full `k x n` B, and `out0..out3` are the four output rows (overwritten).
    #[allow(clippy::too_many_arguments)] // a GEMM microkernel signature is wide by nature
    pub fn gemm_band4_packed(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        packed: &[f32],
        n: usize,
        width: usize,
        out0: &mut [f32],
        out1: &mut [f32],
        out2: &mut [f32],
        out3: &mut [f32],
    ) {
        let k = a0.len();
        debug_assert_eq!(packed.len(), k * n);
        debug_assert!(out0.len() == n && out1.len() == n && out2.len() == n && out3.len() == n);
        let mut j = 0;
        let mut panel_base = 0;
        while j < n {
            let w = width.min(n - j);
            let panel = &packed[panel_base..panel_base + k * w];
            #[cfg(target_arch = "x86_64")]
            {
                if w == 32 && use_avx512() {
                    // SAFETY: feature checked; panel/out slice bounds checked above.
                    unsafe {
                        gemm_tile4x32_avx512(
                            a0,
                            a1,
                            a2,
                            a3,
                            panel,
                            &mut out0[j..j + 32],
                            &mut out1[j..j + 32],
                            &mut out2[j..j + 32],
                            &mut out3[j..j + 32],
                        )
                    };
                    j += w;
                    panel_base += k * w;
                    continue;
                }
            }
            // AVX2 16-wide tile, or the scalar accumulator tile for partial panels.
            gemm_band4_panel(
                a0,
                a1,
                a2,
                a3,
                panel,
                w,
                &mut out0[j..j + w],
                &mut out1[j..j + w],
                &mut out2[j..j + w],
                &mut out3[j..j + w],
            );
            j += w;
            panel_base += k * w;
        }
    }

    /// Preferred number of output rows per GEMM band: 8 with AVX-512 (a full 8x32 tile is
    /// 16 zmm accumulators, halving packed-B re-streaming vs 4-row bands), else 4.
    #[inline]
    pub fn band_rows() -> usize {
        if use_avx512() {
            8
        } else {
            4
        }
    }

    /// 8-row variant of [`gemm_band4_packed`] (AVX-512 only): `rows` holds the eight A
    /// rows and `outs` the eight output rows. Falls back to two 4-row bands when the
    /// panel width is not the full 32 columns.
    pub fn gemm_band8_packed(
        rows: [&[f32]; 8],
        packed: &[f32],
        n: usize,
        width: usize,
        outs: &mut [&mut [f32]; 8],
    ) {
        let k = rows[0].len();
        debug_assert_eq!(packed.len(), k * n);
        let mut j = 0;
        let mut panel_base = 0;
        while j < n {
            let w = width.min(n - j);
            let panel = &packed[panel_base..panel_base + k * w];
            #[cfg(target_arch = "x86_64")]
            if w == 32 && use_avx512() {
                // SAFETY: feature checked; slice bounds established above.
                unsafe { gemm_tile8x32_avx512(rows, panel, outs, j) };
                j += w;
                panel_base += k * w;
                continue;
            }
            // Partial panel: two 4-row scalar/AVX2 tiles via the 4-row band on this panel
            // slice alone (width w, sub-packed layout is identical).
            let (top, bottom) = outs.split_at_mut(4);
            let [o0, o1, o2, o3] = top else {
                unreachable!()
            };
            let [o4, o5, o6, o7] = bottom else {
                unreachable!()
            };
            gemm_band4_panel(
                rows[0],
                rows[1],
                rows[2],
                rows[3],
                panel,
                w,
                &mut o0[j..j + w],
                &mut o1[j..j + w],
                &mut o2[j..j + w],
                &mut o3[j..j + w],
            );
            gemm_band4_panel(
                rows[4],
                rows[5],
                rows[6],
                rows[7],
                panel,
                w,
                &mut o4[j..j + w],
                &mut o5[j..j + w],
                &mut o6[j..j + w],
                &mut o7[j..j + w],
            );
            j += w;
            panel_base += k * w;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_tile8x32_avx512(
        rows: [&[f32]; 8],
        panel: &[f32], // k x 32, contiguous
        outs: &mut [&mut [f32]; 8],
        j: usize,
    ) {
        let k = rows[0].len();
        let p = panel.as_ptr();
        let mut lo = [_mm512_setzero_ps(); 8];
        let mut hi = [_mm512_setzero_ps(); 8];
        for kk in 0..k {
            let brow = p.add(kk * 32);
            let bl = _mm512_loadu_ps(brow);
            let bh = _mm512_loadu_ps(brow.add(16));
            for (i, row) in rows.iter().enumerate() {
                let v = _mm512_set1_ps(*row.get_unchecked(kk));
                lo[i] = _mm512_fmadd_ps(v, bl, lo[i]);
                hi[i] = _mm512_fmadd_ps(v, bh, hi[i]);
            }
        }
        for (i, out) in outs.iter_mut().enumerate() {
            _mm512_storeu_ps(out.as_mut_ptr().add(j), lo[i]);
            _mm512_storeu_ps(out.as_mut_ptr().add(j + 16), hi[i]);
        }
    }

    /// One panel of the 4-row band: the AVX2 16-wide tile when it fits, otherwise a
    /// scalar accumulator tile. Shared by [`gemm_band4_packed`] (its non-AVX-512 panel
    /// body) and the partial-panel fallback of [`gemm_band8_packed`].
    #[allow(clippy::too_many_arguments)]
    fn gemm_band4_panel(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        w: usize,
        out0: &mut [f32],
        out1: &mut [f32],
        out2: &mut [f32],
        out3: &mut [f32],
    ) {
        let k = a0.len();
        #[cfg(target_arch = "x86_64")]
        if w == 16 && use_avx2_fma() {
            // SAFETY: feature checked; slices are w wide by construction.
            unsafe { gemm_tile4x16_avx2(a0, a1, a2, a3, panel, out0, out1, out2, out3) };
            return;
        }
        let mut acc = [[0.0f32; 32]; 4];
        for kk in 0..k {
            let brow = &panel[kk * w..(kk + 1) * w];
            let a = [a0[kk], a1[kk], a2[kk], a3[kk]];
            for (ai, acc_row) in a.iter().zip(acc.iter_mut()) {
                for (c, &bv) in brow.iter().enumerate() {
                    acc_row[c] += ai * bv;
                }
            }
        }
        out0.copy_from_slice(&acc[0][..w]);
        out1.copy_from_slice(&acc[1][..w]);
        out2.copy_from_slice(&acc[2][..w]);
        out3.copy_from_slice(&acc[3][..w]);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_tile4x16_avx2(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32], // k x 16, contiguous
        out0: &mut [f32],
        out1: &mut [f32],
        out2: &mut [f32],
        out3: &mut [f32],
    ) {
        let k = a0.len();
        let p = panel.as_ptr();
        let mut c00 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c20 = _mm256_setzero_ps();
        let mut c21 = _mm256_setzero_ps();
        let mut c30 = _mm256_setzero_ps();
        let mut c31 = _mm256_setzero_ps();
        for kk in 0..k {
            let brow = p.add(kk * 16);
            let bl = _mm256_loadu_ps(brow);
            let bh = _mm256_loadu_ps(brow.add(8));
            let v0 = _mm256_set1_ps(*a0.get_unchecked(kk));
            c00 = _mm256_fmadd_ps(v0, bl, c00);
            c01 = _mm256_fmadd_ps(v0, bh, c01);
            let v1 = _mm256_set1_ps(*a1.get_unchecked(kk));
            c10 = _mm256_fmadd_ps(v1, bl, c10);
            c11 = _mm256_fmadd_ps(v1, bh, c11);
            let v2 = _mm256_set1_ps(*a2.get_unchecked(kk));
            c20 = _mm256_fmadd_ps(v2, bl, c20);
            c21 = _mm256_fmadd_ps(v2, bh, c21);
            let v3 = _mm256_set1_ps(*a3.get_unchecked(kk));
            c30 = _mm256_fmadd_ps(v3, bl, c30);
            c31 = _mm256_fmadd_ps(v3, bh, c31);
        }
        _mm256_storeu_ps(out0.as_mut_ptr(), c00);
        _mm256_storeu_ps(out0.as_mut_ptr().add(8), c01);
        _mm256_storeu_ps(out1.as_mut_ptr(), c10);
        _mm256_storeu_ps(out1.as_mut_ptr().add(8), c11);
        _mm256_storeu_ps(out2.as_mut_ptr(), c20);
        _mm256_storeu_ps(out2.as_mut_ptr().add(8), c21);
        _mm256_storeu_ps(out3.as_mut_ptr(), c30);
        _mm256_storeu_ps(out3.as_mut_ptr().add(8), c31);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_tile4x32_avx512(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32], // k x 32, contiguous
        out0: &mut [f32],
        out1: &mut [f32],
        out2: &mut [f32],
        out3: &mut [f32],
    ) {
        let k = a0.len();
        let p = panel.as_ptr();
        let mut c00 = _mm512_setzero_ps();
        let mut c01 = _mm512_setzero_ps();
        let mut c10 = _mm512_setzero_ps();
        let mut c11 = _mm512_setzero_ps();
        let mut c20 = _mm512_setzero_ps();
        let mut c21 = _mm512_setzero_ps();
        let mut c30 = _mm512_setzero_ps();
        let mut c31 = _mm512_setzero_ps();
        for kk in 0..k {
            let brow = p.add(kk * 32);
            let bl = _mm512_loadu_ps(brow);
            let bh = _mm512_loadu_ps(brow.add(16));
            let v0 = _mm512_set1_ps(*a0.get_unchecked(kk));
            c00 = _mm512_fmadd_ps(v0, bl, c00);
            c01 = _mm512_fmadd_ps(v0, bh, c01);
            let v1 = _mm512_set1_ps(*a1.get_unchecked(kk));
            c10 = _mm512_fmadd_ps(v1, bl, c10);
            c11 = _mm512_fmadd_ps(v1, bh, c11);
            let v2 = _mm512_set1_ps(*a2.get_unchecked(kk));
            c20 = _mm512_fmadd_ps(v2, bl, c20);
            c21 = _mm512_fmadd_ps(v2, bh, c21);
            let v3 = _mm512_set1_ps(*a3.get_unchecked(kk));
            c30 = _mm512_fmadd_ps(v3, bl, c30);
            c31 = _mm512_fmadd_ps(v3, bh, c31);
        }
        _mm512_storeu_ps(out0.as_mut_ptr(), c00);
        _mm512_storeu_ps(out0.as_mut_ptr().add(16), c01);
        _mm512_storeu_ps(out1.as_mut_ptr(), c10);
        _mm512_storeu_ps(out1.as_mut_ptr().add(16), c11);
        _mm512_storeu_ps(out2.as_mut_ptr(), c20);
        _mm512_storeu_ps(out2.as_mut_ptr().add(16), c21);
        _mm512_storeu_ps(out3.as_mut_ptr(), c30);
        _mm512_storeu_ps(out3.as_mut_ptr().add(16), c31);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn axpy4_avx2(
        out: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out.len();
        let va0 = _mm256_set1_ps(a[0]);
        let va1 = _mm256_set1_ps(a[1]);
        let va2 = _mm256_set1_ps(a[2]);
        let va3 = _mm256_set1_ps(a[3]);
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_ps(out.as_ptr().add(j));
            acc = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0.as_ptr().add(j)), acc);
            acc = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b1.as_ptr().add(j)), acc);
            acc = _mm256_fmadd_ps(va2, _mm256_loadu_ps(b2.as_ptr().add(j)), acc);
            acc = _mm256_fmadd_ps(va3, _mm256_loadu_ps(b3.as_ptr().add(j)), acc);
            _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
            j += 8;
        }
        while j < n {
            out[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            j += 1;
        }
    }

    /// `out[j] += a * b[j]` — the remainder AXPY for k % 4 tail rows.
    #[inline]
    pub fn axpy1(out: &mut [f32], a: f32, b: &[f32]) {
        debug_assert!(b.len() >= out.len());
        #[cfg(target_arch = "x86_64")]
        if use_avx2_fma() {
            // SAFETY: feature presence checked above; slice length checked above.
            unsafe { axpy1_avx2(out, a, b) };
            return;
        }
        for (o, &bj) in out.iter_mut().zip(b.iter()) {
            *o += a * bj;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn axpy1_avx2(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len();
        let va = _mm256_set1_ps(a);
        let mut j = 0;
        while j + 8 <= n {
            let acc = _mm256_fmadd_ps(
                va,
                _mm256_loadu_ps(b.as_ptr().add(j)),
                _mm256_loadu_ps(out.as_ptr().add(j)),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
            j += 8;
        }
        while j < n {
            out[j] += a * b[j];
            j += 1;
        }
    }

    /// Four simultaneous dot products of `a` against `b0..b3` — the `A * B^T` microkernel:
    /// one pass over `a` feeds four output columns, quartering the `a` load traffic.
    #[inline]
    pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        debug_assert!(
            b0.len() >= a.len()
                && b1.len() >= a.len()
                && b2.len() >= a.len()
                && b3.len() >= a.len()
        );
        #[cfg(target_arch = "x86_64")]
        if use_avx2_fma() {
            // SAFETY: feature presence checked above; slice lengths checked above.
            return unsafe { dot4_avx2(a, b0, b1, b2, b3) };
        }
        let mut acc = [0.0f32; 4];
        for (j, &aj) in a.iter().enumerate() {
            acc[0] += aj * b0[j];
            acc[1] += aj * b1[j];
            acc[2] += aj * b2[j];
            acc[3] += aj * b3[j];
        }
        acc
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot4_avx2(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        let n = a.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let va = _mm256_loadu_ps(a.as_ptr().add(j));
            acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0.as_ptr().add(j)), acc0);
            acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1.as_ptr().add(j)), acc1);
            acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2.as_ptr().add(j)), acc2);
            acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3.as_ptr().add(j)), acc3);
            j += 8;
        }
        let mut out = [hsum256(acc0), hsum256(acc1), hsum256(acc2), hsum256(acc3)];
        while j < n {
            out[0] += a[j] * b0[j];
            out[1] += a[j] * b1[j];
            out[2] += a[j] * b2[j];
            out[3] += a[j] * b3[j];
            j += 1;
        }
        out
    }

    /// Single dot product (tail columns of the `A * B^T` kernel).
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert!(b.len() >= a.len());
        #[cfg(target_arch = "x86_64")]
        if use_avx2_fma() {
            // SAFETY: feature presence checked above; slice length checked above.
            return unsafe { dot_avx2(a, b) };
        }
        a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut j = 0;
        while j + 16 <= n {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(j)),
                _mm256_loadu_ps(b.as_ptr().add(j)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(j + 8)),
                _mm256_loadu_ps(b.as_ptr().add(j + 8)),
                acc1,
            );
            j += 16;
        }
        while j + 8 <= n {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(j)),
                _mm256_loadu_ps(b.as_ptr().add(j)),
                acc0,
            );
            j += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while j < n {
            sum += a[j] * b[j];
            j += 1;
        }
        sum
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let sum4 = _mm_add_ps(lo, hi);
        let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
        let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 0b01));
        _mm_cvtss_f32(sum1)
    }

    /// `true` when the AVX-512BW widening i8 kernels are usable (checked once).
    /// BW implies the 512-bit integer `madd`; F is needed for the lane extracts.
    #[inline]
    pub fn use_avx512bw() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVAILABLE: OnceLock<bool> = OnceLock::new();
            *AVAILABLE.get_or_init(|| {
                std::is_x86_feature_detected!("avx512f")
                    && std::is_x86_feature_detected!("avx512bw")
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Elements between flushes of the i8 kernels' `i32` lane accumulators into the
    /// `i64` total. Each `madd` lane gains at most two `127*127` products per 16 (AVX2)
    /// or 32 (AVX-512) elements, so a lane stays below `32768 * 16129 ≈ 5.3e8 << i32::MAX`
    /// within one chunk on every path. Must stay a multiple of 32.
    #[cfg(target_arch = "x86_64")]
    const I8_CHUNK: usize = 32768;

    /// Exact integer dot product of two i8 code vectors.
    ///
    /// Every path — scalar, AVX2 (`cvtepi8_epi16` + `madd_epi16`), AVX-512BW — sums the
    /// same integer products, so all return bit-identical results by construction:
    /// integer arithmetic has no rounding for vectorization order to perturb. This is
    /// what lets the quantized index scan promise exactness downstream.
    #[inline]
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i64 {
        debug_assert!(b.len() >= a.len());
        #[cfg(target_arch = "x86_64")]
        {
            if use_avx512bw() {
                // SAFETY: feature presence checked above; slice lengths checked above.
                return unsafe { dot_i8_avx512bw(a, b) };
            }
            if use_avx2_fma() {
                // SAFETY: feature presence checked above; slice lengths checked above.
                return unsafe { dot_i8_avx2(a, b) };
            }
        }
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| x as i64 * y as i64)
            .sum()
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i64 {
        let n = a.len();
        let mut total: i64 = 0;
        let mut j = 0;
        while j + 16 <= n {
            // One overflow-safe chunk of 16-wide madd accumulation.
            let block_end = n.min(j + I8_CHUNK);
            let mut acc = _mm256_setzero_si256();
            while j + 16 <= block_end {
                let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(j) as *const __m128i));
                let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(j) as *const __m128i));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
                j += 16;
            }
            total += hsum256_epi32(acc);
        }
        while j < n {
            total += *a.get_unchecked(j) as i64 * *b.get_unchecked(j) as i64;
            j += 1;
        }
        total
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    unsafe fn dot_i8_avx512bw(a: &[i8], b: &[i8]) -> i64 {
        let n = a.len();
        let mut total: i64 = 0;
        let mut j = 0;
        while j + 32 <= n {
            let block_end = n.min(j + I8_CHUNK);
            let mut acc = _mm512_setzero_si512();
            while j + 32 <= block_end {
                let va =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(j) as *const __m256i));
                let vb =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i));
                acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
                j += 32;
            }
            let hi = _mm512_extracti64x4_epi64(acc, 1);
            let lo = _mm512_castsi512_si256(acc);
            total += hsum256_epi32(_mm256_add_epi32(lo, hi));
        }
        while j < n {
            total += *a.get_unchecked(j) as i64 * *b.get_unchecked(j) as i64;
            j += 1;
        }
        total
    }

    /// Sums the eight i32 lanes into an i64. Lane magnitudes are bounded by the chunked
    /// accumulation (see [`I8_CHUNK`]), so the 32-bit horizontal adds cannot wrap.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256_epi32(v: __m256i) -> i64 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        let sum4 = _mm_add_epi32(lo, hi);
        let sum2 = _mm_add_epi32(sum4, _mm_unpackhi_epi64(sum4, sum4));
        let sum1 = _mm_add_epi32(sum2, _mm_shuffle_epi32(sum2, 0b01));
        _mm_cvtsi128_si32(sum1) as i64
    }
}

/// A borrowed, row-major `f32` matrix view — the shape of a [`Matrix`] without the
/// owned buffer, so kernels can run over externally owned storage (an mmap'd file,
/// a slice of a larger buffer) with zero copies.
///
/// # Examples
/// ```
/// use sudowoodo_nn::matrix::{Matrix, MatrixView};
///
/// let corpus = [1.0f32, 0.0, 0.0, 1.0];
/// let view = MatrixView::new(2, 2, &corpus);
/// let q = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
/// assert_eq!(q.matmul_transpose_b_view(&view).row(0), &[1.0, 0.0]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> MatrixView<'a> {
    /// Wraps a row-major buffer as a `rows x cols` view.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> MatrixView<'a> {
        assert_eq!(
            data.len(),
            rows * cols,
            "MatrixView::new: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        MatrixView { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the viewed data into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.to_vec())
    }
}

/// A dense, row-major matrix of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a closure invoked with `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a `1 x d` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have different lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Creates a matrix with entries drawn from a normal distribution `N(0, std^2)`
    /// using the Box-Muller transform (avoids the `rand_distr` dependency).
    pub fn random_normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            z * std
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out into a vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two matrices element-wise with `f`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place element-wise addition (used for gradient accumulation).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place scaling: `self *= s` (no allocation).
    pub fn scale_mut(&mut self, s: f32) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// In-place scaled accumulation: `self += s * other` (no allocation).
    ///
    /// This is the gradient-accumulation primitive of the tape's backward pass.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        kernels::axpy1(&mut self.data, s, &other.data);
    }

    /// In-place fused element-wise accumulation: `self += a ⊙ b` (no temporary).
    ///
    /// Used by the backward pass of element-wise products (e.g. cutoff masks), where the
    /// straightforward `hadamard` + `add_assign` would allocate a full matrix per op.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_hadamard(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(self.shape(), a.shape(), "add_hadamard: shape mismatch (a)");
        assert_eq!(self.shape(), b.shape(), "add_hadamard: shape mismatch (b)");
        for ((o, &x), &y) in self.data.iter_mut().zip(a.data.iter()).zip(b.data.iter()) {
            *o += x * y;
        }
    }

    /// Matrix product `self * other`, via the register-blocked microkernel
    /// (see the module docs), parallel over output rows above `PAR_FLOPS`.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_nn::matrix::Matrix;
    ///
    /// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    /// let identity = Matrix::identity(2);
    /// assert_eq!(a.matmul(&identity), a);
    /// assert!(a.matmul(&a).approx_eq(&a.matmul_naive(&a), 1e-6));
    /// ```
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 || self.cols == 0 {
            return out;
        }
        let flops = m * self.cols * n;
        let parallel = flops >= PAR_FLOPS && rayon::current_num_threads() > 1;
        if kernels::has_gemm_tile() && m >= 4 && flops >= TILE_FLOPS {
            // Register-tiled path: B is packed into streaming column panels once, then
            // row bands (8 with AVX-512, else 4) run with the accumulator tile held in
            // registers across the whole contraction.
            let width = kernels::panel_width();
            let band = kernels::band_rows();
            let packed = kernels::pack_b_panels(&other.data, self.cols, n, width);
            let run_band = |band_idx: usize, band_out: &mut [f32]| {
                let i0 = band_idx * band;
                let rows_here = band_out.len() / n;
                let mut r = 0;
                while band == 8 && rows_here - r >= 8 {
                    let a_rows: [&[f32]; 8] = std::array::from_fn(|t| self.row(i0 + r + t));
                    let sub = &mut band_out[r * n..(r + 8) * n];
                    let mut chunks = sub.chunks_mut(n);
                    let mut outs: [&mut [f32]; 8] =
                        std::array::from_fn(|_| chunks.next().expect("8 rows"));
                    kernels::gemm_band8_packed(a_rows, &packed, n, width, &mut outs);
                    r += 8;
                }
                while rows_here - r >= 4 {
                    let sub = &mut band_out[r * n..(r + 4) * n];
                    let (o0, rest) = sub.split_at_mut(n);
                    let (o1, rest) = rest.split_at_mut(n);
                    let (o2, o3) = rest.split_at_mut(n);
                    kernels::gemm_band4_packed(
                        self.row(i0 + r),
                        self.row(i0 + r + 1),
                        self.row(i0 + r + 2),
                        self.row(i0 + r + 3),
                        &packed,
                        n,
                        width,
                        o0,
                        o1,
                        o2,
                        o3,
                    );
                    r += 4;
                }
                while r < rows_here {
                    Self::matmul_row(self.row(i0 + r), other, &mut band_out[r * n..(r + 1) * n]);
                    r += 1;
                }
            };
            if parallel {
                out.data
                    .par_chunks_mut(band * n)
                    .enumerate()
                    .for_each(|(bi, band_out)| run_band(bi, band_out));
            } else {
                for (bi, band_out) in out.data.chunks_mut(band * n).enumerate() {
                    run_band(bi, band_out);
                }
            }
        } else if parallel && m > 1 {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, out_row)| Self::matmul_row(self.row(i), other, out_row));
        } else {
            for i in 0..m {
                let a_row = self.row(i);
                let out_row = &mut out.data[i * n..(i + 1) * n];
                Self::matmul_row(a_row, other, out_row);
            }
        }
        out
    }

    /// One output row of `matmul`: `out_row += a_row * other`, k-unrolled by 4.
    #[inline]
    fn matmul_row(a_row: &[f32], other: &Matrix, out_row: &mut [f32]) {
        let k = a_row.len();
        let mut kk = 0;
        while kk + 4 <= k {
            kernels::axpy4(
                out_row,
                [a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]],
                other.row(kk),
                other.row(kk + 1),
                other.row(kk + 2),
                other.row(kk + 3),
            );
            kk += 4;
        }
        while kk < k {
            if a_row[kk] != 0.0 {
                kernels::axpy1(out_row, a_row[kk], other.row(kk));
            }
            kk += 1;
        }
    }

    /// Reference matrix product: the original cache-aware triple loop, single-threaded and
    /// SIMD-free. Kept as the ground truth for the kernel-equivalence property tests and
    /// as the baseline of the speedup benches.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // Iterate k in the middle loop so that we stream through `other` row-by-row,
        // which is cache-friendly for row-major storage.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Fused product `self * other^T` without materializing the transpose.
    ///
    /// Both operands are row-major with the contraction over their *columns*, so every
    /// output entry is a dot product of two contiguous rows — the natural layout for
    /// similarity matrices (`Z * Z^T`), cosine scoring against an embedding corpus, and
    /// the `A`-gradient of `matmul`. Parallel over output rows above `PAR_FLOPS`.
    ///
    /// # Panics
    /// Panics when the column counts disagree.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_nn::matrix::Matrix;
    ///
    /// // Rows of `q` scored against rows of `corpus`: out[i][j] = q[i] · corpus[j].
    /// let q = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
    /// let corpus = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
    /// let sims = q.matmul_transpose_b(&corpus);
    /// assert_eq!(sims.row(0), &[1.0, 0.0]);
    /// ```
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        self.matmul_transpose_b_view(&other.view())
    }

    /// [`Matrix::matmul_transpose_b`] against a borrowed [`MatrixView`] — the same
    /// kernels (and bit-identical output) over storage this crate does not own, e.g.
    /// a memory-mapped shard payload.
    ///
    /// # Panics
    /// Panics when the column counts disagree.
    pub fn matmul_transpose_b_view(&self, other: &MatrixView<'_>) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols(),
            "matmul_transpose_b: contraction mismatch ({}x{} * ({}x{})^T)",
            self.rows,
            self.cols,
            other.rows(),
            other.cols()
        );
        let mut out = Matrix::zeros(self.rows, other.rows());
        let flops = self.rows * self.cols * other.rows();
        if flops >= PAR_FLOPS && self.rows > 1 && rayon::current_num_threads() > 1 {
            out.data
                .par_chunks_mut(other.rows().max(1))
                .enumerate()
                .for_each(|(i, out_row)| Self::dot_row(self.row(i), other, out_row));
        } else {
            for i in 0..self.rows {
                let a_row = self.row(i);
                let out_row = &mut out.data[i * other.rows()..(i + 1) * other.rows()];
                Self::dot_row(a_row, other, out_row);
            }
        }
        out
    }

    /// This matrix as a borrowed [`MatrixView`].
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.rows, self.cols, &self.data)
    }

    /// One output row of `matmul_transpose_b`: dots of `a_row` against all rows of `other`,
    /// four at a time.
    #[inline]
    fn dot_row(a_row: &[f32], other: &MatrixView<'_>, out_row: &mut [f32]) {
        let n = other.rows();
        let mut j = 0;
        while j + 4 <= n {
            let d = kernels::dot4(
                a_row,
                other.row(j),
                other.row(j + 1),
                other.row(j + 2),
                other.row(j + 3),
            );
            out_row[j..j + 4].copy_from_slice(&d);
            j += 4;
        }
        while j < n {
            out_row[j] = kernels::dot(a_row, other.row(j));
            j += 1;
        }
    }

    /// Fused product `self^T * other` without materializing the transpose.
    ///
    /// The contraction runs over the *rows* of both operands (`self: k x m`,
    /// `other: k x n`, result `m x n`), which is the shape of the `B`-gradient of
    /// `matmul` (`A^T * dC`). The k-outer loop streams both operands row-by-row.
    ///
    /// # Panics
    /// Panics when the row counts disagree.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a: contraction mismatch (({}x{})^T * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        // k-outer: out[i] += self[kk][i] * other[kk] — both operands stream row-major.
        for kk in 0..self.rows {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki != 0.0 {
                    let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                    kernels::axpy1(out_row, a_ki, b_row);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Stacks matrices vertically (they must share the column count).
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack: empty input");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Stacks matrices horizontally (they must share the row count).
    pub fn hstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "hstack: empty input");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in mats {
                assert_eq!(m.rows, rows, "hstack: row mismatch");
                out.row_mut(r)[offset..offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Returns the sub-matrix consisting of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols: out of range");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Returns the sub-matrix consisting of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows: out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows (with repetition allowed) into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows: index {} out of range", idx);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Mean of every row, returned as an `n x 1` column vector.
    pub fn row_means(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            let s: f32 = self.row(r).iter().sum();
            out.set(r, 0, s / self.cols as f32);
        }
        out
    }

    /// Mean over rows, returned as a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        let n = self.rows.max(1) as f32;
        for v in out.data.iter_mut() {
            *v /= n;
        }
        out
    }

    /// Adds a `1 x d` row vector to every row in place.
    ///
    /// # Panics
    /// Panics when `bias` is not `1 x cols`.
    pub fn add_row_broadcast_mut(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "add_row_broadcast_mut: bias must be 1 x d");
        assert_eq!(
            self.cols, bias.cols,
            "add_row_broadcast_mut: width mismatch"
        );
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
    }

    /// Multiplies every row element-wise by a `1 x d` row vector in place.
    ///
    /// # Panics
    /// Panics when `gain` is not `1 x cols`.
    pub fn mul_row_broadcast_mut(&mut self, gain: &Matrix) {
        assert_eq!(gain.rows, 1, "mul_row_broadcast_mut: gain must be 1 x d");
        assert_eq!(
            self.cols, gain.cols,
            "mul_row_broadcast_mut: width mismatch"
        );
        for r in 0..self.rows {
            for (v, &g) in self.row_mut(r).iter_mut().zip(gain.data.iter()) {
                *v *= g;
            }
        }
    }

    /// Adds a `1 x d` row vector to every row, producing a new matrix.
    ///
    /// # Panics
    /// Panics when `bias` is not `1 x cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "add_row_broadcast: bias must be 1 x d");
        assert_eq!(self.cols, bias.cols, "add_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
        out
    }

    /// Multiplies every row element-wise by a `1 x d` row vector, producing a new matrix.
    ///
    /// # Panics
    /// Panics when `gain` is not `1 x cols`.
    pub fn mul_row_broadcast(&self, gain: &Matrix) -> Matrix {
        assert_eq!(gain.rows, 1, "mul_row_broadcast: gain must be 1 x d");
        assert_eq!(self.cols, gain.cols, "mul_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &g) in out.row_mut(r).iter_mut().zip(gain.data.iter()) {
                *v *= g;
            }
        }
        out
    }

    /// Returns a copy with every row L2-normalized; rows with near-zero norm are left
    /// unchanged.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_nn::matrix::Matrix;
    ///
    /// let m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]).l2_normalize_rows();
    /// assert_eq!(m.row(0), &[0.6, 0.8]);
    /// assert_eq!(m.row(1), &[0.0, 0.0]); // zero rows stay zero
    /// ```
    pub fn l2_normalize_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.l2_normalize_rows_mut();
        out
    }

    /// L2-normalizes every row in place (no allocation); rows with near-zero norm are
    /// left unchanged.
    pub fn l2_normalize_rows_mut(&mut self) {
        for r in 0..self.rows {
            let norm: f32 = self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in self.row_mut(r) {
                    *v /= norm;
                }
            }
        }
    }

    /// Dot product of two equal-length slices through the SIMD kernel.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
        kernels::dot(a, b)
    }

    /// Exact integer dot product of two equal-length i8 code vectors through the SIMD
    /// kernel (AVX-512BW / AVX2 `madd`, scalar fallback). All paths return bit-identical
    /// results — integer accumulation has no rounding — which is what lets the quantized
    /// index scan stay exact end to end.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i64 {
        assert_eq!(a.len(), b.len(), "dot_i8: dimension mismatch");
        kernels::dot_i8(a, b)
    }

    /// Cosine similarity between two rows of (possibly different) matrices.
    pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "cosine: dimension mismatch");
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na <= 1e-12 || nb <= 1e-12 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Checks element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.col(2), vec![2.0, 5.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn identity_has_ones_on_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn matmul_matches_manual_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn fused_transpose_kernels_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random_normal(7, 13, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 13, 1.0, &mut rng);
        let fused = a.matmul_transpose_b(&b);
        let explicit = a.matmul_naive(&b.transpose());
        assert!(fused.approx_eq(&explicit, 1e-4), "A*B^T mismatch");

        let c = Matrix::random_normal(13, 7, 1.0, &mut rng);
        let d = Matrix::random_normal(13, 5, 1.0, &mut rng);
        let fused = c.matmul_transpose_a(&d);
        let explicit = c.transpose().matmul_naive(&d);
        assert!(fused.approx_eq(&explicit, 1e-4), "A^T*B mismatch");
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Matrix::random_normal(4, 6, 1.0, &mut rng);
        let b = Matrix::random_normal(4, 6, 1.0, &mut rng);

        let mut scaled = a.clone();
        scaled.scale_mut(-2.5);
        assert!(scaled.approx_eq(&a.scale(-2.5), 1e-6));

        let mut acc = a.clone();
        acc.add_scaled(&b, 0.75);
        assert!(acc.approx_eq(&a.add(&b.scale(0.75)), 1e-6));

        let mut had = a.clone();
        had.add_hadamard(&a, &b);
        assert!(had.approx_eq(&a.add(&a.hadamard(&b)), 1e-6));
    }

    #[test]
    #[should_panic(expected = "matmul_transpose_b: contraction mismatch")]
    fn matmul_transpose_b_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = a.matmul_transpose_b(&b);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(3, 5, 1.0, &mut rng);
        let i = Matrix::identity(5);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_normal(4, 7, 1.0, &mut rng);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(a.row_means().data(), &[1.5, 3.5]);
    }

    #[test]
    fn stack_and_slice() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.slice_cols(1, 3).row(0), &[2.0, 3.0]);
        assert_eq!(v.slice_rows(1, 2).row(0), &[3.0, 4.0]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn l2_normalize_rows_produces_unit_rows() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        let n = a.l2_normalize_rows();
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // zero row untouched
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn cosine_similarity_basic() {
        assert!((Matrix::cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(Matrix::cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((Matrix::cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn i8_dot_kernel_matches_scalar_reference_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        use rand::Rng;
        // Odd lengths exercise every tail path; extreme codes probe madd saturation
        // headroom (none should occur: products are at most 127*127).
        for &len in &[0usize, 1, 3, 15, 16, 17, 31, 32, 33, 64, 257, 1000] {
            let a: Vec<i8> = (0..len)
                .map(|_| rng.gen_range(-128i16..=127) as i8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|_| rng.gen_range(-128i16..=127) as i8)
                .collect();
            let reference: i64 = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| x as i64 * y as i64)
                .sum();
            assert_eq!(kernels::dot_i8(&a, &b), reference, "len {len}");
        }
        let worst = vec![-128i8; 4096];
        assert_eq!(kernels::dot_i8(&worst, &worst), 4096 * 128 * 128);
    }

    #[test]
    fn random_normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random_normal(200, 200, 1.0, &mut rng);
        assert!(m.mean().abs() < 0.02);
        let var = m.data().iter().map(|x| x * x).sum::<f32>() / m.len() as f32;
        assert!((var - 1.0).abs() < 0.05);
    }
}
