//! Dense row-major `f32` matrix used as the single tensor type of the autodiff engine.
//!
//! Every value flowing through [`crate::tape::Tape`] is a 2-D matrix. Vectors are
//! represented as `1 x d` (row vectors) or `n x 1` (column vectors). The implementation
//! favours clarity and predictable allocation behaviour over raw throughput: the models
//! trained in this reproduction are small (hidden sizes of 32-128), so naive `O(n^3)`
//! matrix multiplication with a transposed right-hand side is more than fast enough.

use rand::Rng;

/// A dense, row-major matrix of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a closure invoked with `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a `1 x d` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have different lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Creates a matrix with entries drawn from a normal distribution `N(0, std^2)`
    /// using the Box-Muller transform (avoids the `rand_distr` dependency).
    pub fn random_normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            z * std
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out into a vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two matrices element-wise with `f`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place element-wise addition (used for gradient accumulation).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // Iterate k in the middle loop so that we stream through `other` row-by-row,
        // which is cache-friendly for row-major storage.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Stacks matrices vertically (they must share the column count).
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack: empty input");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Stacks matrices horizontally (they must share the row count).
    pub fn hstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "hstack: empty input");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in mats {
                assert_eq!(m.rows, rows, "hstack: row mismatch");
                out.row_mut(r)[offset..offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Returns the sub-matrix consisting of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols: out of range");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Returns the sub-matrix consisting of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows: out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows (with repetition allowed) into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows: index {} out of range", idx);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Mean of every row, returned as an `n x 1` column vector.
    pub fn row_means(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            let s: f32 = self.row(r).iter().sum();
            out.set(r, 0, s / self.cols as f32);
        }
        out
    }

    /// Mean over rows, returned as a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        let n = self.rows.max(1) as f32;
        for v in out.data.iter_mut() {
            *v /= n;
        }
        out
    }

    /// L2-normalizes every row in place; rows with near-zero norm are left unchanged.
    pub fn l2_normalize_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let norm: f32 = out.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in out.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Cosine similarity between two rows of (possibly different) matrices.
    pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "cosine: dimension mismatch");
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na <= 1e-12 || nb <= 1e-12 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Checks element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.col(2), vec![2.0, 5.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn identity_has_ones_on_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn matmul_matches_manual_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(3, 5, 1.0, &mut rng);
        let i = Matrix::identity(5);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_normal(4, 7, 1.0, &mut rng);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(a.row_means().data(), &[1.5, 3.5]);
    }

    #[test]
    fn stack_and_slice() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.slice_cols(1, 3).row(0), &[2.0, 3.0]);
        assert_eq!(v.slice_rows(1, 2).row(0), &[3.0, 4.0]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn l2_normalize_rows_produces_unit_rows() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        let n = a.l2_normalize_rows();
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // zero row untouched
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn cosine_similarity_basic() {
        assert!((Matrix::cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(Matrix::cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((Matrix::cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn random_normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random_normal(200, 200, 1.0, &mut rng);
        assert!(m.mean().abs() < 0.02);
        let var = m.data().iter().map(|x| x * x).sum::<f32>() / m.len() as f32;
        assert!((var - 1.0).abs() < 0.05);
    }
}
