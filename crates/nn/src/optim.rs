//! Optimizers: AdamW (the optimizer used by the paper) and plain SGD.
//!
//! Optimizers consume the parameter bindings recorded on a [`Tape`] together with the
//! [`Gradients`] produced by `Tape::backward`. A parameter bound multiple times in the same
//! tape (e.g. a shared embedding table used for both views of a contrastive batch) has its
//! gradients summed before the update.

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::param::Param;
use crate::tape::{Gradients, Tape};

/// Collects gradients per distinct parameter, summing over repeated bindings.
fn collect_param_grads(tape: &Tape, grads: &Gradients) -> Vec<(Param, Matrix)> {
    let mut by_id: HashMap<usize, (Param, Matrix)> = HashMap::new();
    for (node, param) in tape.bindings() {
        let (rows, cols) = param.shape();
        let g = match grads.get(*node) {
            Some(g) => g.clone(),
            None => continue,
        };
        by_id
            .entry(param.id())
            .and_modify(|(_, acc)| acc.add_assign(&g))
            .or_insert_with(|| {
                (param.clone(), {
                    let mut zero = Matrix::zeros(rows, cols);
                    zero.add_assign(&g);
                    zero
                })
            });
    }
    by_id.into_values().collect()
}

/// Computes the global L2 norm over a set of gradients.
fn global_norm(grads: &[(Param, Matrix)]) -> f32 {
    grads
        .iter()
        .map(|(_, g)| g.data().iter().map(|x| x * x).sum::<f32>())
        .sum::<f32>()
        .sqrt()
}

/// The AdamW optimizer (decoupled weight decay).
#[derive(Clone, Debug)]
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    /// Optional global-norm gradient clipping threshold.
    pub max_grad_norm: Option<f32>,
    /// Step counter (used for bias correction).
    t: u64,
}

impl AdamW {
    /// Creates an AdamW optimizer with the common defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`, `weight_decay = 0.01`).
    pub fn new(lr: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            max_grad_norm: Some(5.0),
            t: 0,
        }
    }

    /// Sets the weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets (or disables) gradient clipping.
    pub fn with_max_grad_norm(mut self, norm: Option<f32>) -> Self {
        self.max_grad_norm = norm;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update to every parameter bound on `tape` that received a gradient.
    pub fn step(&mut self, tape: &Tape, grads: &Gradients) {
        let mut collected = collect_param_grads(tape, grads);
        if collected.is_empty() {
            return;
        }
        if let Some(max_norm) = self.max_grad_norm {
            let norm = global_norm(&collected);
            if norm > max_norm && norm > 0.0 {
                let scale = max_norm / norm;
                for (_, g) in collected.iter_mut() {
                    *g = g.scale(scale);
                }
            }
        }
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (param, grad) in collected {
            param.with_inner_mut(|inner| {
                let n = inner.value.len();
                debug_assert_eq!(grad.len(), n, "gradient shape mismatch for {}", inner.name);
                for i in 0..n {
                    let g = grad.data()[i];
                    let m = self.beta1 * inner.m.data()[i] + (1.0 - self.beta1) * g;
                    let v = self.beta2 * inner.v.data()[i] + (1.0 - self.beta2) * g * g;
                    inner.m.data_mut()[i] = m;
                    inner.v.data_mut()[i] = v;
                    let m_hat = m / bias1;
                    let v_hat = v / bias2;
                    let w = inner.value.data()[i];
                    let update =
                        self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * w);
                    inner.value.data_mut()[i] = w - update;
                }
            });
        }
    }
}

/// Plain stochastic gradient descent, mostly used in tests and the simplest baselines.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one update.
    pub fn step(&mut self, tape: &Tape, grads: &Gradients) {
        for (param, grad) in collect_param_grads(tape, grads) {
            param.with_inner_mut(|inner| {
                for i in 0..inner.value.len() {
                    inner.value.data_mut()[i] -= self.lr * grad.data()[i];
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Tape;

    /// Minimizes `sum((w - target)^2)` and checks that the optimizer converges.
    fn optimize(
        mut step: impl FnMut(&Tape, &Gradients),
        param: &Param,
        target: &Matrix,
        iters: usize,
    ) -> f32 {
        let mut last = f32::MAX;
        for _ in 0..iters {
            let mut tape = Tape::new();
            let w = tape.param(param);
            let t = tape.constant(target.clone());
            let diff = tape.sub(w, t);
            let sq = tape.pow2(diff);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            step(&tape, &grads);
            last = tape.scalar(loss);
        }
        last
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let param = Param::new("w", Matrix::zeros(2, 2));
        let target = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let mut opt = AdamW::new(0.05).with_weight_decay(0.0);
        let loss = optimize(|t, g| opt.step(t, g), &param, &target, 400);
        assert!(loss < 1e-3, "loss did not converge: {loss}");
        assert!(param.value().approx_eq(&target, 0.05));
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let param = Param::new("w", Matrix::zeros(1, 3));
        let target = Matrix::row_vector(&[0.25, -0.75, 1.5]);
        let mut opt = Sgd::new(0.1);
        let loss = optimize(|t, g| opt.step(t, g), &param, &target, 200);
        assert!(loss < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient_signal() {
        let param = Param::new("w", Matrix::full(1, 1, 4.0));
        let mut opt = AdamW::new(0.1).with_weight_decay(0.1);
        for _ in 0..50 {
            let mut tape = Tape::new();
            let w = tape.param(&param);
            // Loss that ignores the parameter value: constant gradient of zero.
            let z = tape.scale(w, 0.0);
            let loss = tape.sum_all(z);
            let grads = tape.backward(loss);
            opt.step(&tape, &grads);
        }
        assert!(param.value().get(0, 0) < 4.0);
    }

    #[test]
    fn shared_parameter_gradients_are_summed() {
        // Binding the same parameter twice must double the gradient.
        let param = Param::new("w", Matrix::full(1, 1, 1.0));
        let mut tape = Tape::new();
        let a = tape.param(&param);
        let b = tape.param(&param);
        let s = tape.add(a, b);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        let collected = collect_param_grads(&tape, &grads);
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].1.get(0, 0), 2.0);
    }

    #[test]
    fn gradient_clipping_limits_update_magnitude() {
        let param = Param::new("w", Matrix::full(1, 1, 0.0));
        let mut opt = AdamW::new(1.0)
            .with_weight_decay(0.0)
            .with_max_grad_norm(Some(0.001));
        let mut tape = Tape::new();
        let w = tape.param(&param);
        let huge = tape.scale(w, 1e6);
        let shifted = tape.add_scalar(huge, 1e6);
        let loss = tape.sum_all(shifted);
        let grads = tape.backward(loss);
        opt.step(&tape, &grads);
        // With clipping, a single Adam step is bounded by roughly lr regardless of raw grad,
        // and must be finite.
        assert!(param.value().get(0, 0).is_finite());
    }
}
