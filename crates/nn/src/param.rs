//! Trainable parameters.
//!
//! A [`Param`] is a shared, mutable matrix plus the optimizer state (first/second moment
//! estimates for AdamW). Layers own `Param`s; every forward pass binds the current value
//! into the [`crate::tape::Tape`] as a leaf node, and the optimizer later reads the
//! gradient of that leaf and updates the parameter in place.
//!
//! Storage is `Arc<RwLock<..>>` (not `Rc<RefCell<..>>`) so a model can be *shared across
//! threads* for batch-parallel inference: many rayon workers take concurrent read locks
//! during `embed_all`, while training remains single-writer through the optimizer.

use std::sync::{Arc, RwLock};

use crate::matrix::Matrix;

/// Internal storage of a parameter.
#[derive(Debug)]
pub struct ParamInner {
    /// Current value.
    pub value: Matrix,
    /// First-moment estimate (Adam `m`).
    pub m: Matrix,
    /// Second-moment estimate (Adam `v`).
    pub v: Matrix,
    /// Human-readable name (used in diagnostics).
    pub name: String,
}

/// A shared handle to a trainable parameter.
///
/// Cloning a `Param` clones the handle, not the underlying value: all clones refer to the
/// same storage, so a model can be borrowed immutably during the forward pass while the
/// optimizer later mutates parameters through the same handles.
#[derive(Clone, Debug)]
pub struct Param(Arc<RwLock<ParamInner>>);

impl Param {
    /// Creates a named parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let (r, c) = value.shape();
        Param(Arc::new(RwLock::new(ParamInner {
            value,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            name: name.into(),
        })))
    }

    /// Returns a clone of the current value.
    pub fn value(&self) -> Matrix {
        self.read().value.clone()
    }

    /// Applies a closure to the current value *without cloning it* — the inference fast
    /// path uses this to read large tables (e.g. token embeddings) under a shared lock.
    pub fn with_value<R>(&self, f: impl FnOnce(&Matrix) -> R) -> R {
        f(&self.read().value)
    }

    /// Returns the parameter shape.
    pub fn shape(&self) -> (usize, usize) {
        self.read().value.shape()
    }

    /// Returns the parameter name.
    pub fn name(&self) -> String {
        self.read().name.clone()
    }

    /// Number of scalar elements.
    pub fn num_elements(&self) -> usize {
        self.read().value.len()
    }

    /// Overwrites the value (shape must match).
    pub fn set_value(&self, value: Matrix) {
        let mut inner = self.write();
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "set_value: shape mismatch for parameter {}",
            inner.name
        );
        inner.value = value;
    }

    /// Applies a closure to the mutable inner state (used by optimizers).
    pub fn with_inner_mut<R>(&self, f: impl FnOnce(&mut ParamInner) -> R) -> R {
        f(&mut self.write())
    }

    /// Applies a closure to the inner state.
    pub fn with_inner<R>(&self, f: impl FnOnce(&ParamInner) -> R) -> R {
        f(&self.read())
    }

    /// Stable identity of the underlying storage, used to de-duplicate parameters that are
    /// bound several times in one tape (e.g. a shared embedding table).
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// Returns `true` if two handles refer to the same storage.
    pub fn same_storage(&self, other: &Param) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Perturbs a single element by `delta` (used by the finite-difference gradient checker).
    pub fn nudge(&self, r: usize, c: usize, delta: f32) {
        let mut inner = self.write();
        let v = inner.value.get(r, c);
        inner.value.set(r, c, v + delta);
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, ParamInner> {
        self.0.read().expect("Param lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, ParamInner> {
        self.0.write().expect("Param lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let p = Param::new("w", Matrix::zeros(2, 2));
        let q = p.clone();
        q.nudge(0, 0, 1.5);
        assert_eq!(p.value().get(0, 0), 1.5);
        assert!(p.same_storage(&q));
        assert_eq!(p.id(), q.id());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_value_rejects_shape_change() {
        let p = Param::new("w", Matrix::zeros(2, 2));
        p.set_value(Matrix::zeros(3, 2));
    }

    #[test]
    fn metadata_accessors() {
        let p = Param::new("bias", Matrix::zeros(1, 8));
        assert_eq!(p.name(), "bias");
        assert_eq!(p.shape(), (1, 8));
        assert_eq!(p.num_elements(), 8);
    }
}
