//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records every operation of a forward pass as a node in a flat, topologically
//! ordered vector. Calling [`Tape::backward`] seeds the gradient of a scalar (`1 x 1`) loss
//! node and propagates gradients to every reachable node, returning a [`Gradients`] table.
//!
//! The op set is intentionally small and matched to what the Sudowoodo models need:
//! dense layers, layer normalization, multi-head attention, the SimCLR contrastive loss,
//! the Barlow Twins redundancy-regularization loss, and the pairwise fine-tuning head.
//! Fused ops (`StandardizeRows`, `L2NormalizeRows`, `SoftmaxCrossEntropy`, and the
//! batched masked-attention family `AttentionScores` / `MaskedRowSoftmax` /
//! `AttentionContext` / `MaskedStandardizeRows` / `PaddedSegmentMeanRows`) keep graphs
//! small and their hand-written backward passes are validated against finite differences
//! by the property tests in `tests/gradcheck_props.rs` and the checks in
//! [`crate::gradcheck`].

use crate::matrix::Matrix;
use crate::param::Param;

/// Index of a node in a [`Tape`].
pub type VarId = usize;

/// A recorded operation.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf node (input constant or bound parameter).
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    MatMul(VarId, VarId),
    /// Fused `A * B^T` (similarity-matrix shape) — no transpose is materialized in either
    /// the forward or the backward pass.
    MatMulTransposeB(VarId, VarId),
    Scale(VarId, f32),
    AddScalar(VarId),
    Transpose(VarId),
    Relu(VarId),
    Gelu(VarId),
    Tanh(VarId),
    Sigmoid(VarId),
    Exp(VarId),
    Ln(VarId),
    Pow2(VarId),
    Abs(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    RowSoftmax(VarId),
    /// `x (n x d)` + `b (1 x d)` broadcast over rows.
    AddRowBroadcast(VarId, VarId),
    /// `x (n x d)` * `g (1 x d)` broadcast over rows.
    MulRowBroadcast(VarId, VarId),
    ConcatCols(VarId, VarId),
    ConcatRows(VarId, VarId),
    /// Stack many `1 x d` row vectors into an `n x d` matrix.
    StackRows(Vec<VarId>),
    /// Gather rows of the parent by index (embedding lookup). Gradient scatter-adds.
    GatherRows(VarId, Vec<usize>),
    SliceCols(VarId, usize, usize),
    /// Mean over rows: `n x d -> 1 x d`.
    MeanRows(VarId),
    /// Per-segment mean over consecutive row blocks: rows are split into segments of the
    /// given lengths and each segment pools to one output row (batched mean pooling).
    /// Empty segments pool to the zero row.
    SegmentMeanRows(VarId, Vec<usize>),
    /// Per-row standardization `(x - mean) / sqrt(var + eps)` (LayerNorm core).
    StandardizeRows(VarId, f32),
    /// Per-row L2 normalization.
    L2NormalizeRows(VarId),
    /// Mean negative log-likelihood of a row-wise softmax against integer targets.
    SoftmaxCrossEntropy(VarId, Vec<usize>),
    /// Batched multi-head attention scores `scale * Q_bh * K_bh^T` over every
    /// `(sequence, head)` tile of a packed `[batch*seq, dim]` row-block (see
    /// [`attention_scores`]).
    AttentionScores {
        /// Packed queries, `[batch*seq, dim]`.
        q: VarId,
        /// Packed keys, `[batch*seq, dim]`.
        k: VarId,
        /// Number of attention heads.
        heads: usize,
        /// Padded per-sequence length.
        seq: usize,
        /// Score scale (`1/sqrt(head_dim)`).
        scale: f32,
    },
    /// Row softmax over a valid prefix of each row (see [`Tape::masked_row_softmax`]);
    /// the masked suffix behaves as an additive `-inf` padding mask (weight exactly 0,
    /// zero gradient). The valid counts are consumed by the forward pass only — the
    /// backward formula needs just the output, whose masked entries are already zero.
    MaskedRowSoftmax(VarId),
    /// Batched attention application `attn_bh * V_bh` over every `(sequence, head)` tile,
    /// producing the packed `[batch*seq, dim]` context (see [`attention_context`]).
    AttentionContext {
        /// Attention weights, `[batch*heads*seq, seq]`.
        attn: VarId,
        /// Packed values, `[batch*seq, dim]`.
        v: VarId,
        /// Number of attention heads.
        heads: usize,
        /// Padded per-sequence length.
        seq: usize,
    },
    /// Per-row standardization that skips padding rows: rows flagged `false` are forced to
    /// zero in the forward pass and receive zero gradient.
    MaskedStandardizeRows(VarId, f32, Vec<bool>),
    /// Mean pooling over the leading `lens[b]` rows of each fixed-stride `max_len` row
    /// block: `[batch*max_len, d] -> [batch, d]`. Padding rows are excluded; empty
    /// sequences pool to the zero row.
    PaddedSegmentMeanRows(VarId, Vec<usize>, usize),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`]. Indexed by [`VarId`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss with respect to node `id`, if the node influenced the loss.
    pub fn get(&self, id: VarId) -> Option<&Matrix> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Gradient of `id`, or a zero matrix of the given shape when unreachable.
    pub fn get_or_zeros(&self, id: VarId, rows: usize, cols: usize) -> Matrix {
        self.get(id)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(rows, cols))
    }
}

/// The autodiff tape. Create one per forward/backward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// `(leaf node, parameter)` bindings recorded by [`Tape::param`].
    bindings: Vec<(VarId, Param)>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value held by node `id`.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id].value
    }

    /// Scalar value of a `1 x 1` node.
    pub fn scalar(&self, id: VarId) -> f32 {
        let v = self.value(id);
        assert_eq!(v.shape(), (1, 1), "scalar: node {} is not 1x1", id);
        v.get(0, 0)
    }

    /// Parameter bindings recorded so far (leaf id, parameter handle).
    pub fn bindings(&self) -> &[(VarId, Param)] {
        &self.bindings
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        let id = self.nodes.len();
        self.nodes.push(Node { value, op });
        id
    }

    /// Records a constant leaf (no gradient will be requested for it by optimizers).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Leaf)
    }

    /// Binds a trainable parameter as a leaf and remembers the binding so that an optimizer
    /// can later collect its gradient.
    pub fn param(&mut self, param: &Param) -> VarId {
        let id = self.push(param.value(), Op::Leaf);
        self.bindings.push((id, param.clone()));
        id
    }

    // ---- element-wise and linear-algebra ops -------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Fused product `a * b^T` without materializing the transpose — the shape of the
    /// SimCLR / Barlow Twins similarity matrices and of attention scores. `a` and `b` may
    /// be the same node (e.g. `Z * Z^T`); gradients accumulate through both roles.
    pub fn matmul_transpose_b(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul_transpose_b(self.value(b));
        self.push(v, Op::MatMulTransposeB(a, b))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Addition of a scalar constant to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    // ---- activations ---------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Gaussian error linear unit (tanh approximation, vectorized via [`gelu_slice`]).
    pub fn gelu(&mut self, a: VarId) -> VarId {
        let mut v = self.value(a).clone();
        gelu_slice(v.data_mut());
        self.push(v, Op::Gelu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::exp);
        self.push(v, Op::Exp(a))
    }

    /// Element-wise natural logarithm (inputs are clamped to `1e-12` for stability).
    pub fn ln(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(1e-12).ln());
        self.push(v, Op::Ln(a))
    }

    /// Element-wise square.
    pub fn pow2(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Pow2(a))
    }

    /// Element-wise absolute value.
    pub fn abs(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::abs);
        self.push(v, Op::Abs(a))
    }

    // ---- reductions ------------------------------------------------------------------------

    /// Sum of every element, as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of every element, as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Mean over rows: `n x d -> 1 x d`.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let v = self.value(a).mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Per-segment mean pooling: the rows of `a` are split into consecutive segments of
    /// `lens[i]` rows and each segment averages into output row `i` (`sum(lens) x d ->
    /// lens.len() x d`). Empty segments produce the zero row. This is the batched
    /// equivalent of one [`Tape::mean_rows`] per item at `O(total * d)` cost — no dense
    /// pooling matrix, no gradient computed for one.
    ///
    /// # Panics
    /// Panics when `lens` does not sum to the row count of `a`.
    pub fn segment_mean_rows(&mut self, a: VarId, lens: &[usize]) -> VarId {
        let av = self.value(a);
        assert_eq!(
            lens.iter().sum::<usize>(),
            av.rows(),
            "segment_mean_rows: segment lengths must sum to the row count"
        );
        let mut out = Matrix::zeros(lens.len(), av.cols());
        let mut offset = 0;
        for (i, &len) in lens.iter().enumerate() {
            if len > 0 {
                let inv = 1.0 / len as f32;
                for t in offset..offset + len {
                    let src = av.row(t);
                    for (o, &v) in out.row_mut(i).iter_mut().zip(src.iter()) {
                        *o += v * inv;
                    }
                }
            }
            offset += len;
        }
        self.push(out, Op::SegmentMeanRows(a, lens.to_vec()))
    }

    // ---- structured / fused ops --------------------------------------------------------------

    /// Row-wise softmax.
    pub fn row_softmax(&mut self, a: VarId) -> VarId {
        let v = row_softmax(self.value(a));
        self.push(v, Op::RowSoftmax(a))
    }

    /// Adds a `1 x d` row vector to every row of an `n x d` matrix.
    pub fn add_row_broadcast(&mut self, x: VarId, bias: VarId) -> VarId {
        let out = self.value(x).add_row_broadcast(self.value(bias));
        self.push(out, Op::AddRowBroadcast(x, bias))
    }

    /// Multiplies every row of an `n x d` matrix element-wise by a `1 x d` row vector.
    pub fn mul_row_broadcast(&mut self, x: VarId, gain: VarId) -> VarId {
        let out = self.value(x).mul_row_broadcast(self.value(gain));
        self.push(out, Op::MulRowBroadcast(x, gain))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let v = Matrix::hstack(&[self.value(a), self.value(b)]);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Vertical concatenation (stacking `b` below `a`).
    pub fn concat_rows(&mut self, a: VarId, b: VarId) -> VarId {
        let v = Matrix::vstack(&[self.value(a), self.value(b)]);
        self.push(v, Op::ConcatRows(a, b))
    }

    /// Stacks many `1 x d` row vectors into an `n x d` matrix.
    pub fn stack_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "stack_rows: empty input");
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        for m in &mats {
            assert_eq!(m.rows(), 1, "stack_rows: every part must be 1 x d");
        }
        let v = Matrix::vstack(&mats);
        self.push(v, Op::StackRows(parts.to_vec()))
    }

    /// Gathers rows of `a` by index (embedding lookup). Gradients scatter-add.
    pub fn gather_rows(&mut self, a: VarId, indices: &[usize]) -> VarId {
        let v = self.value(a).gather_rows(indices);
        self.push(v, Op::GatherRows(a, indices.to_vec()))
    }

    /// Selects the column range `[start, end)`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let v = self.value(a).slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Per-row standardization `(x - mean) / sqrt(var + eps)` (the core of LayerNorm).
    pub fn standardize_rows(&mut self, a: VarId, eps: f32) -> VarId {
        let v = standardize_rows(self.value(a), eps);
        self.push(v, Op::StandardizeRows(a, eps))
    }

    /// Per-row L2 normalization.
    pub fn l2_normalize_rows(&mut self, a: VarId) -> VarId {
        let v = self.value(a).l2_normalize_rows();
        self.push(v, Op::L2NormalizeRows(a))
    }

    /// Mean softmax cross-entropy of `logits` (`n x k`) against integer `targets`.
    ///
    /// # Panics
    /// Panics when `targets.len() != logits.rows()` or a target is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, targets: &[usize]) -> VarId {
        let lm = self.value(logits);
        assert_eq!(
            lm.rows(),
            targets.len(),
            "softmax_cross_entropy: target count mismatch"
        );
        let probs = row_softmax(lm);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                t < lm.cols(),
                "softmax_cross_entropy: target {} out of range",
                t
            );
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len() as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::SoftmaxCrossEntropy(logits, targets.to_vec()))
    }

    // ---- batched masked attention ops ----------------------------------------------------

    /// Batched multi-head attention scores: `q` and `k` are packed `[batch*seq, dim]`
    /// row-blocks and the result stacks the `seq x seq` tile `scale * Q_bh * K_bh^T` of
    /// every `(sequence, head)` pair into a `[batch*heads*seq, seq]` matrix (tile `(b, h)`
    /// starts at row `(b*heads + h) * seq`). Each tile goes through the fused
    /// [`Matrix::matmul_transpose_b`] GEMM kernel.
    ///
    /// # Panics
    /// Panics when the shapes of `q` and `k` differ, when their row count is not a
    /// multiple of `seq`, or when their width is not divisible by `heads`.
    pub fn attention_scores(
        &mut self,
        q: VarId,
        k: VarId,
        heads: usize,
        seq: usize,
        scale: f32,
    ) -> VarId {
        let v = attention_scores(self.value(q), self.value(k), heads, seq, scale);
        self.push(
            v,
            Op::AttentionScores {
                q,
                k,
                heads,
                seq,
                scale,
            },
        )
    }

    /// Masked row softmax: softmax over the leading `valid[r]` columns of row `r`, zeros
    /// elsewhere. Equivalent to `row_softmax(x + M)` with an additive mask `M` holding
    /// `-inf` on the padding suffix of each row, without materializing `M` or producing
    /// NaN for fully masked rows (those yield the all-zero row and zero gradient).
    ///
    /// # Panics
    /// Panics when `valid.len()` differs from the row count or a count exceeds the width.
    pub fn masked_row_softmax(&mut self, a: VarId, valid: &[usize]) -> VarId {
        let v = masked_row_softmax(self.value(a), valid);
        self.push(v, Op::MaskedRowSoftmax(a))
    }

    /// Batched attention application: `attn` stacks `[batch*heads*seq, seq]` attention
    /// tiles (the layout produced by [`Tape::attention_scores`]) and `v` is the packed
    /// `[batch*seq, dim]` value block; the result packs `attn_bh * V_bh` of every tile
    /// back into `[batch*seq, dim]`.
    ///
    /// # Panics
    /// Panics when the tile layout of `attn` is inconsistent with `v`, `heads`, and `seq`.
    pub fn attention_context(&mut self, attn: VarId, v: VarId, heads: usize, seq: usize) -> VarId {
        let out = attention_context(self.value(attn), self.value(v), heads, seq);
        self.push(
            out,
            Op::AttentionContext {
                attn,
                v,
                heads,
                seq,
            },
        )
    }

    /// Per-row standardization that is aware of padding rows: rows flagged `true` in
    /// `valid` are standardized exactly like [`Tape::standardize_rows`]; rows flagged
    /// `false` are forced to zero and receive zero gradient.
    ///
    /// # Panics
    /// Panics when `valid.len()` differs from the row count of `a`.
    pub fn masked_standardize_rows(&mut self, a: VarId, eps: f32, valid: &[bool]) -> VarId {
        let v = masked_standardize_rows(self.value(a), eps, valid);
        self.push(v, Op::MaskedStandardizeRows(a, eps, valid.to_vec()))
    }

    /// Padding-aware segment mean pooling: the rows of `a` are fixed-stride `max_len`
    /// blocks of `lens.len()` packed sequences, and output row `b` averages the leading
    /// `lens[b]` rows of block `b` (`[batch*max_len, d] -> [batch, d]`). Padding rows are
    /// excluded from the mean and receive zero gradient; empty sequences pool to the zero
    /// row, matching [`Tape::segment_mean_rows`] on an empty segment.
    ///
    /// # Panics
    /// Panics when `a` does not have `lens.len() * max_len` rows or any `lens[b]` exceeds
    /// `max_len`.
    pub fn padded_segment_mean_rows(&mut self, a: VarId, lens: &[usize], max_len: usize) -> VarId {
        let v = padded_segment_mean_rows(self.value(a), lens, max_len);
        self.push(v, Op::PaddedSegmentMeanRows(a, lens.to_vec(), max_len))
    }

    // ---- backward pass --------------------------------------------------------------------

    /// Propagates gradients from the scalar node `loss` back to every reachable node.
    ///
    /// # Panics
    /// Panics when `loss` is not a `1 x 1` node.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss node must be a 1x1 scalar"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for id in (0..=loss).rev() {
            let grad = match grads[id].take() {
                Some(g) => g,
                None => continue,
            };
            self.accumulate_parents(id, &grad, &mut grads);
            grads[id] = Some(grad);
        }
        Gradients { grads }
    }

    fn accumulate_parents(&self, id: VarId, grad: &Matrix, grads: &mut [Option<Matrix>]) {
        let node = &self.nodes[id];
        let add_to = |grads: &mut [Option<Matrix>], pid: VarId, delta: Matrix| match &mut grads[pid]
        {
            Some(existing) => existing.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        };
        // In-place accumulation `grads[pid] += s * src`: the common ops (Add, Sub, Scale,
        // broadcasts) reuse the existing gradient buffer instead of allocating per op.
        let add_scaled_to = |grads: &mut [Option<Matrix>], pid: VarId, src: &Matrix, s: f32| {
            match &mut grads[pid] {
                Some(existing) => existing.add_scaled(src, s),
                slot @ None => *slot = Some(if s == 1.0 { src.clone() } else { src.scale(s) }),
            }
        };
        // In-place fused accumulation `grads[pid] += g ⊙ v` (element-wise products).
        let add_hadamard_to = |grads: &mut [Option<Matrix>], pid: VarId, g: &Matrix, v: &Matrix| {
            match &mut grads[pid] {
                Some(existing) => existing.add_hadamard(g, v),
                slot @ None => *slot = Some(g.hadamard(v)),
            }
        };
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                add_scaled_to(grads, *a, grad, 1.0);
                add_scaled_to(grads, *b, grad, 1.0);
            }
            Op::Sub(a, b) => {
                add_scaled_to(grads, *a, grad, 1.0);
                add_scaled_to(grads, *b, grad, -1.0);
            }
            Op::Mul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                add_hadamard_to(grads, *a, grad, bv);
                add_hadamard_to(grads, *b, grad, av);
            }
            Op::MatMul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                // dA = dC * B^T and dB = A^T * dC through the fused kernels — no transpose
                // is materialized.
                add_to(grads, *a, grad.matmul_transpose_b(bv));
                add_to(grads, *b, av.matmul_transpose_a(grad));
            }
            Op::MatMulTransposeB(a, b) => {
                // C = A * B^T: dA = dC * B, dB = dC^T * A.
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                add_to(grads, *a, grad.matmul(bv));
                add_to(grads, *b, grad.matmul_transpose_a(av));
            }
            Op::Scale(a, s) => add_scaled_to(grads, *a, grad, *s),
            Op::AddScalar(a) => add_scaled_to(grads, *a, grad, 1.0),
            Op::Transpose(a) => add_to(grads, *a, grad.transpose()),
            Op::Relu(a) => {
                let av = &self.nodes[*a].value;
                add_to(
                    grads,
                    *a,
                    grad.zip_map(av, |g, x| if x > 0.0 { g } else { 0.0 }),
                );
            }
            Op::Gelu(a) => {
                let av = &self.nodes[*a].value;
                add_to(grads, *a, grad.zip_map(av, |g, x| g * gelu_grad(x)));
            }
            Op::Tanh(a) => {
                let yv = &node.value;
                add_to(grads, *a, grad.zip_map(yv, |g, y| g * (1.0 - y * y)));
            }
            Op::Sigmoid(a) => {
                let yv = &node.value;
                add_to(grads, *a, grad.zip_map(yv, |g, y| g * y * (1.0 - y)));
            }
            Op::Exp(a) => {
                let yv = &node.value;
                add_hadamard_to(grads, *a, grad, yv);
            }
            Op::Ln(a) => {
                let av = &self.nodes[*a].value;
                add_to(grads, *a, grad.zip_map(av, |g, x| g / x.max(1e-12)));
            }
            Op::Pow2(a) => {
                let av = &self.nodes[*a].value;
                add_to(grads, *a, grad.zip_map(av, |g, x| 2.0 * x * g));
            }
            Op::Abs(a) => {
                let av = &self.nodes[*a].value;
                add_to(
                    grads,
                    *a,
                    grad.zip_map(av, |g, x| if x >= 0.0 { g } else { -g }),
                );
            }
            Op::SumAll(a) => {
                let av = &self.nodes[*a].value;
                let g = grad.get(0, 0);
                add_to(grads, *a, Matrix::full(av.rows(), av.cols(), g));
            }
            Op::MeanAll(a) => {
                let av = &self.nodes[*a].value;
                let g = grad.get(0, 0) / av.len() as f32;
                add_to(grads, *a, Matrix::full(av.rows(), av.cols(), g));
            }
            Op::MeanRows(a) => {
                let av = &self.nodes[*a].value;
                let n = av.rows() as f32;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    for c in 0..av.cols() {
                        out.set(r, c, grad.get(0, c) / n);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::SegmentMeanRows(a, lens) => {
                // Each input row t in segment i receives grad_row(i) / len_i.
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                let mut offset = 0;
                for (i, &len) in lens.iter().enumerate() {
                    if len > 0 {
                        let inv = 1.0 / len as f32;
                        for t in offset..offset + len {
                            for (o, &g) in out.row_mut(t).iter_mut().zip(grad.row(i).iter()) {
                                *o = g * inv;
                            }
                        }
                    }
                    offset += len;
                }
                add_to(grads, *a, out);
            }
            Op::RowSoftmax(a) => {
                // dx = y * (dy - sum_j dy_j y_j) per row
                let y = &node.value;
                let mut out = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(grad.row(r).iter())
                        .map(|(&yy, &gg)| yy * gg)
                        .sum();
                    for c in 0..y.cols() {
                        out.set(r, c, y.get(r, c) * (grad.get(r, c) - dot));
                    }
                }
                add_to(grads, *a, out);
            }
            Op::AddRowBroadcast(x, bias) => {
                add_scaled_to(grads, *x, grad, 1.0);
                let mut bias_grad = Matrix::zeros(1, grad.cols());
                for r in 0..grad.rows() {
                    for c in 0..grad.cols() {
                        let v = bias_grad.get(0, c) + grad.get(r, c);
                        bias_grad.set(0, c, v);
                    }
                }
                add_to(grads, *bias, bias_grad);
            }
            Op::MulRowBroadcast(x, gain) => {
                let xv = &self.nodes[*x].value;
                let gv = &self.nodes[*gain].value;
                let mut x_grad = Matrix::zeros(xv.rows(), xv.cols());
                let mut g_grad = Matrix::zeros(1, xv.cols());
                for r in 0..xv.rows() {
                    for c in 0..xv.cols() {
                        x_grad.set(r, c, grad.get(r, c) * gv.get(0, c));
                        let v = g_grad.get(0, c) + grad.get(r, c) * xv.get(r, c);
                        g_grad.set(0, c, v);
                    }
                }
                add_to(grads, *x, x_grad);
                add_to(grads, *gain, g_grad);
            }
            Op::ConcatCols(a, b) => {
                let a_cols = self.nodes[*a].value.cols();
                add_to(grads, *a, grad.slice_cols(0, a_cols));
                add_to(grads, *b, grad.slice_cols(a_cols, grad.cols()));
            }
            Op::ConcatRows(a, b) => {
                let a_rows = self.nodes[*a].value.rows();
                add_to(grads, *a, grad.slice_rows(0, a_rows));
                add_to(grads, *b, grad.slice_rows(a_rows, grad.rows()));
            }
            Op::StackRows(parents) => {
                for (r, &pid) in parents.iter().enumerate() {
                    add_to(grads, pid, grad.slice_rows(r, r + 1));
                }
            }
            Op::GatherRows(a, indices) => {
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for (i, &idx) in indices.iter().enumerate() {
                    for c in 0..av.cols() {
                        let v = out.get(idx, c) + grad.get(i, c);
                        out.set(idx, c, v);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::SliceCols(a, start, end) => {
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    for (c, col) in (*start..*end).enumerate() {
                        out.set(r, col, grad.get(r, c));
                    }
                }
                add_to(grads, *a, out);
            }
            Op::StandardizeRows(a, eps) => {
                // y = (x - mu) / sigma with sigma = sqrt(var + eps)
                // dx = (dy - mean(dy) - y * mean(dy * y)) / sigma
                let av = &self.nodes[*a].value;
                let y = &node.value;
                let d = av.cols() as f32;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    let mean: f32 = av.row(r).iter().sum::<f32>() / d;
                    let var: f32 = av
                        .row(r)
                        .iter()
                        .map(|x| (x - mean) * (x - mean))
                        .sum::<f32>()
                        / d;
                    let sigma = (var + eps).sqrt();
                    let mean_dy: f32 = grad.row(r).iter().sum::<f32>() / d;
                    let mean_dyy: f32 = grad
                        .row(r)
                        .iter()
                        .zip(y.row(r).iter())
                        .map(|(&g, &yy)| g * yy)
                        .sum::<f32>()
                        / d;
                    for c in 0..av.cols() {
                        let v = (grad.get(r, c) - mean_dy - y.get(r, c) * mean_dyy) / sigma;
                        out.set(r, c, v);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::L2NormalizeRows(a) => {
                // y = x / ||x||; dx = (dy - y * (y . dy)) / ||x||
                let av = &self.nodes[*a].value;
                let y = &node.value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    let norm: f32 = av.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
                    if norm <= 1e-12 {
                        // The forward pass left the row untouched, so it behaved as identity.
                        for c in 0..av.cols() {
                            out.set(r, c, grad.get(r, c));
                        }
                        continue;
                    }
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(grad.row(r).iter())
                        .map(|(&yy, &gg)| yy * gg)
                        .sum();
                    for c in 0..av.cols() {
                        out.set(r, c, (grad.get(r, c) - y.get(r, c) * dot) / norm);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::AttentionScores {
                q,
                k,
                heads,
                seq,
                scale,
            } => {
                // S_bh = scale * Q_bh K_bh^T per tile:
                // dQ_bh = scale * dS_bh K_bh ; dK_bh = scale * dS_bh^T Q_bh.
                let (heads, seq) = (*heads, *seq);
                let qv = &self.nodes[*q].value;
                let kv = &self.nodes[*k].value;
                let batch = qv.rows() / seq;
                let head_dim = qv.cols() / heads;
                let mut dq = Matrix::zeros(qv.rows(), qv.cols());
                let mut dk = Matrix::zeros(kv.rows(), kv.cols());
                // dQ_bh = scale * dS_bh K_bh ; dK_bh = scale * dS_bh^T Q_bh — both as
                // row-wise AXPY accumulation against a scaled (and, for dK, transposed)
                // scratch copy of the dS tile, mirroring the forward kernels.
                let mut srow = vec![0.0f32; seq];
                let mut st = vec![0.0f32; seq * seq];
                for b in 0..batch {
                    for h in 0..heads {
                        let c0 = h * head_dim;
                        let r0 = (b * heads + h) * seq;
                        for t in 0..seq {
                            let g_row = grad.row(r0 + t);
                            for s in 0..seq {
                                let g = g_row[s] * scale;
                                srow[s] = g;
                                st[s * seq + t] = g;
                            }
                            context_row(
                                &srow,
                                kv,
                                b * seq,
                                c0,
                                head_dim,
                                &mut dq.row_mut(b * seq + t)[c0..c0 + head_dim],
                            );
                        }
                        for s in 0..seq {
                            context_row(
                                &st[s * seq..(s + 1) * seq],
                                qv,
                                b * seq,
                                c0,
                                head_dim,
                                &mut dk.row_mut(b * seq + s)[c0..c0 + head_dim],
                            );
                        }
                    }
                }
                add_to(grads, *q, dq);
                add_to(grads, *k, dk);
            }
            Op::MaskedRowSoftmax(a) => {
                // Identical to the RowSoftmax backward: the masked entries of y are exactly
                // zero, so dx = y * (dy - sum_j dy_j y_j) vanishes on the padding suffix
                // (and on fully masked rows) without any extra masking.
                let y = &node.value;
                let mut out = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(grad.row(r).iter())
                        .map(|(&yy, &gg)| yy * gg)
                        .sum();
                    for c in 0..y.cols() {
                        out.set(r, c, y.get(r, c) * (grad.get(r, c) - dot));
                    }
                }
                add_to(grads, *a, out);
            }
            Op::AttentionContext {
                attn,
                v,
                heads,
                seq,
            } => {
                // C_bh = A_bh V_bh per tile: dA_bh = dC_bh V_bh^T ; dV_bh = A_bh^T dC_bh.
                let (heads, seq) = (*heads, *seq);
                let av = &self.nodes[*attn].value;
                let vv = &self.nodes[*v].value;
                let batch = vv.rows() / seq;
                let head_dim = vv.cols() / heads;
                let mut da = Matrix::zeros(av.rows(), av.cols());
                let mut dv = Matrix::zeros(vv.rows(), vv.cols());
                // dA_bh = dC_bh V_bh^T (score-shaped, via the transposed-value pack) and
                // dV_bh = A_bh^T dC_bh (context-shaped, via a transposed attention tile).
                let mut vt = vec![0.0f32; head_dim * seq];
                let mut at = vec![0.0f32; seq * seq];
                for b in 0..batch {
                    for h in 0..heads {
                        let c0 = h * head_dim;
                        let r0 = (b * heads + h) * seq;
                        pack_kt(vv, b * seq, c0, head_dim, seq, 1.0, &mut vt);
                        for t in 0..seq {
                            let g_slice = &grad.row(b * seq + t)[c0..c0 + head_dim];
                            score_row_kt(g_slice, &vt, seq, da.row_mut(r0 + t));
                            let a_row = av.row(r0 + t);
                            for s in 0..seq {
                                at[s * seq + t] = a_row[s];
                            }
                        }
                        for s in 0..seq {
                            context_row(
                                &at[s * seq..(s + 1) * seq],
                                grad,
                                b * seq,
                                c0,
                                head_dim,
                                &mut dv.row_mut(b * seq + s)[c0..c0 + head_dim],
                            );
                        }
                    }
                }
                add_to(grads, *attn, da);
                add_to(grads, *v, dv);
            }
            Op::MaskedStandardizeRows(a, eps, valid) => {
                // Valid rows follow the StandardizeRows backward; padding rows get zero.
                let av = &self.nodes[*a].value;
                let y = &node.value;
                let d = av.cols() as f32;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for (r, &ok) in valid.iter().enumerate() {
                    if !ok {
                        continue;
                    }
                    let mean: f32 = av.row(r).iter().sum::<f32>() / d;
                    let var: f32 = av
                        .row(r)
                        .iter()
                        .map(|x| (x - mean) * (x - mean))
                        .sum::<f32>()
                        / d;
                    let sigma = (var + eps).sqrt();
                    let mean_dy: f32 = grad.row(r).iter().sum::<f32>() / d;
                    let mean_dyy: f32 = grad
                        .row(r)
                        .iter()
                        .zip(y.row(r).iter())
                        .map(|(&g, &yy)| g * yy)
                        .sum::<f32>()
                        / d;
                    for c in 0..av.cols() {
                        let v = (grad.get(r, c) - mean_dy - y.get(r, c) * mean_dyy) / sigma;
                        out.set(r, c, v);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::PaddedSegmentMeanRows(a, lens, max_len) => {
                // Row t < lens[b] of block b receives grad_row(b) / lens[b]; padding rows
                // receive zero.
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for (b, &len) in lens.iter().enumerate() {
                    if len == 0 {
                        continue;
                    }
                    let inv = 1.0 / len as f32;
                    for t in 0..len {
                        for (o, &g) in out
                            .row_mut(b * max_len + t)
                            .iter_mut()
                            .zip(grad.row(b).iter())
                        {
                            *o = g * inv;
                        }
                    }
                }
                add_to(grads, *a, out);
            }
            Op::SoftmaxCrossEntropy(logits, targets) => {
                let lv = &self.nodes[*logits].value;
                let probs = row_softmax(lv);
                let n = targets.len() as f32;
                let upstream = grad.get(0, 0);
                let mut out = probs;
                for (r, &t) in targets.iter().enumerate() {
                    let v = out.get(r, t) - 1.0;
                    out.set(r, t, v);
                }
                add_to(grads, *logits, out.scale(upstream / n));
            }
        }
    }
}

/// Fast hyperbolic tangent: the `tanh(7,6)` Padé approximant, clamped to `±1` where the
/// rational form leaves `(-1, 1)`. Accurate to ~`1e-6` for `|x| < 4` and ~`2e-4` at the
/// clamp boundary — far inside every tolerance used here — and roughly an order of
/// magnitude faster than libm `tanh`, which dominated the encoder forward pass through
/// GELU before this existed.
pub fn fast_tanh(x: f32) -> f32 {
    // Branchless: clamping the input pins the rational form to ±(1 - 3e-7) beyond the
    // saturation point, and lets the surrounding element-wise loops auto-vectorize.
    let x = x.clamp(-4.97, 4.97);
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    p / q
}

/// Fast `e^x` for non-positive inputs (the shifted arguments of a stable softmax):
/// splits `x` into `2^n * 2^f`, reconstructs `2^n` through the exponent bits, and
/// evaluates `2^f` with a degree-5 polynomial. Relative error ~`1e-6`.
fn fast_exp_neg(x: f32) -> f32 {
    debug_assert!(x <= 1e-6, "fast_exp_neg: positive input {x}");
    // Branchless clamp: inputs below -87 underflow to ~2^-125 ≈ 0 instead of branching.
    let x = x.max(-87.0);
    let z = x * std::f32::consts::LOG2_E;
    let zf = z.floor();
    let f = z - zf;
    // Degree-5 minimax fit of 2^f on [0, 1).
    let p = 1.000_000_0
        + f * (0.693_146_06
            + f * (0.240_229_45 + f * (0.055_503_93 + f * (0.009_671_057 + f * 0.001_341_016_4))));
    f32::from_bits(((zf as i32 + 127) << 23) as u32) * p
}

/// GELU activation (tanh approximation, evaluated with [`fast_tanh`]).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Applies [`gelu`] to a slice in place. The element math is branchless, so under the
/// AVX2 code path the whole loop vectorizes (8-wide rational evaluation + `vdivps`) —
/// roughly 4x the baseline-ISA scalar loop. This is the activation map of every batched
/// feed-forward pass.
pub fn gelu_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::matrix::kernels::use_avx2_fma() {
        // SAFETY: feature presence checked above.
        unsafe { gelu_slice_avx2(xs) };
        return;
    }
    for v in xs.iter_mut() {
        *v = gelu(*v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gelu_slice_avx2(xs: &mut [f32]) {
    // Same scalar expression; the target_feature attribute lets LLVM auto-vectorize it
    // with AVX2+FMA (like the GEMM kernels, FMA contraction only changes rounding by
    // making intermediates *more* accurate; every caller goes through this one dispatch,
    // so all forward paths stay mutually consistent).
    for v in xs.iter_mut() {
        *v = gelu(*v);
    }
}

/// Derivative of the GELU tanh approximation (same [`fast_tanh`] as the forward pass, so
/// analytic and finite-difference gradients stay consistent).
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = fast_tanh(u);
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable row-wise softmax over a plain matrix.
pub fn row_softmax(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Forward pass of [`Tape::attention_scores`]: stacks the `seq x seq` tile
/// `scale * Q_bh * K_bh^T` of every `(sequence, head)` pair of the packed `[batch*seq,
/// dim]` inputs into a `[batch*heads*seq, seq]` matrix. Shared by the tape op and the
/// tape-free inference path so the two cannot drift.
///
/// # Panics
/// Panics on inconsistent packing (see [`Tape::attention_scores`]).
pub fn attention_scores(q: &Matrix, k: &Matrix, heads: usize, seq: usize, scale: f32) -> Matrix {
    assert_eq!(q.shape(), k.shape(), "attention_scores: Q/K shape mismatch");
    assert!(seq > 0, "attention_scores: seq must be positive");
    assert!(
        q.rows().is_multiple_of(seq),
        "attention_scores: rows must be a multiple of seq"
    );
    assert!(
        heads > 0 && q.cols().is_multiple_of(heads),
        "attention_scores: width must be divisible by heads"
    );
    let batch = q.rows() / seq;
    let head_dim = q.cols() / heads;
    let mut out = Matrix::zeros(batch * heads * seq, seq);
    let mut kt = vec![0.0f32; head_dim * seq];
    for b in 0..batch {
        for h in 0..heads {
            let c0 = h * head_dim;
            pack_kt(k, b * seq, c0, head_dim, seq, scale, &mut kt);
            for t in 0..seq {
                let q_slice = &q.row(b * seq + t)[c0..c0 + head_dim];
                let dst = out.row_mut((b * heads + h) * seq + t);
                score_row_kt(q_slice, &kt, seq, dst);
            }
        }
    }
    out
}

/// Packs (and pre-scales) the key tile `k[row0..row0+keys][c0..c0+head_dim]` transposed
/// into `kt` (`head_dim` rows of `keys` floats). One transposed copy per tile turns every
/// score row into pure vertical AXPY accumulation — no horizontal reductions, which
/// dominate dot-product kernels at attention's tiny tile widths.
fn pack_kt(
    k: &Matrix,
    row0: usize,
    c0: usize,
    head_dim: usize,
    keys: usize,
    scale: f32,
    kt: &mut [f32],
) {
    for s in 0..keys {
        let src = &k.row(row0 + s)[c0..c0 + head_dim];
        for (j, &v) in src.iter().enumerate() {
            kt[j * keys + s] = v * scale;
        }
    }
}

/// One score row against a packed transposed key tile:
/// `dst[s] = sum_j q_slice[j] * kt[j][s]` via the 4-way k-unrolled AXPY kernel. `dst`
/// must be zeroed by the caller.
fn score_row_kt(q_slice: &[f32], kt: &[f32], keys: usize, dst: &mut [f32]) {
    let head_dim = q_slice.len();
    let mut j = 0;
    while j + 4 <= head_dim {
        crate::matrix::kernels::axpy4(
            dst,
            [q_slice[j], q_slice[j + 1], q_slice[j + 2], q_slice[j + 3]],
            &kt[j * keys..(j + 1) * keys],
            &kt[(j + 1) * keys..(j + 2) * keys],
            &kt[(j + 2) * keys..(j + 3) * keys],
            &kt[(j + 3) * keys..(j + 4) * keys],
        );
        j += 4;
    }
    while j < head_dim {
        crate::matrix::kernels::axpy1(dst, q_slice[j], &kt[j * keys..(j + 1) * keys]);
        j += 1;
    }
}

/// One context row: `dst += sum_s attn[s] * v[row0 + s][c0..c0+head_dim]` through the
/// 4-way k-unrolled AXPY kernel.
fn context_row(attn: &[f32], v: &Matrix, row0: usize, c0: usize, head_dim: usize, dst: &mut [f32]) {
    let seq = attn.len();
    let mut s = 0;
    while s + 4 <= seq {
        let v0 = &v.row(row0 + s)[c0..c0 + head_dim];
        let v1 = &v.row(row0 + s + 1)[c0..c0 + head_dim];
        let v2 = &v.row(row0 + s + 2)[c0..c0 + head_dim];
        let v3 = &v.row(row0 + s + 3)[c0..c0 + head_dim];
        crate::matrix::kernels::axpy4(
            dst,
            [attn[s], attn[s + 1], attn[s + 2], attn[s + 3]],
            v0,
            v1,
            v2,
            v3,
        );
        s += 4;
    }
    while s < seq {
        let vs = &v.row(row0 + s)[c0..c0 + head_dim];
        crate::matrix::kernels::axpy1(dst, attn[s], vs);
        s += 1;
    }
}

/// Forward pass of [`Tape::masked_row_softmax`]: numerically stable softmax over the
/// leading `valid[r]` columns of each row, zeros elsewhere (fully masked rows yield the
/// zero row instead of NaN).
///
/// # Panics
/// Panics when `valid.len() != x.rows()` or a count exceeds the width.
pub fn masked_row_softmax(x: &Matrix, valid: &[usize]) -> Matrix {
    assert_eq!(
        valid.len(),
        x.rows(),
        "masked_row_softmax: one valid count per row required"
    );
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for (r, &n) in valid.iter().enumerate() {
        assert!(
            n <= x.cols(),
            "masked_row_softmax: valid count {} exceeds width {}",
            n,
            x.cols()
        );
        if n == 0 {
            continue;
        }
        softmax_into(&x.row(r)[..n], &mut out.row_mut(r)[..n]);
    }
    out
}

/// Stable softmax of `src` written into `dst` (same length), using the fast exponential —
/// the shifted arguments are never positive by construction.
fn softmax_into(src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
    softmax_in_place(dst);
}

/// Fused tape-free masked multi-head attention: scores, masked softmax, and context of
/// every `(sequence, head)` tile in one pass, with one stack-local score row instead of
/// the two `[batch*heads*seq, seq]` intermediates the tape path must keep for backward.
/// `valid[b]` is the number of real keys of sequence `b` (its leading rows); query rows
/// of an empty sequence produce zero rows. This is what
/// [`crate::layers::MultiHeadSelfAttention::infer_batch`] runs; the composed helpers
/// ([`attention_scores`] → [`masked_row_softmax`] → [`attention_context`]) remain the
/// reference the equivalence tests pin it against.
///
/// # Panics
/// Panics on inconsistent packing, mirroring [`attention_scores`] /
/// [`attention_context`].
pub fn masked_attention_infer(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    heads: usize,
    seq: usize,
    scale: f32,
    valid: &[usize],
) -> Matrix {
    assert_eq!(q.shape(), k.shape(), "masked_attention_infer: Q/K mismatch");
    assert_eq!(q.shape(), v.shape(), "masked_attention_infer: Q/V mismatch");
    let dim = q.cols();
    assert!(seq > 0, "masked_attention_infer: seq must be positive");
    assert!(
        q.rows().is_multiple_of(seq),
        "masked_attention_infer: rows must be a multiple of seq"
    );
    assert!(
        heads > 0 && dim.is_multiple_of(heads),
        "masked_attention_infer: width must be divisible by heads"
    );
    let batch = q.rows() / seq;
    assert_eq!(
        valid.len(),
        batch,
        "masked_attention_infer: one valid-key count per sequence required"
    );
    let head_dim = dim / heads;
    let mut out = Matrix::zeros(q.rows(), dim);
    let mut row = vec![0.0f32; seq];
    let mut kt = vec![0.0f32; head_dim * seq];
    for (b, &count) in valid.iter().enumerate() {
        let n = count.min(seq);
        if n == 0 {
            continue;
        }
        for h in 0..heads {
            let c0 = h * head_dim;
            pack_kt(k, b * seq, c0, head_dim, n, scale, &mut kt[..head_dim * n]);
            for t in 0..seq {
                let q_slice = &q.row(b * seq + t)[c0..c0 + head_dim];
                row[..n].fill(0.0);
                score_row_kt(q_slice, &kt[..head_dim * n], n, &mut row[..n]);
                softmax_in_place(&mut row[..n]);
                context_row(
                    &row[..n],
                    v,
                    b * seq,
                    c0,
                    head_dim,
                    &mut out.row_mut(b * seq + t)[c0..c0 + head_dim],
                );
            }
        }
    }
    out
}

/// In-place stable softmax over a score row.
fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    #[cfg(target_arch = "x86_64")]
    if crate::matrix::kernels::use_avx2_fma() {
        // SAFETY: feature presence checked above.
        unsafe { exp_shift_avx2(row, max) };
        normalize_in_place(row);
        return;
    }
    for v in row.iter_mut() {
        *v = fast_exp_neg(*v - max);
    }
    normalize_in_place(row);
}

/// `row[i] = fast_exp_neg(row[i] - max)`, auto-vectorized under AVX2+FMA (the exponential
/// is branchless: clamp, `vroundps`, polynomial, exponent-bit reconstruction).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp_shift_avx2(row: &mut [f32], max: f32) {
    for v in row.iter_mut() {
        *v = fast_exp_neg(*v - max);
    }
}

/// Divides a row of non-negative weights by their sum.
fn normalize_in_place(row: &mut [f32]) {
    let sum: f32 = row.iter().sum();
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Forward pass of [`Tape::attention_context`]: applies the `[batch*heads*seq, seq]`
/// attention tile stack to the packed `[batch*seq, dim]` values, producing the packed
/// `[batch*seq, dim]` context.
///
/// # Panics
/// Panics on inconsistent packing (see [`Tape::attention_context`]).
pub fn attention_context(attn: &Matrix, v: &Matrix, heads: usize, seq: usize) -> Matrix {
    assert!(seq > 0, "attention_context: seq must be positive");
    assert!(
        v.rows().is_multiple_of(seq),
        "attention_context: value rows must be a multiple of seq"
    );
    assert!(
        heads > 0 && v.cols().is_multiple_of(heads),
        "attention_context: width must be divisible by heads"
    );
    let batch = v.rows() / seq;
    assert_eq!(
        attn.shape(),
        (batch * heads * seq, seq),
        "attention_context: attention tile stack has the wrong shape"
    );
    let head_dim = v.cols() / heads;
    let mut out = Matrix::zeros(v.rows(), v.cols());
    for b in 0..batch {
        for h in 0..heads {
            let c0 = h * head_dim;
            for t in 0..seq {
                let a_row = attn.row((b * heads + h) * seq + t);
                let (dst_row, dst_range) = (b * seq + t, c0..c0 + head_dim);
                context_row(
                    a_row,
                    v,
                    b * seq,
                    c0,
                    head_dim,
                    &mut out.row_mut(dst_row)[dst_range],
                );
            }
        }
    }
    out
}

/// Forward pass of [`Tape::masked_standardize_rows`]: standardizes rows flagged `true`
/// and forces rows flagged `false` to zero.
///
/// # Panics
/// Panics when `valid.len() != x.rows()`.
pub fn masked_standardize_rows(x: &Matrix, eps: f32, valid: &[bool]) -> Matrix {
    assert_eq!(
        valid.len(),
        x.rows(),
        "masked_standardize_rows: one flag per row required"
    );
    let d = x.cols() as f32;
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for (r, &ok) in valid.iter().enumerate() {
        if !ok {
            continue;
        }
        let src = x.row(r);
        let mean: f32 = src.iter().sum::<f32>() / d;
        let var: f32 = src.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
        let sigma = (var + eps).sqrt();
        for (o, &v) in out.row_mut(r).iter_mut().zip(src.iter()) {
            *o = (v - mean) / sigma;
        }
    }
    out
}

/// Forward pass of [`Tape::padded_segment_mean_rows`]: averages the leading `lens[b]`
/// rows of every fixed-stride `max_len` block (`[batch*max_len, d] -> [batch, d]`);
/// empty sequences pool to the zero row.
///
/// # Panics
/// Panics on inconsistent packing (see [`Tape::padded_segment_mean_rows`]).
pub fn padded_segment_mean_rows(x: &Matrix, lens: &[usize], max_len: usize) -> Matrix {
    assert_eq!(
        x.rows(),
        lens.len() * max_len,
        "padded_segment_mean_rows: expected {} blocks of {} rows",
        lens.len(),
        max_len
    );
    let mut out = Matrix::zeros(lens.len(), x.cols());
    for (b, &len) in lens.iter().enumerate() {
        assert!(
            len <= max_len,
            "padded_segment_mean_rows: length {len} exceeds the block stride {max_len}"
        );
        if len == 0 {
            continue;
        }
        let inv = 1.0 / len as f32;
        for t in 0..len {
            let src = x.row(b * max_len + t);
            for (o, &v) in out.row_mut(b).iter_mut().zip(src.iter()) {
                *o += v * inv;
            }
        }
    }
    out
}

/// Per-row standardization used by LayerNorm.
pub fn standardize_rows(x: &Matrix, eps: f32) -> Matrix {
    let d = x.cols() as f32;
    let mut out = x.clone();
    for r in 0..out.rows() {
        let mean: f32 = out.row(r).iter().sum::<f32>() / d;
        let var: f32 = out
            .row(r)
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / d;
        let sigma = (var + eps).sqrt();
        for v in out.row_mut(r) {
            *v = (*v - mean) / sigma;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_tape(f: impl Fn(&mut Tape, VarId) -> VarId, x: Matrix) -> (f32, Matrix) {
        let mut tape = Tape::new();
        let input = tape.constant(x.clone());
        let out = f(&mut tape, input);
        let loss = if tape.value(out).shape() == (1, 1) {
            out
        } else {
            tape.sum_all(out)
        };
        let grads = tape.backward(loss);
        (
            tape.scalar(loss),
            grads.get_or_zeros(input, x.rows(), x.cols()),
        )
    }

    #[test]
    fn add_and_scale_gradients() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let (loss, grad) = scalar_tape(|t, x| t.scale(x, 3.0), x);
        assert!((loss - 30.0).abs() < 1e-5);
        assert!(grad.approx_eq(&Matrix::full(2, 2, 3.0), 1e-6));
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 1.5]]);
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let c = tape.matmul(av, bv);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        // dL/dA = ones * B^T ; dL/dB = A^T * ones
        let ones = Matrix::full(2, 2, 1.0);
        assert!(grads
            .get(av)
            .unwrap()
            .approx_eq(&ones.matmul(&b.transpose()), 1e-5));
        assert!(grads
            .get(bv)
            .unwrap()
            .approx_eq(&a.transpose().matmul(&ones), 1e-5));
    }

    #[test]
    fn fused_transpose_matmul_gradients_match_explicit_graph() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.5, -1.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 1.5]]);

        // Fused: C = A * B^T.
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let c = tape.matmul_transpose_b(av, bv);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);

        // Explicit: C = A * transpose(B).
        let mut ref_tape = Tape::new();
        let ar = ref_tape.constant(a);
        let br = ref_tape.constant(b);
        let bt = ref_tape.transpose(br);
        let cr = ref_tape.matmul(ar, bt);
        let ref_loss = ref_tape.sum_all(cr);
        let ref_grads = ref_tape.backward(ref_loss);

        assert!(tape.value(c).approx_eq(ref_tape.value(cr), 1e-5));
        assert!(grads
            .get(av)
            .unwrap()
            .approx_eq(ref_grads.get(ar).unwrap(), 1e-5));
        assert!(grads
            .get(bv)
            .unwrap()
            .approx_eq(ref_grads.get(br).unwrap(), 1e-5));
    }

    #[test]
    fn fused_transpose_matmul_accumulates_self_similarity_gradient() {
        // C = Z * Z^T with the same node in both roles: gradient must combine both paths.
        let z = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let mut tape = Tape::new();
        let zv = tape.constant(z.clone());
        let c = tape.matmul_transpose_b(zv, zv);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        // d sum(Z Z^T) / dZ = (J + J^T) Z where J is all-ones -> 2 * colsum broadcast.
        let ones = Matrix::full(2, 2, 1.0);
        let expected = ones.matmul(&z).scale(2.0);
        assert!(grads.get(zv).unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn relu_masks_negative_gradients() {
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        let (_, grad) = scalar_tape(|t, x| t.relu(x), x);
        assert_eq!(grad.data(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = row_softmax(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Matrix::from_rows(&[vec![2.0, 0.5, -1.0]]);
        let mut tape = Tape::new();
        let lv = tape.constant(logits.clone());
        let loss = tape.softmax_cross_entropy(lv, &[0]);
        let grads = tape.backward(loss);
        let p = row_softmax(&logits);
        let expected = Matrix::from_rows(&[vec![p.get(0, 0) - 1.0, p.get(0, 1), p.get(0, 2)]]);
        assert!(grads.get(lv).unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn standardize_rows_has_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        let y = standardize_rows(&x, 1e-5);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn l2_normalize_rows_gradient_is_tangent() {
        // Gradient of sum(y) wrt x must be orthogonal to y (projection removes radial part).
        let x = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = tape.l2_normalize_rows(xv);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        let yv = x.l2_normalize_rows();
        let dot: f32 = g.row(0).iter().zip(yv.row(0)).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-5);
    }

    #[test]
    fn segment_mean_rows_matches_per_segment_mean_rows() {
        // Forward and gradient must agree with slicing + mean_rows per segment (the
        // per-row pooling the batched op replaces), including an empty segment.
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![-1.0, 0.5],
        ]);
        let lens = [2usize, 0, 1, 1];

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pooled = tape.segment_mean_rows(xv, &lens);
        assert_eq!(tape.value(pooled).shape(), (4, 2));
        assert_eq!(tape.value(pooled).row(0), &[2.0, 3.0]);
        assert_eq!(tape.value(pooled).row(1), &[0.0, 0.0]); // empty segment
        assert_eq!(tape.value(pooled).row(2), &[5.0, 6.0]);
        let sq = tape.pow2(pooled);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        // d/dx sum((mean)^2): row t in segment i gets 2 * mean_i / len_i.
        assert!((g.row(0)[0] - 2.0).abs() < 1e-6 && (g.row(0)[1] - 3.0).abs() < 1e-6);
        assert_eq!(g.row(2), &[10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "segment lengths must sum")]
    fn segment_mean_rows_rejects_bad_lengths() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(3, 2));
        let _ = tape.segment_mean_rows(x, &[2, 2]);
    }

    #[test]
    fn gather_rows_scatter_adds_gradient() {
        let table = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let mut tape = Tape::new();
        let t = tape.constant(table);
        let g = tape.gather_rows(t, &[1, 1, 2]);
        let loss = tape.sum_all(g);
        let grads = tape.backward(loss);
        let expected = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0], vec![1.0, 1.0]]);
        assert!(grads.get(t).unwrap().approx_eq(&expected, 1e-6));
    }

    #[test]
    fn stack_rows_routes_gradients_to_parts() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = tape.constant(Matrix::row_vector(&[3.0, 4.0]));
        let stacked = tape.stack_rows(&[a, b]);
        let scaled = tape.scale(stacked, 2.0);
        let loss = tape.sum_all(scaled);
        let grads = tape.backward(loss);
        assert!(grads
            .get(a)
            .unwrap()
            .approx_eq(&Matrix::row_vector(&[2.0, 2.0]), 1e-6));
        assert!(grads
            .get(b)
            .unwrap()
            .approx_eq(&Matrix::row_vector(&[2.0, 2.0]), 1e-6));
    }

    #[test]
    fn unreachable_nodes_have_no_gradient() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::row_vector(&[1.0]));
        let b = tape.constant(Matrix::row_vector(&[5.0]));
        let loss = tape.sum_all(a);
        let grads = tape.backward(loss);
        assert!(grads.get(b).is_none());
        assert!(grads.get(a).is_some());
    }

    #[test]
    fn param_binding_is_recorded() {
        let p = Param::new("w", Matrix::row_vector(&[2.0]));
        let mut tape = Tape::new();
        let pv = tape.param(&p);
        let loss = tape.sum_all(pv);
        assert_eq!(tape.bindings().len(), 1);
        let grads = tape.backward(loss);
        assert!(grads.get(pv).is_some());
    }

    #[test]
    #[should_panic(expected = "loss node must be a 1x1 scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::zeros(2, 2));
        let _ = tape.backward(a);
    }
}
