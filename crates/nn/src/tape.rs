//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records every operation of a forward pass as a node in a flat, topologically
//! ordered vector. Calling [`Tape::backward`] seeds the gradient of a scalar (`1 x 1`) loss
//! node and propagates gradients to every reachable node, returning a [`Gradients`] table.
//!
//! The op set is intentionally small and matched to what the Sudowoodo models need:
//! dense layers, layer normalization, multi-head attention, the SimCLR contrastive loss,
//! the Barlow Twins redundancy-regularization loss, and the pairwise fine-tuning head.
//! Fused ops (`StandardizeRows`, `L2NormalizeRows`, `SoftmaxCrossEntropy`) keep graphs
//! small and their hand-written backward passes are validated against finite differences
//! by the property tests in `tests/gradcheck.rs`.

use crate::matrix::Matrix;
use crate::param::Param;

/// Index of a node in a [`Tape`].
pub type VarId = usize;

/// A recorded operation.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf node (input constant or bound parameter).
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    MatMul(VarId, VarId),
    /// Fused `A * B^T` (similarity-matrix shape) — no transpose is materialized in either
    /// the forward or the backward pass.
    MatMulTransposeB(VarId, VarId),
    Scale(VarId, f32),
    AddScalar(VarId),
    Transpose(VarId),
    Relu(VarId),
    Gelu(VarId),
    Tanh(VarId),
    Sigmoid(VarId),
    Exp(VarId),
    Ln(VarId),
    Pow2(VarId),
    Abs(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    RowSoftmax(VarId),
    /// `x (n x d)` + `b (1 x d)` broadcast over rows.
    AddRowBroadcast(VarId, VarId),
    /// `x (n x d)` * `g (1 x d)` broadcast over rows.
    MulRowBroadcast(VarId, VarId),
    ConcatCols(VarId, VarId),
    ConcatRows(VarId, VarId),
    /// Stack many `1 x d` row vectors into an `n x d` matrix.
    StackRows(Vec<VarId>),
    /// Gather rows of the parent by index (embedding lookup). Gradient scatter-adds.
    GatherRows(VarId, Vec<usize>),
    SliceCols(VarId, usize, usize),
    /// Mean over rows: `n x d -> 1 x d`.
    MeanRows(VarId),
    /// Per-segment mean over consecutive row blocks: rows are split into segments of the
    /// given lengths and each segment pools to one output row (batched mean pooling).
    /// Empty segments pool to the zero row.
    SegmentMeanRows(VarId, Vec<usize>),
    /// Per-row standardization `(x - mean) / sqrt(var + eps)` (LayerNorm core).
    StandardizeRows(VarId, f32),
    /// Per-row L2 normalization.
    L2NormalizeRows(VarId),
    /// Mean negative log-likelihood of a row-wise softmax against integer targets.
    SoftmaxCrossEntropy(VarId, Vec<usize>),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`]. Indexed by [`VarId`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss with respect to node `id`, if the node influenced the loss.
    pub fn get(&self, id: VarId) -> Option<&Matrix> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Gradient of `id`, or a zero matrix of the given shape when unreachable.
    pub fn get_or_zeros(&self, id: VarId, rows: usize, cols: usize) -> Matrix {
        self.get(id)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(rows, cols))
    }
}

/// The autodiff tape. Create one per forward/backward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// `(leaf node, parameter)` bindings recorded by [`Tape::param`].
    bindings: Vec<(VarId, Param)>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value held by node `id`.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id].value
    }

    /// Scalar value of a `1 x 1` node.
    pub fn scalar(&self, id: VarId) -> f32 {
        let v = self.value(id);
        assert_eq!(v.shape(), (1, 1), "scalar: node {} is not 1x1", id);
        v.get(0, 0)
    }

    /// Parameter bindings recorded so far (leaf id, parameter handle).
    pub fn bindings(&self) -> &[(VarId, Param)] {
        &self.bindings
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        let id = self.nodes.len();
        self.nodes.push(Node { value, op });
        id
    }

    /// Records a constant leaf (no gradient will be requested for it by optimizers).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Leaf)
    }

    /// Binds a trainable parameter as a leaf and remembers the binding so that an optimizer
    /// can later collect its gradient.
    pub fn param(&mut self, param: &Param) -> VarId {
        let id = self.push(param.value(), Op::Leaf);
        self.bindings.push((id, param.clone()));
        id
    }

    // ---- element-wise and linear-algebra ops -------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Fused product `a * b^T` without materializing the transpose — the shape of the
    /// SimCLR / Barlow Twins similarity matrices and of attention scores. `a` and `b` may
    /// be the same node (e.g. `Z * Z^T`); gradients accumulate through both roles.
    pub fn matmul_transpose_b(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul_transpose_b(self.value(b));
        self.push(v, Op::MatMulTransposeB(a, b))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Addition of a scalar constant to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    // ---- activations ---------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Gaussian error linear unit (tanh approximation).
    pub fn gelu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(gelu);
        self.push(v, Op::Gelu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::exp);
        self.push(v, Op::Exp(a))
    }

    /// Element-wise natural logarithm (inputs are clamped to `1e-12` for stability).
    pub fn ln(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(1e-12).ln());
        self.push(v, Op::Ln(a))
    }

    /// Element-wise square.
    pub fn pow2(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Pow2(a))
    }

    /// Element-wise absolute value.
    pub fn abs(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::abs);
        self.push(v, Op::Abs(a))
    }

    // ---- reductions ------------------------------------------------------------------------

    /// Sum of every element, as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of every element, as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Mean over rows: `n x d -> 1 x d`.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let v = self.value(a).mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Per-segment mean pooling: the rows of `a` are split into consecutive segments of
    /// `lens[i]` rows and each segment averages into output row `i` (`sum(lens) x d ->
    /// lens.len() x d`). Empty segments produce the zero row. This is the batched
    /// equivalent of one [`Tape::mean_rows`] per item at `O(total * d)` cost — no dense
    /// pooling matrix, no gradient computed for one.
    ///
    /// # Panics
    /// Panics when `lens` does not sum to the row count of `a`.
    pub fn segment_mean_rows(&mut self, a: VarId, lens: &[usize]) -> VarId {
        let av = self.value(a);
        assert_eq!(
            lens.iter().sum::<usize>(),
            av.rows(),
            "segment_mean_rows: segment lengths must sum to the row count"
        );
        let mut out = Matrix::zeros(lens.len(), av.cols());
        let mut offset = 0;
        for (i, &len) in lens.iter().enumerate() {
            if len > 0 {
                let inv = 1.0 / len as f32;
                for t in offset..offset + len {
                    let src = av.row(t);
                    for (o, &v) in out.row_mut(i).iter_mut().zip(src.iter()) {
                        *o += v * inv;
                    }
                }
            }
            offset += len;
        }
        self.push(out, Op::SegmentMeanRows(a, lens.to_vec()))
    }

    // ---- structured / fused ops --------------------------------------------------------------

    /// Row-wise softmax.
    pub fn row_softmax(&mut self, a: VarId) -> VarId {
        let v = row_softmax(self.value(a));
        self.push(v, Op::RowSoftmax(a))
    }

    /// Adds a `1 x d` row vector to every row of an `n x d` matrix.
    pub fn add_row_broadcast(&mut self, x: VarId, bias: VarId) -> VarId {
        let out = self.value(x).add_row_broadcast(self.value(bias));
        self.push(out, Op::AddRowBroadcast(x, bias))
    }

    /// Multiplies every row of an `n x d` matrix element-wise by a `1 x d` row vector.
    pub fn mul_row_broadcast(&mut self, x: VarId, gain: VarId) -> VarId {
        let out = self.value(x).mul_row_broadcast(self.value(gain));
        self.push(out, Op::MulRowBroadcast(x, gain))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let v = Matrix::hstack(&[self.value(a), self.value(b)]);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Vertical concatenation (stacking `b` below `a`).
    pub fn concat_rows(&mut self, a: VarId, b: VarId) -> VarId {
        let v = Matrix::vstack(&[self.value(a), self.value(b)]);
        self.push(v, Op::ConcatRows(a, b))
    }

    /// Stacks many `1 x d` row vectors into an `n x d` matrix.
    pub fn stack_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "stack_rows: empty input");
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        for m in &mats {
            assert_eq!(m.rows(), 1, "stack_rows: every part must be 1 x d");
        }
        let v = Matrix::vstack(&mats);
        self.push(v, Op::StackRows(parts.to_vec()))
    }

    /// Gathers rows of `a` by index (embedding lookup). Gradients scatter-add.
    pub fn gather_rows(&mut self, a: VarId, indices: &[usize]) -> VarId {
        let v = self.value(a).gather_rows(indices);
        self.push(v, Op::GatherRows(a, indices.to_vec()))
    }

    /// Selects the column range `[start, end)`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let v = self.value(a).slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Per-row standardization `(x - mean) / sqrt(var + eps)` (the core of LayerNorm).
    pub fn standardize_rows(&mut self, a: VarId, eps: f32) -> VarId {
        let v = standardize_rows(self.value(a), eps);
        self.push(v, Op::StandardizeRows(a, eps))
    }

    /// Per-row L2 normalization.
    pub fn l2_normalize_rows(&mut self, a: VarId) -> VarId {
        let v = self.value(a).l2_normalize_rows();
        self.push(v, Op::L2NormalizeRows(a))
    }

    /// Mean softmax cross-entropy of `logits` (`n x k`) against integer `targets`.
    ///
    /// # Panics
    /// Panics when `targets.len() != logits.rows()` or a target is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, targets: &[usize]) -> VarId {
        let lm = self.value(logits);
        assert_eq!(
            lm.rows(),
            targets.len(),
            "softmax_cross_entropy: target count mismatch"
        );
        let probs = row_softmax(lm);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                t < lm.cols(),
                "softmax_cross_entropy: target {} out of range",
                t
            );
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len() as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::SoftmaxCrossEntropy(logits, targets.to_vec()))
    }

    // ---- backward pass --------------------------------------------------------------------

    /// Propagates gradients from the scalar node `loss` back to every reachable node.
    ///
    /// # Panics
    /// Panics when `loss` is not a `1 x 1` node.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss node must be a 1x1 scalar"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for id in (0..=loss).rev() {
            let grad = match grads[id].take() {
                Some(g) => g,
                None => continue,
            };
            self.accumulate_parents(id, &grad, &mut grads);
            grads[id] = Some(grad);
        }
        Gradients { grads }
    }

    fn accumulate_parents(&self, id: VarId, grad: &Matrix, grads: &mut [Option<Matrix>]) {
        let node = &self.nodes[id];
        let add_to = |grads: &mut [Option<Matrix>], pid: VarId, delta: Matrix| match &mut grads[pid]
        {
            Some(existing) => existing.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        };
        // In-place accumulation `grads[pid] += s * src`: the common ops (Add, Sub, Scale,
        // broadcasts) reuse the existing gradient buffer instead of allocating per op.
        let add_scaled_to = |grads: &mut [Option<Matrix>], pid: VarId, src: &Matrix, s: f32| {
            match &mut grads[pid] {
                Some(existing) => existing.add_scaled(src, s),
                slot @ None => *slot = Some(if s == 1.0 { src.clone() } else { src.scale(s) }),
            }
        };
        // In-place fused accumulation `grads[pid] += g ⊙ v` (element-wise products).
        let add_hadamard_to = |grads: &mut [Option<Matrix>], pid: VarId, g: &Matrix, v: &Matrix| {
            match &mut grads[pid] {
                Some(existing) => existing.add_hadamard(g, v),
                slot @ None => *slot = Some(g.hadamard(v)),
            }
        };
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                add_scaled_to(grads, *a, grad, 1.0);
                add_scaled_to(grads, *b, grad, 1.0);
            }
            Op::Sub(a, b) => {
                add_scaled_to(grads, *a, grad, 1.0);
                add_scaled_to(grads, *b, grad, -1.0);
            }
            Op::Mul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                add_hadamard_to(grads, *a, grad, bv);
                add_hadamard_to(grads, *b, grad, av);
            }
            Op::MatMul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                // dA = dC * B^T and dB = A^T * dC through the fused kernels — no transpose
                // is materialized.
                add_to(grads, *a, grad.matmul_transpose_b(bv));
                add_to(grads, *b, av.matmul_transpose_a(grad));
            }
            Op::MatMulTransposeB(a, b) => {
                // C = A * B^T: dA = dC * B, dB = dC^T * A.
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                add_to(grads, *a, grad.matmul(bv));
                add_to(grads, *b, grad.matmul_transpose_a(av));
            }
            Op::Scale(a, s) => add_scaled_to(grads, *a, grad, *s),
            Op::AddScalar(a) => add_scaled_to(grads, *a, grad, 1.0),
            Op::Transpose(a) => add_to(grads, *a, grad.transpose()),
            Op::Relu(a) => {
                let av = &self.nodes[*a].value;
                add_to(
                    grads,
                    *a,
                    grad.zip_map(av, |g, x| if x > 0.0 { g } else { 0.0 }),
                );
            }
            Op::Gelu(a) => {
                let av = &self.nodes[*a].value;
                add_to(grads, *a, grad.zip_map(av, |g, x| g * gelu_grad(x)));
            }
            Op::Tanh(a) => {
                let yv = &node.value;
                add_to(grads, *a, grad.zip_map(yv, |g, y| g * (1.0 - y * y)));
            }
            Op::Sigmoid(a) => {
                let yv = &node.value;
                add_to(grads, *a, grad.zip_map(yv, |g, y| g * y * (1.0 - y)));
            }
            Op::Exp(a) => {
                let yv = &node.value;
                add_hadamard_to(grads, *a, grad, yv);
            }
            Op::Ln(a) => {
                let av = &self.nodes[*a].value;
                add_to(grads, *a, grad.zip_map(av, |g, x| g / x.max(1e-12)));
            }
            Op::Pow2(a) => {
                let av = &self.nodes[*a].value;
                add_to(grads, *a, grad.zip_map(av, |g, x| 2.0 * x * g));
            }
            Op::Abs(a) => {
                let av = &self.nodes[*a].value;
                add_to(
                    grads,
                    *a,
                    grad.zip_map(av, |g, x| if x >= 0.0 { g } else { -g }),
                );
            }
            Op::SumAll(a) => {
                let av = &self.nodes[*a].value;
                let g = grad.get(0, 0);
                add_to(grads, *a, Matrix::full(av.rows(), av.cols(), g));
            }
            Op::MeanAll(a) => {
                let av = &self.nodes[*a].value;
                let g = grad.get(0, 0) / av.len() as f32;
                add_to(grads, *a, Matrix::full(av.rows(), av.cols(), g));
            }
            Op::MeanRows(a) => {
                let av = &self.nodes[*a].value;
                let n = av.rows() as f32;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    for c in 0..av.cols() {
                        out.set(r, c, grad.get(0, c) / n);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::SegmentMeanRows(a, lens) => {
                // Each input row t in segment i receives grad_row(i) / len_i.
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                let mut offset = 0;
                for (i, &len) in lens.iter().enumerate() {
                    if len > 0 {
                        let inv = 1.0 / len as f32;
                        for t in offset..offset + len {
                            for (o, &g) in out.row_mut(t).iter_mut().zip(grad.row(i).iter()) {
                                *o = g * inv;
                            }
                        }
                    }
                    offset += len;
                }
                add_to(grads, *a, out);
            }
            Op::RowSoftmax(a) => {
                // dx = y * (dy - sum_j dy_j y_j) per row
                let y = &node.value;
                let mut out = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(grad.row(r).iter())
                        .map(|(&yy, &gg)| yy * gg)
                        .sum();
                    for c in 0..y.cols() {
                        out.set(r, c, y.get(r, c) * (grad.get(r, c) - dot));
                    }
                }
                add_to(grads, *a, out);
            }
            Op::AddRowBroadcast(x, bias) => {
                add_scaled_to(grads, *x, grad, 1.0);
                let mut bias_grad = Matrix::zeros(1, grad.cols());
                for r in 0..grad.rows() {
                    for c in 0..grad.cols() {
                        let v = bias_grad.get(0, c) + grad.get(r, c);
                        bias_grad.set(0, c, v);
                    }
                }
                add_to(grads, *bias, bias_grad);
            }
            Op::MulRowBroadcast(x, gain) => {
                let xv = &self.nodes[*x].value;
                let gv = &self.nodes[*gain].value;
                let mut x_grad = Matrix::zeros(xv.rows(), xv.cols());
                let mut g_grad = Matrix::zeros(1, xv.cols());
                for r in 0..xv.rows() {
                    for c in 0..xv.cols() {
                        x_grad.set(r, c, grad.get(r, c) * gv.get(0, c));
                        let v = g_grad.get(0, c) + grad.get(r, c) * xv.get(r, c);
                        g_grad.set(0, c, v);
                    }
                }
                add_to(grads, *x, x_grad);
                add_to(grads, *gain, g_grad);
            }
            Op::ConcatCols(a, b) => {
                let a_cols = self.nodes[*a].value.cols();
                add_to(grads, *a, grad.slice_cols(0, a_cols));
                add_to(grads, *b, grad.slice_cols(a_cols, grad.cols()));
            }
            Op::ConcatRows(a, b) => {
                let a_rows = self.nodes[*a].value.rows();
                add_to(grads, *a, grad.slice_rows(0, a_rows));
                add_to(grads, *b, grad.slice_rows(a_rows, grad.rows()));
            }
            Op::StackRows(parents) => {
                for (r, &pid) in parents.iter().enumerate() {
                    add_to(grads, pid, grad.slice_rows(r, r + 1));
                }
            }
            Op::GatherRows(a, indices) => {
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for (i, &idx) in indices.iter().enumerate() {
                    for c in 0..av.cols() {
                        let v = out.get(idx, c) + grad.get(i, c);
                        out.set(idx, c, v);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::SliceCols(a, start, end) => {
                let av = &self.nodes[*a].value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    for (c, col) in (*start..*end).enumerate() {
                        out.set(r, col, grad.get(r, c));
                    }
                }
                add_to(grads, *a, out);
            }
            Op::StandardizeRows(a, eps) => {
                // y = (x - mu) / sigma with sigma = sqrt(var + eps)
                // dx = (dy - mean(dy) - y * mean(dy * y)) / sigma
                let av = &self.nodes[*a].value;
                let y = &node.value;
                let d = av.cols() as f32;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    let mean: f32 = av.row(r).iter().sum::<f32>() / d;
                    let var: f32 = av
                        .row(r)
                        .iter()
                        .map(|x| (x - mean) * (x - mean))
                        .sum::<f32>()
                        / d;
                    let sigma = (var + eps).sqrt();
                    let mean_dy: f32 = grad.row(r).iter().sum::<f32>() / d;
                    let mean_dyy: f32 = grad
                        .row(r)
                        .iter()
                        .zip(y.row(r).iter())
                        .map(|(&g, &yy)| g * yy)
                        .sum::<f32>()
                        / d;
                    for c in 0..av.cols() {
                        let v = (grad.get(r, c) - mean_dy - y.get(r, c) * mean_dyy) / sigma;
                        out.set(r, c, v);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::L2NormalizeRows(a) => {
                // y = x / ||x||; dx = (dy - y * (y . dy)) / ||x||
                let av = &self.nodes[*a].value;
                let y = &node.value;
                let mut out = Matrix::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    let norm: f32 = av.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
                    if norm <= 1e-12 {
                        // The forward pass left the row untouched, so it behaved as identity.
                        for c in 0..av.cols() {
                            out.set(r, c, grad.get(r, c));
                        }
                        continue;
                    }
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(grad.row(r).iter())
                        .map(|(&yy, &gg)| yy * gg)
                        .sum();
                    for c in 0..av.cols() {
                        out.set(r, c, (grad.get(r, c) - y.get(r, c) * dot) / norm);
                    }
                }
                add_to(grads, *a, out);
            }
            Op::SoftmaxCrossEntropy(logits, targets) => {
                let lv = &self.nodes[*logits].value;
                let probs = row_softmax(lv);
                let n = targets.len() as f32;
                let upstream = grad.get(0, 0);
                let mut out = probs;
                for (r, &t) in targets.iter().enumerate() {
                    let v = out.get(r, t) - 1.0;
                    out.set(r, t, v);
                }
                add_to(grads, *logits, out.scale(upstream / n));
            }
        }
    }
}

/// GELU activation (tanh approximation).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the GELU tanh approximation.
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable row-wise softmax over a plain matrix.
pub fn row_softmax(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Per-row standardization used by LayerNorm.
pub fn standardize_rows(x: &Matrix, eps: f32) -> Matrix {
    let d = x.cols() as f32;
    let mut out = x.clone();
    for r in 0..out.rows() {
        let mean: f32 = out.row(r).iter().sum::<f32>() / d;
        let var: f32 = out
            .row(r)
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / d;
        let sigma = (var + eps).sqrt();
        for v in out.row_mut(r) {
            *v = (*v - mean) / sigma;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_tape(f: impl Fn(&mut Tape, VarId) -> VarId, x: Matrix) -> (f32, Matrix) {
        let mut tape = Tape::new();
        let input = tape.constant(x.clone());
        let out = f(&mut tape, input);
        let loss = if tape.value(out).shape() == (1, 1) {
            out
        } else {
            tape.sum_all(out)
        };
        let grads = tape.backward(loss);
        (
            tape.scalar(loss),
            grads.get_or_zeros(input, x.rows(), x.cols()),
        )
    }

    #[test]
    fn add_and_scale_gradients() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let (loss, grad) = scalar_tape(|t, x| t.scale(x, 3.0), x);
        assert!((loss - 30.0).abs() < 1e-5);
        assert!(grad.approx_eq(&Matrix::full(2, 2, 3.0), 1e-6));
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 1.5]]);
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let c = tape.matmul(av, bv);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        // dL/dA = ones * B^T ; dL/dB = A^T * ones
        let ones = Matrix::full(2, 2, 1.0);
        assert!(grads
            .get(av)
            .unwrap()
            .approx_eq(&ones.matmul(&b.transpose()), 1e-5));
        assert!(grads
            .get(bv)
            .unwrap()
            .approx_eq(&a.transpose().matmul(&ones), 1e-5));
    }

    #[test]
    fn fused_transpose_matmul_gradients_match_explicit_graph() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.5, -1.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 1.5]]);

        // Fused: C = A * B^T.
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let c = tape.matmul_transpose_b(av, bv);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);

        // Explicit: C = A * transpose(B).
        let mut ref_tape = Tape::new();
        let ar = ref_tape.constant(a);
        let br = ref_tape.constant(b);
        let bt = ref_tape.transpose(br);
        let cr = ref_tape.matmul(ar, bt);
        let ref_loss = ref_tape.sum_all(cr);
        let ref_grads = ref_tape.backward(ref_loss);

        assert!(tape.value(c).approx_eq(ref_tape.value(cr), 1e-5));
        assert!(grads
            .get(av)
            .unwrap()
            .approx_eq(ref_grads.get(ar).unwrap(), 1e-5));
        assert!(grads
            .get(bv)
            .unwrap()
            .approx_eq(ref_grads.get(br).unwrap(), 1e-5));
    }

    #[test]
    fn fused_transpose_matmul_accumulates_self_similarity_gradient() {
        // C = Z * Z^T with the same node in both roles: gradient must combine both paths.
        let z = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let mut tape = Tape::new();
        let zv = tape.constant(z.clone());
        let c = tape.matmul_transpose_b(zv, zv);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        // d sum(Z Z^T) / dZ = (J + J^T) Z where J is all-ones -> 2 * colsum broadcast.
        let ones = Matrix::full(2, 2, 1.0);
        let expected = ones.matmul(&z).scale(2.0);
        assert!(grads.get(zv).unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn relu_masks_negative_gradients() {
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        let (_, grad) = scalar_tape(|t, x| t.relu(x), x);
        assert_eq!(grad.data(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = row_softmax(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Matrix::from_rows(&[vec![2.0, 0.5, -1.0]]);
        let mut tape = Tape::new();
        let lv = tape.constant(logits.clone());
        let loss = tape.softmax_cross_entropy(lv, &[0]);
        let grads = tape.backward(loss);
        let p = row_softmax(&logits);
        let expected = Matrix::from_rows(&[vec![p.get(0, 0) - 1.0, p.get(0, 1), p.get(0, 2)]]);
        assert!(grads.get(lv).unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn standardize_rows_has_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        let y = standardize_rows(&x, 1e-5);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn l2_normalize_rows_gradient_is_tangent() {
        // Gradient of sum(y) wrt x must be orthogonal to y (projection removes radial part).
        let x = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = tape.l2_normalize_rows(xv);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        let yv = x.l2_normalize_rows();
        let dot: f32 = g.row(0).iter().zip(yv.row(0)).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-5);
    }

    #[test]
    fn segment_mean_rows_matches_per_segment_mean_rows() {
        // Forward and gradient must agree with slicing + mean_rows per segment (the
        // per-row pooling the batched op replaces), including an empty segment.
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![-1.0, 0.5],
        ]);
        let lens = [2usize, 0, 1, 1];

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pooled = tape.segment_mean_rows(xv, &lens);
        assert_eq!(tape.value(pooled).shape(), (4, 2));
        assert_eq!(tape.value(pooled).row(0), &[2.0, 3.0]);
        assert_eq!(tape.value(pooled).row(1), &[0.0, 0.0]); // empty segment
        assert_eq!(tape.value(pooled).row(2), &[5.0, 6.0]);
        let sq = tape.pow2(pooled);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        // d/dx sum((mean)^2): row t in segment i gets 2 * mean_i / len_i.
        assert!((g.row(0)[0] - 2.0).abs() < 1e-6 && (g.row(0)[1] - 3.0).abs() < 1e-6);
        assert_eq!(g.row(2), &[10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "segment lengths must sum")]
    fn segment_mean_rows_rejects_bad_lengths() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(3, 2));
        let _ = tape.segment_mean_rows(x, &[2, 2]);
    }

    #[test]
    fn gather_rows_scatter_adds_gradient() {
        let table = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let mut tape = Tape::new();
        let t = tape.constant(table);
        let g = tape.gather_rows(t, &[1, 1, 2]);
        let loss = tape.sum_all(g);
        let grads = tape.backward(loss);
        let expected = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0], vec![1.0, 1.0]]);
        assert!(grads.get(t).unwrap().approx_eq(&expected, 1e-6));
    }

    #[test]
    fn stack_rows_routes_gradients_to_parts() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = tape.constant(Matrix::row_vector(&[3.0, 4.0]));
        let stacked = tape.stack_rows(&[a, b]);
        let scaled = tape.scale(stacked, 2.0);
        let loss = tape.sum_all(scaled);
        let grads = tape.backward(loss);
        assert!(grads
            .get(a)
            .unwrap()
            .approx_eq(&Matrix::row_vector(&[2.0, 2.0]), 1e-6));
        assert!(grads
            .get(b)
            .unwrap()
            .approx_eq(&Matrix::row_vector(&[2.0, 2.0]), 1e-6));
    }

    #[test]
    fn unreachable_nodes_have_no_gradient() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::row_vector(&[1.0]));
        let b = tape.constant(Matrix::row_vector(&[5.0]));
        let loss = tape.sum_all(a);
        let grads = tape.backward(loss);
        assert!(grads.get(b).is_none());
        assert!(grads.get(a).is_some());
    }

    #[test]
    fn param_binding_is_recorded() {
        let p = Param::new("w", Matrix::row_vector(&[2.0]));
        let mut tape = Tape::new();
        let pv = tape.param(&p);
        let loss = tape.sum_all(pv);
        assert_eq!(tape.bindings().len(), 1);
        let grads = tape.backward(loss);
        assert!(grads.get(pv).is_some());
    }

    #[test]
    #[should_panic(expected = "loss node must be a 1x1 scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::zeros(2, 2));
        let _ = tape.backward(a);
    }
}
