//! # sudowoodo-nn
//!
//! A small, dependency-free neural-network substrate used by the Sudowoodo reproduction.
//!
//! The paper fine-tunes pre-trained language models (RoBERTa/DistilBERT) with PyTorch;
//! this crate provides the equivalent building blocks implemented from scratch in Rust:
//!
//! * [`matrix::Matrix`] — a dense row-major `f32` matrix, the only tensor type, backed
//!   by register-tiled GEMM microkernels (AVX-512F / AVX2+FMA, detected at runtime, with
//!   a scalar fallback), fused `A·Bᵀ` / `Aᵀ·B` products, and rayon row-band parallelism
//!   above a FLOP threshold. `matmul_naive` is kept as the reference implementation for
//!   the kernel-equivalence property tests.
//! * [`tape::Tape`] — reverse-mode automatic differentiation with a compact op set
//!   (dense algebra, fused transpose matmul, softmax, layer norm, L2 normalization,
//!   softmax cross-entropy); gradient accumulation is in-place.
//! * [`layers`] — `Linear`, `Embedding`, `LayerNorm`, multi-head self-attention,
//!   Transformer blocks, positional embeddings — each with a tape-free, thread-safe
//!   `infer()` fast path for batched inference.
//! * [`optim`] — AdamW (as used in the paper) and SGD.
//! * [`gradcheck`] — finite-difference validation used extensively in tests.
//!
//! The crate is CPU-only. A tape is single-threaded, but parameters are `Arc<RwLock<..>>`
//! so a trained model can serve many inference threads concurrently, and the GEMM kernels
//! fan out across cores on their own above a size threshold.
//!
//! ## Example
//!
//! ```
//! use sudowoodo_nn::matrix::Matrix;
//! use sudowoodo_nn::layers::{Layer, Linear};
//! use sudowoodo_nn::optim::AdamW;
//! use sudowoodo_nn::tape::Tape;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let layer = Linear::new("probe", 4, 1, &mut rng);
//! let mut opt = AdamW::new(0.05);
//! // Learn y = sum(x) from a few synthetic examples.
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let x = tape.constant(Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]));
//!     let target = tape.constant(Matrix::from_rows(&[vec![10.0]]));
//!     let y = layer.forward(&mut tape, x);
//!     let diff = tape.sub(y, target);
//!     let sq = tape.pow2(diff);
//!     let loss = tape.sum_all(sq);
//!     let grads = tape.backward(loss);
//!     opt.step(&tape, &grads);
//! }
//! assert!(layer.params().len() == 2);
//! ```

#![deny(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod matrix;
pub mod optim;
pub mod param;
pub mod tape;

pub use matrix::Matrix;
pub use param::Param;
pub use tape::{Gradients, Tape, VarId};
