//! Data augmentation (DA) operators for serialized data items (Table I of the paper).
//!
//! DA operators generate semantically similar *views* of a data item for contrastive
//! pre-training. All operators work on the serialized token sequence and are aware of the
//! `[COL] attr [VAL] value` structure so that attribute-level operators (`col_shuffle`,
//! `col_del`) move whole attribute spans, while token/span-level operators only touch value
//! tokens (never the `[COL]`/`[VAL]` markers or attribute names).

use rand::seq::SliceRandom;
use rand::Rng;

use sudowoodo_text::serialize::{split_serialized_attributes, COL, VAL};
use sudowoodo_text::tokenize;

/// The augmentation operators supported for Entity Matching (Table I) plus the cell-level
/// operator added for column matching (§V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DaOp {
    /// Sample and delete a token.
    TokenDel,
    /// Sample a token and replace it with a synonym.
    TokenRepl,
    /// Sample two tokens and swap them.
    TokenSwap,
    /// Sample a token and insert a synonym to its right.
    TokenInsert,
    /// Sample and delete a span of tokens.
    SpanDel,
    /// Sample a span of tokens and shuffle their order.
    SpanShuffle,
    /// Choose two attributes and swap their order.
    ColShuffle,
    /// Choose an attribute and drop it entirely.
    ColDel,
    /// Shuffle the order of the column values (column-matching only).
    CellShuffle,
    /// Identity (no augmentation); useful as a control in ablations.
    None,
}

impl DaOp {
    /// All operators applicable to entity-record serializations.
    pub fn entity_ops() -> Vec<DaOp> {
        vec![
            DaOp::TokenDel,
            DaOp::TokenRepl,
            DaOp::TokenSwap,
            DaOp::TokenInsert,
            DaOp::SpanDel,
            DaOp::SpanShuffle,
            DaOp::ColShuffle,
            DaOp::ColDel,
        ]
    }

    /// Operators applicable to column serializations (attribute-level operators removed,
    /// cell shuffling added), per §V-B.
    pub fn column_ops() -> Vec<DaOp> {
        vec![
            DaOp::TokenDel,
            DaOp::TokenRepl,
            DaOp::TokenSwap,
            DaOp::TokenInsert,
            DaOp::SpanDel,
            DaOp::SpanShuffle,
            DaOp::CellShuffle,
        ]
    }

    /// Short name used in experiment reports (matches the paper's notation).
    pub fn name(&self) -> &'static str {
        match self {
            DaOp::TokenDel => "token_del",
            DaOp::TokenRepl => "token_repl",
            DaOp::TokenSwap => "token_swap",
            DaOp::TokenInsert => "token_insert",
            DaOp::SpanDel => "span_del",
            DaOp::SpanShuffle => "span_shuffle",
            DaOp::ColShuffle => "col_shuffle",
            DaOp::ColDel => "col_del",
            DaOp::CellShuffle => "cell_shuffle",
            DaOp::None => "none",
        }
    }
}

/// A tiny built-in synonym dictionary for `token_repl` / `token_insert`.
///
/// The paper relies on external synonym resources; offline we combine a hand-written list of
/// domain abbreviations common in product/publication data with a fallback that samples
/// another token from the same item (which preserves the bag-of-words distribution).
const SYNONYMS: &[(&str, &str)] = &[
    ("deluxe", "dlux"),
    ("dlux", "deluxe"),
    ("immersion", "immers"),
    ("immers", "immersion"),
    ("incorporated", "inc"),
    ("inc", "incorporated"),
    ("corporation", "corp"),
    ("corp", "corporation"),
    ("company", "co"),
    ("co", "company"),
    ("street", "st"),
    ("st", "street"),
    ("avenue", "ave"),
    ("ave", "avenue"),
    ("edition", "ed"),
    ("ed", "edition"),
    ("proceedings", "proc"),
    ("proc", "proceedings"),
    ("journal", "j"),
    ("international", "intl"),
    ("intl", "international"),
    ("conference", "conf"),
    ("conf", "conference"),
    ("and", "&"),
    ("&", "and"),
    ("laboratory", "lab"),
    ("lab", "laboratory"),
    ("department", "dept"),
    ("dept", "department"),
    ("university", "univ"),
    ("univ", "university"),
    ("software", "sw"),
    ("hardware", "hw"),
    ("version", "v"),
    ("grade", "gr"),
];

/// Looks up a synonym for a token; falls back to `None`.
pub fn synonym_of(token: &str) -> Option<&'static str> {
    SYNONYMS.iter().find(|(k, _)| *k == token).map(|(_, v)| *v)
}

/// Applies a DA operator to a serialized data item, producing an augmented serialization.
///
/// The operator never touches `[COL]` / `[VAL]` markers or attribute names, so the result is
/// still a well-formed serialization.
pub fn augment(serialized: &str, op: DaOp, rng: &mut impl Rng) -> String {
    match op {
        DaOp::None => serialized.to_string(),
        DaOp::ColShuffle => col_shuffle(serialized, rng),
        DaOp::ColDel => col_del(serialized, rng),
        DaOp::CellShuffle => cell_shuffle(serialized, rng),
        _ => token_level(serialized, op, rng),
    }
}

/// Applies the same operator twice to obtain two independent augmented views (SimCLR-style).
pub fn augment_pair(serialized: &str, op: DaOp, rng: &mut impl Rng) -> (String, String) {
    (augment(serialized, op, rng), augment(serialized, op, rng))
}

fn is_marker(token: &str) -> bool {
    token.starts_with('[') && token.ends_with(']')
}

/// Positions of value tokens (tokens that are inside a `[VAL] ...` span and not markers).
fn value_positions(tokens: &[String]) -> Vec<usize> {
    let mut positions = Vec::new();
    let mut in_value = false;
    for (i, t) in tokens.iter().enumerate() {
        if t == COL {
            in_value = false;
            continue;
        }
        if t == VAL {
            in_value = true;
            continue;
        }
        if is_marker(t) {
            continue;
        }
        if in_value {
            positions.push(i);
        }
    }
    // Column serializations ("[VAL] v1 [VAL] v2") and plain text have no [COL]; if nothing
    // was collected (e.g. plain text without markers), every non-marker token is fair game.
    if positions.is_empty() {
        return tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !is_marker(t))
            .map(|(i, _)| i)
            .collect();
    }
    positions
}

fn token_level(serialized: &str, op: DaOp, rng: &mut impl Rng) -> String {
    let mut tokens = tokenize(serialized);
    let positions = value_positions(&tokens);
    if positions.is_empty() {
        return tokens.join(" ");
    }
    match op {
        DaOp::TokenDel => {
            let &pos = positions.choose(rng).expect("non-empty");
            tokens.remove(pos);
        }
        DaOp::TokenRepl => {
            let &pos = positions.choose(rng).expect("non-empty");
            let replacement = synonym_of(&tokens[pos])
                .map(|s| s.to_string())
                .unwrap_or_else(|| tokens[*positions.choose(rng).expect("non-empty")].clone());
            tokens[pos] = replacement;
        }
        DaOp::TokenSwap => {
            if positions.len() >= 2 {
                let i = *positions.choose(rng).expect("non-empty");
                let j = *positions.choose(rng).expect("non-empty");
                tokens.swap(i, j);
            }
        }
        DaOp::TokenInsert => {
            let &pos = positions.choose(rng).expect("non-empty");
            let inserted = synonym_of(&tokens[pos])
                .map(|s| s.to_string())
                .unwrap_or_else(|| tokens[pos].clone());
            tokens.insert(pos + 1, inserted);
        }
        DaOp::SpanDel => {
            let span = sample_span(&positions, rng, 0.25);
            // Remove from the back so indices stay valid.
            for &pos in span.iter().rev() {
                tokens.remove(pos);
            }
        }
        DaOp::SpanShuffle => {
            let span = sample_span(&positions, rng, 0.3);
            let mut values: Vec<String> = span.iter().map(|&p| tokens[p].clone()).collect();
            values.shuffle(rng);
            for (slot, value) in span.iter().zip(values) {
                tokens[*slot] = value;
            }
        }
        _ => unreachable!("token_level only handles token/span operators"),
    }
    tokens.join(" ")
}

/// Samples a contiguous run of positions covering roughly `fraction` of the value tokens.
fn sample_span(positions: &[usize], rng: &mut impl Rng, fraction: f32) -> Vec<usize> {
    let span_len = ((positions.len() as f32 * fraction).ceil() as usize).clamp(1, positions.len());
    let start = rng.gen_range(0..=positions.len() - span_len);
    positions[start..start + span_len].to_vec()
}

fn col_shuffle(serialized: &str, rng: &mut impl Rng) -> String {
    let mut attrs = split_serialized_attributes(serialized);
    if attrs.len() >= 2 {
        let i = rng.gen_range(0..attrs.len());
        let j = rng.gen_range(0..attrs.len());
        attrs.swap(i, j);
    }
    join_attributes(&attrs)
}

fn col_del(serialized: &str, rng: &mut impl Rng) -> String {
    let mut attrs = split_serialized_attributes(serialized);
    if attrs.len() >= 2 {
        let i = rng.gen_range(0..attrs.len());
        attrs.remove(i);
    }
    join_attributes(&attrs)
}

fn cell_shuffle(serialized: &str, rng: &mut impl Rng) -> String {
    // Column serialization: "[VAL] v1 ... [VAL] v2 ...". Split on [VAL] and shuffle cells.
    let mut cells: Vec<String> = serialized
        .split(VAL)
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if cells.len() >= 2 {
        cells.shuffle(rng);
    }
    cells
        .iter()
        .map(|c| format!("{VAL} {c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_attributes(attrs: &[(String, String)]) -> String {
    attrs
        .iter()
        .map(|(a, v)| {
            if v.is_empty() {
                format!("{COL} {a} {VAL}")
            } else {
                format!("{COL} {a} {VAL} {v}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sudowoodo_text::serialize::serialize_record;
    use sudowoodo_text::Record;

    fn sample() -> String {
        serialize_record(&Record::from_pairs([
            ("title", "instant immersion spanish deluxe edition"),
            ("manufacturer", "topics entertainment"),
            ("price", "36.11"),
        ]))
    }

    #[test]
    fn every_entity_op_produces_well_formed_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample();
        for op in DaOp::entity_ops() {
            let out = augment(&s, op, &mut rng);
            assert!(!out.is_empty(), "op {:?} produced empty output", op);
            // markers must stay balanced: every [COL] is followed by a [VAL] eventually
            let cols = out.matches("[COL]").count();
            let vals = out.matches("[VAL]").count();
            assert_eq!(cols, vals, "op {:?} broke marker structure: {}", op, out);
        }
    }

    #[test]
    fn token_del_removes_exactly_one_token() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample();
        let before = tokenize(&s).len();
        let after = tokenize(&augment(&s, DaOp::TokenDel, &mut rng)).len();
        assert_eq!(after, before - 1);
    }

    #[test]
    fn token_insert_adds_exactly_one_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample();
        let before = tokenize(&s).len();
        let after = tokenize(&augment(&s, DaOp::TokenInsert, &mut rng)).len();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn col_del_drops_one_attribute() {
        let mut rng = StdRng::seed_from_u64(4);
        let out = augment(&sample(), DaOp::ColDel, &mut rng);
        assert_eq!(out.matches("[COL]").count(), 2);
    }

    #[test]
    fn col_shuffle_preserves_attribute_set() {
        let mut rng = StdRng::seed_from_u64(5);
        let out = augment(&sample(), DaOp::ColShuffle, &mut rng);
        for attr in ["title", "manufacturer", "price"] {
            assert!(out.contains(attr), "missing attribute {attr} in {out}");
        }
    }

    #[test]
    fn markers_and_attribute_names_are_never_deleted_by_token_ops() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = sample();
        for _ in 0..50 {
            let out = augment(&s, DaOp::TokenDel, &mut rng);
            assert!(out.contains("[COL] title [VAL]"));
            assert!(out.contains("[COL] manufacturer [VAL]"));
            assert!(out.contains("[COL] price [VAL]"));
        }
    }

    #[test]
    fn cell_shuffle_preserves_cell_multiset() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = "[VAL] new york [VAL] california [VAL] florida";
        let out = augment(s, DaOp::CellShuffle, &mut rng);
        assert_eq!(out.matches("[VAL]").count(), 3);
        for cell in ["new york", "california", "florida"] {
            assert!(out.contains(cell));
        }
    }

    #[test]
    fn synonym_lookup() {
        assert_eq!(synonym_of("deluxe"), Some("dlux"));
        assert_eq!(synonym_of("unknown-token"), None);
    }

    #[test]
    fn none_op_is_identity_after_tokenization() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = sample();
        assert_eq!(augment(&s, DaOp::None, &mut rng), s);
    }

    #[test]
    fn augment_pair_produces_two_views() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = sample();
        let (a, b) = augment_pair(&s, DaOp::TokenDel, &mut rng);
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn op_names_match_paper() {
        assert_eq!(DaOp::TokenDel.name(), "token_del");
        assert_eq!(DaOp::SpanShuffle.name(), "span_shuffle");
        assert_eq!(DaOp::entity_ops().len(), 8);
        assert_eq!(DaOp::column_ops().len(), 7);
    }
}
