//! # sudowoodo-augment
//!
//! Data augmentation for contrastive pre-training (§IV-A of the paper).
//!
//! Two families of operators:
//!
//! * [`ops`] — string-level DA operators from Table I (`token_del`, `token_repl`,
//!   `token_swap`, `token_insert`, `span_del`, `span_shuffle`, `col_shuffle`, `col_del`)
//!   plus the `cell_shuffle` operator added for column matching. They transform serialized
//!   data items while preserving the `[COL]`/`[VAL]` structure.
//! * [`cutoff`] — embedding-level cutoff operators (token/feature/span cutoff) that zero
//!   parts of the token-embedding matrix, applied batch-wise as in the paper.
//!
//! A pre-training view of a data item is produced by first applying a base DA operator to
//! the serialization and then a batch-wise [`cutoff::CutoffPlan`] to its token embeddings.

#![warn(missing_docs)]

pub mod cutoff;
pub mod ops;

pub use cutoff::{CutoffKind, CutoffPlan};
pub use ops::{augment, augment_pair, DaOp};
