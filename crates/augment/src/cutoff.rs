//! Cutoff data augmentation (§IV-A, Figure 5).
//!
//! Cutoff operators act directly on the *input token-embedding matrix* of the encoder:
//! given a `seq_len x dim` matrix they zero out
//!
//! * **token cutoff** — entire rows (whole tokens),
//! * **feature cutoff** — entire columns (embedding dimensions),
//! * **span cutoff** — a contiguous block of rows.
//!
//! The paper applies cutoff *batch-wise*: the same sampled cut is applied to every item in a
//! batch. Because items have different sequence lengths, a [`CutoffPlan`] samples the cut in
//! relative coordinates once per batch and maps it to each item's length when applied.

use rand::Rng;

use sudowoodo_nn::matrix::Matrix;

/// Which flavour of cutoff to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CutoffKind {
    /// Zero whole token rows.
    Token,
    /// Zero whole feature columns.
    Feature,
    /// Zero a contiguous span of token rows.
    Span,
    /// Do nothing (used when the optimization is ablated).
    None,
}

impl CutoffKind {
    /// Display name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            CutoffKind::Token => "token_cutoff",
            CutoffKind::Feature => "feature_cutoff",
            CutoffKind::Span => "span_cutoff",
            CutoffKind::None => "no_cutoff",
        }
    }
}

/// A batch-wise cutoff decision sampled once and applied to every item of the batch.
#[derive(Clone, Debug)]
pub struct CutoffPlan {
    kind: CutoffKind,
    /// Fraction of tokens/features affected.
    ratio: f32,
    /// Relative start position in `[0, 1)` for token/span cutoff.
    rel_start: f32,
    /// Concrete feature indices for feature cutoff (feature dimension is fixed per model).
    feature_indices: Vec<usize>,
}

impl CutoffPlan {
    /// Samples a plan for a batch.
    ///
    /// `dim` is the embedding dimensionality (needed to pre-sample feature indices);
    /// `ratio` is the `cutoff_ratio` hyper-parameter of Table IV.
    pub fn sample(kind: CutoffKind, ratio: f32, dim: usize, rng: &mut impl Rng) -> Self {
        let ratio = ratio.clamp(0.0, 1.0);
        let rel_start = rng.gen_range(0.0..1.0f32);
        let n_features = ((dim as f32 * ratio).ceil() as usize).min(dim);
        let mut feature_indices = Vec::new();
        if matches!(kind, CutoffKind::Feature) && n_features > 0 {
            // Sample distinct feature indices.
            let mut candidates: Vec<usize> = (0..dim).collect();
            for i in 0..n_features {
                let j = rng.gen_range(i..candidates.len());
                candidates.swap(i, j);
            }
            feature_indices = candidates[..n_features].to_vec();
        }
        CutoffPlan {
            kind,
            ratio,
            rel_start,
            feature_indices,
        }
    }

    /// A plan that never modifies its input.
    pub fn noop() -> Self {
        CutoffPlan {
            kind: CutoffKind::None,
            ratio: 0.0,
            rel_start: 0.0,
            feature_indices: Vec::new(),
        }
    }

    /// The cutoff kind of this plan.
    pub fn kind(&self) -> CutoffKind {
        self.kind
    }

    /// Applies the plan to one item's `seq_len x dim` token-embedding matrix.
    pub fn apply(&self, embeddings: &Matrix) -> Matrix {
        let seq_len = embeddings.rows();
        let dim = embeddings.cols();
        if seq_len == 0 || dim == 0 {
            return embeddings.clone();
        }
        match self.kind {
            CutoffKind::None => embeddings.clone(),
            CutoffKind::Token => {
                let n = ((seq_len as f32 * self.ratio).ceil() as usize).clamp(0, seq_len);
                if n == 0 {
                    return embeddings.clone();
                }
                let mut out = embeddings.clone();
                // Zero `n` rows starting at the relative position, wrapping around so the
                // same relative decision affects every item in the batch.
                let start = (self.rel_start * seq_len as f32) as usize % seq_len;
                for k in 0..n {
                    let row = (start + k * seq_len / n.max(1)) % seq_len;
                    for v in out.row_mut(row) {
                        *v = 0.0;
                    }
                }
                out
            }
            CutoffKind::Span => {
                let n = ((seq_len as f32 * self.ratio).ceil() as usize).clamp(1, seq_len);
                let start = ((self.rel_start * (seq_len - n + 1) as f32) as usize).min(seq_len - n);
                let mut out = embeddings.clone();
                for row in start..start + n {
                    for v in out.row_mut(row) {
                        *v = 0.0;
                    }
                }
                out
            }
            CutoffKind::Feature => {
                let mut out = embeddings.clone();
                for &c in &self.feature_indices {
                    if c >= dim {
                        continue;
                    }
                    for r in 0..seq_len {
                        out.set(r, c, 0.0);
                    }
                }
                out
            }
        }
    }
}

/// Counts the number of all-zero rows in a matrix (test/diagnostic helper).
pub fn zero_rows(m: &Matrix) -> usize {
    (0..m.rows())
        .filter(|&r| m.row(r).iter().all(|&v| v == 0.0))
        .count()
}

/// Counts the number of all-zero columns in a matrix (test/diagnostic helper).
pub fn zero_cols(m: &Matrix) -> usize {
    (0..m.cols())
        .filter(|&c| (0..m.rows()).all(|r| m.get(r, c) == 0.0))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn non_zero_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| 1.0 + (r * cols + c) as f32)
    }

    #[test]
    fn noop_plan_is_identity() {
        let m = non_zero_matrix(5, 4);
        assert_eq!(CutoffPlan::noop().apply(&m), m);
        assert_eq!(CutoffPlan::noop().kind(), CutoffKind::None);
    }

    #[test]
    fn span_cutoff_zeros_contiguous_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = CutoffPlan::sample(CutoffKind::Span, 0.4, 4, &mut rng);
        let m = non_zero_matrix(10, 4);
        let out = plan.apply(&m);
        let zr = zero_rows(&out);
        assert_eq!(zr, 4, "expected ceil(10*0.4)=4 zero rows, got {zr}");
        // Contiguity: find zero rows and check they are consecutive.
        let zero_idx: Vec<usize> = (0..10)
            .filter(|&r| out.row(r).iter().all(|&v| v == 0.0))
            .collect();
        for pair in zero_idx.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
    }

    #[test]
    fn token_cutoff_zeros_expected_row_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = CutoffPlan::sample(CutoffKind::Token, 0.2, 4, &mut rng);
        let out = plan.apply(&non_zero_matrix(10, 4));
        assert_eq!(zero_rows(&out), 2);
    }

    #[test]
    fn feature_cutoff_zeros_columns_consistently_across_items() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = CutoffPlan::sample(CutoffKind::Feature, 0.25, 8, &mut rng);
        let a = plan.apply(&non_zero_matrix(5, 8));
        let b = plan.apply(&non_zero_matrix(9, 8));
        assert_eq!(zero_cols(&a), 2);
        assert_eq!(zero_cols(&b), 2);
        // Batch-wise consistency: the same columns are zeroed in both items.
        let cols_a: Vec<usize> = (0..8)
            .filter(|&c| (0..5).all(|r| a.get(r, c) == 0.0))
            .collect();
        let cols_b: Vec<usize> = (0..8)
            .filter(|&c| (0..9).all(|r| b.get(r, c) == 0.0))
            .collect();
        assert_eq!(cols_a, cols_b);
    }

    #[test]
    fn zero_ratio_changes_nothing_for_token_cutoff() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = CutoffPlan::sample(CutoffKind::Token, 0.0, 4, &mut rng);
        let m = non_zero_matrix(6, 4);
        assert_eq!(plan.apply(&m), m);
    }

    #[test]
    fn single_row_input_survives_span_cutoff() {
        let mut rng = StdRng::seed_from_u64(5);
        let plan = CutoffPlan::sample(CutoffKind::Span, 0.5, 4, &mut rng);
        let m = non_zero_matrix(1, 4);
        let out = plan.apply(&m);
        assert_eq!(out.shape(), (1, 4));
        assert_eq!(zero_rows(&out), 1);
    }

    #[test]
    fn empty_matrix_is_returned_unchanged() {
        let mut rng = StdRng::seed_from_u64(6);
        let plan = CutoffPlan::sample(CutoffKind::Span, 0.5, 4, &mut rng);
        let m = Matrix::zeros(0, 4);
        assert_eq!(plan.apply(&m).shape(), (0, 4));
    }

    #[test]
    fn kind_names() {
        assert_eq!(CutoffKind::Token.name(), "token_cutoff");
        assert_eq!(CutoffKind::Feature.name(), "feature_cutoff");
        assert_eq!(CutoffKind::Span.name(), "span_cutoff");
        assert_eq!(CutoffKind::None.name(), "no_cutoff");
    }
}
