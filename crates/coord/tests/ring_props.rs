//! Property tests for the consistent-hash placement ring.
//!
//! These pin the two ring properties the distributed design leans on — balance
//! and minimal movement — plus the replica-set invariants failover assumes
//! (distinctness, primary-first prefix stability). Inputs sweep endpoint counts,
//! replication factors, and shard universes; everything is deterministic, so a
//! failure here reproduces exactly.

use sudowoodo_coord::HashRing;

fn endpoints(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{}:7000", i + 1)).collect()
}

/// Every shard gets exactly `min(R, N)` replicas, all distinct, across a sweep of
/// cluster sizes and replication factors.
#[test]
fn every_shard_gets_exactly_r_distinct_endpoints() {
    for n in [1usize, 2, 3, 5, 8] {
        let ring = HashRing::new(&endpoints(n), 64);
        for r in [1usize, 2, 3, 6] {
            let want = r.min(n);
            for shard in 0..200 {
                let reps = ring.replicas(shard, r);
                assert_eq!(reps.len(), want, "n={n} r={r} shard={shard}: got {reps:?}");
                let mut dedup = reps.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(
                    dedup.len(),
                    want,
                    "n={n} r={r} shard={shard}: duplicates in {reps:?}"
                );
                assert!(
                    reps.iter().all(|&e| e < n),
                    "n={n} r={r} shard={shard}: endpoint index out of range in {reps:?}"
                );
            }
        }
    }
}

/// The replica list is prefix-stable in `R`: asking for more replicas never
/// changes who the earlier ones are (so a coordinator raising replication does
/// not reshuffle primaries).
#[test]
fn replica_lists_are_prefix_stable_in_r() {
    let ring = HashRing::new(&endpoints(6), 64);
    for shard in 0..300 {
        let four = ring.replicas(shard, 4);
        for r in 1..4 {
            assert_eq!(ring.replicas(shard, r), four[..r], "shard={shard} r={r}");
        }
    }
}

/// Primary ownership is balanced: over many shards, no endpoint owns more than a
/// small constant multiple of its fair share, and none starves. Swept across
/// several seeds-worth of shard universes (disjoint shard ranges behave like
/// fresh draws because the shard hash is a bijective mix).
#[test]
fn primary_load_is_balanced_within_a_constant_factor() {
    let n = 8;
    let ring = HashRing::new(&endpoints(n), 128);
    for universe in 0u32..4 {
        let shards = 10_000usize;
        let base = universe as usize * shards;
        let mut owned = vec![0usize; n];
        for shard in base..base + shards {
            owned[ring.replicas(shard, 1)[0]] += 1;
        }
        let fair = shards / n;
        let (min, max) = (*owned.iter().min().unwrap(), *owned.iter().max().unwrap());
        assert!(
            max <= fair * 2 && min >= fair / 2,
            "universe {universe}: ownership {owned:?} outside [fair/2, 2*fair] around fair={fair}"
        );
    }
}

/// Removing one endpoint re-places ONLY the shards that listed it: every other
/// shard's replica list is byte-identical, and an affected shard keeps its
/// surviving replicas in order with exactly one new endpoint appended.
#[test]
fn removing_an_endpoint_moves_only_its_own_shards() {
    let n = 6;
    let r = 3;
    let before = HashRing::new(&endpoints(n), 64);
    let removed = 2usize; // kill "10.0.0.3:7000"
    let survivors: Vec<String> = endpoints(n)
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != removed)
        .map(|(_, e)| e)
        .collect();
    let after = HashRing::new(&survivors, 64);

    let mut affected = 0usize;
    let shards = 4_000usize;
    for shard in 0..shards {
        let old: Vec<&str> = before.replica_endpoints(shard, r);
        let new: Vec<&str> = after.replica_endpoints(shard, r);
        if old.iter().all(|&e| e != before.endpoints()[removed]) {
            assert_eq!(old, new, "shard {shard} never listed the removed endpoint");
        } else {
            affected += 1;
            let kept: Vec<&str> = old
                .iter()
                .copied()
                .filter(|&e| e != before.endpoints()[removed])
                .collect();
            assert_eq!(
                &new[..kept.len()],
                &kept[..],
                "shard {shard}: surviving replicas must keep their order ({old:?} -> {new:?})"
            );
            assert_eq!(new.len(), r, "shard {shard}: replication must be restored");
            assert!(
                !kept.contains(&new[r - 1]),
                "shard {shard}: the appended replica must be new ({old:?} -> {new:?})"
            );
        }
    }
    // With R=3 of N=6, ~R/N of shards list any given endpoint; allow slack but
    // insist the movement is a fraction, not the whole placement.
    let expected = shards * r / n;
    assert!(
        affected >= expected / 2 && affected <= expected * 2,
        "affected={affected}, expected around {expected}"
    );
}

/// Adding an endpoint only pulls shards ONTO the new endpoint: any shard whose
/// primary changed must now be owned by the newcomer, and the number of moved
/// primaries is about `shards/N` — consistent hashing's reason to exist.
#[test]
fn adding_an_endpoint_only_steals_primaries_for_itself() {
    let n = 7; // after addition
    let before = HashRing::new(&endpoints(n - 1), 64);
    let after = HashRing::new(&endpoints(n), 64);
    let newcomer = &endpoints(n)[n - 1];

    let shards = 7_000usize;
    let mut moved = 0usize;
    for shard in 0..shards {
        let old = before.replica_endpoints(shard, 1)[0];
        let new = after.replica_endpoints(shard, 1)[0];
        if old != new {
            moved += 1;
            assert_eq!(
                new, newcomer,
                "shard {shard}: a changed primary must be the new endpoint ({old} -> {new})"
            );
        }
    }
    let fair = shards / n;
    assert!(
        moved >= fair / 2 && moved <= fair * 2,
        "moved={moved}, expected around {fair} (1/N of the shards)"
    );
}

/// Placement is a pure function of (membership, virtual nodes): two rings built
/// from the same inputs agree on every shard, which is what lets independent
/// coordinators place shards without talking to each other.
#[test]
fn independent_rings_agree_on_placement() {
    let a = HashRing::new(&endpoints(5), 96);
    let b = HashRing::new(&endpoints(5), 96);
    for shard in 0..1_000 {
        assert_eq!(a.replicas(shard, 2), b.replicas(shard, 2));
    }
}
