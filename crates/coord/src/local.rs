//! An in-process cluster for tests and benches.
//!
//! [`LocalCluster`] spawns `n` [`sudowoodo_serve::Server`]s on loopback ports, all
//! serving one shared index, and hands back their endpoints — the cheapest way to
//! exercise the scatter/gather/failover machinery without managing child
//! processes. It is **not** the production shape: the servers share one
//! [`BlockingIndex`] (one quarantine state, one residency budget), whereas real
//! replicas are separate processes that each cold-load the published snapshot.
//! The distributed test tier (`tests/distributed_equivalence.rs`) covers the real
//! shape with child processes; benches and unit tests use this.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use sudowoodo_index::BlockingIndex;
use sudowoodo_serve::{Server, ServerConfig};

/// A handful of loopback servers over one shared index. Dropping the cluster
/// shuts every server down.
pub struct LocalCluster {
    servers: Vec<Server>,
}

impl LocalCluster {
    /// Spawns `n` servers (OS-assigned ports) sharing `index`.
    pub fn spawn(index: Arc<BlockingIndex>, n: usize) -> io::Result<LocalCluster> {
        Self::spawn_with_config(index, n, ServerConfig::default())
    }

    /// [`LocalCluster::spawn`] with explicit per-server robustness knobs.
    pub fn spawn_with_config(
        index: Arc<BlockingIndex>,
        n: usize,
        config: ServerConfig,
    ) -> io::Result<LocalCluster> {
        assert!(n > 0, "a cluster needs at least one server");
        let mut servers = Vec::with_capacity(n);
        for _ in 0..n {
            servers.push(Server::spawn_with_config(
                Arc::clone(&index),
                "127.0.0.1:0",
                config,
            )?);
        }
        Ok(LocalCluster { servers })
    }

    /// The servers' addresses in spawn order — feed to
    /// [`crate::Coordinator::connect`] as `addr.to_string()`s.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(Server::addr).collect()
    }

    /// [`LocalCluster::addrs`] as the endpoint strings a coordinator takes.
    pub fn endpoints(&self) -> Vec<String> {
        self.servers.iter().map(|s| s.addr().to_string()).collect()
    }

    /// Shuts down and removes the `i`-th server (panics if out of range) —
    /// chaos-test helper for "a replica died".
    pub fn kill(&mut self, i: usize) {
        self.servers.remove(i).shutdown();
    }

    /// Number of servers still running.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when every server has been killed.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}
