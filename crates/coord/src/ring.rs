//! Consistent-hash placement of snapshot shards onto serve endpoints.
//!
//! A [`HashRing`] maps every shard position of a published snapshot to an ordered
//! list of `R` **distinct** endpoints (the shard's replicas, primary first). The
//! ring is the classic consistent-hashing construction with virtual nodes:
//!
//! * Each endpoint contributes `virtual_nodes` points on a `u64` circle, at
//!   `hash("{endpoint}#{vnode}")`. More virtual nodes smooth the load spread
//!   (each endpoint's arc becomes many small arcs scattered around the circle).
//! * A shard hashes to one point; its replicas are the first `R` **distinct**
//!   endpoints encountered walking clockwise from that point.
//!
//! Two properties carry the whole distributed-serving design and are pinned by
//! `tests/ring_props.rs`:
//!
//! * **Balance** — with enough virtual nodes, primary ownership spreads across
//!   endpoints within a small constant factor of perfect balance.
//! * **Minimal movement** — removing an endpoint only re-places the shards it
//!   served (every other shard's replica list is byte-identical), and adding an
//!   endpoint only pulls shards *onto* the new endpoint (a changed primary is
//!   always the new endpoint). Cluster membership changes therefore invalidate
//!   the placement of `~1/N` of the shards, not all of them.
//!
//! The hash is FNV-1a finished through a splitmix64 mix — deterministic across
//! processes and platforms (placement is computed independently by every
//! coordinator; they must all agree), with no dependency on `std`'s randomized
//! `Hasher`.

/// FNV-1a over `bytes`: cheap, deterministic, endian-independent.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: breaks up FNV's weak avalanche on short keys so ring
/// positions of `addr#0`, `addr#1`, … scatter instead of clustering.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Ring position of one named point (an endpoint's virtual node).
fn point_position(endpoint: &str, vnode: usize) -> u64 {
    mix(fnv1a(format!("{endpoint}#{vnode}").as_bytes()))
}

/// Ring position a shard hashes to.
fn shard_position(shard: usize) -> u64 {
    mix(fnv1a(&(shard as u64).to_le_bytes()))
}

/// A consistent-hash ring over serve endpoints. See the module docs.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, endpoint index)` sorted by position (endpoint index breaks the
    /// astronomically unlikely position tie, keeping construction deterministic).
    points: Vec<(u64, usize)>,
    endpoints: Vec<String>,
}

impl HashRing {
    /// Builds a ring where each of `endpoints` owns `virtual_nodes` points.
    ///
    /// # Panics
    /// On an empty endpoint list, `virtual_nodes == 0`, or duplicate endpoints
    /// (two names hashing the same arcs would silently halve effective
    /// replication — a misconfiguration, not a tolerable state).
    pub fn new(endpoints: &[String], virtual_nodes: usize) -> HashRing {
        assert!(
            !endpoints.is_empty(),
            "a hash ring needs at least one endpoint"
        );
        assert!(
            virtual_nodes > 0,
            "a hash ring needs at least one virtual node"
        );
        for (i, e) in endpoints.iter().enumerate() {
            assert!(
                !endpoints[..i].contains(e),
                "duplicate endpoint {e:?} in ring membership"
            );
        }
        let mut points = Vec::with_capacity(endpoints.len() * virtual_nodes);
        for (idx, endpoint) in endpoints.iter().enumerate() {
            for vnode in 0..virtual_nodes {
                points.push((point_position(endpoint, vnode), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            endpoints: endpoints.to_vec(),
        }
    }

    /// The endpoints this ring was built over, in construction order.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// The ordered replica set for `shard`: the first `min(r, endpoints)` distinct
    /// endpoints (as indices into [`HashRing::endpoints`]) walking clockwise from
    /// the shard's ring position. Index 0 is the shard's **primary**.
    pub fn replicas(&self, shard: usize, r: usize) -> Vec<usize> {
        let want = r.min(self.endpoints.len());
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let target = shard_position(shard);
        let start = self.points.partition_point(|&(pos, _)| pos < target);
        for step in 0..self.points.len() {
            let (_, idx) = self.points[(start + step) % self.points.len()];
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// [`HashRing::replicas`] resolved to endpoint names.
    pub fn replica_endpoints(&self, shard: usize, r: usize) -> Vec<&str> {
        self.replicas(shard, r)
            .into_iter()
            .map(|i| self.endpoints[i].as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn replicas_are_distinct_and_primary_first() {
        let ring = HashRing::new(&names(4), 32);
        for shard in 0..64 {
            let reps = ring.replicas(shard, 3);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct: {reps:?}");
            assert_eq!(
                ring.replicas(shard, 1)[0],
                reps[0],
                "primary is prefix-stable"
            );
        }
    }

    #[test]
    fn asking_for_more_replicas_than_endpoints_returns_them_all() {
        let ring = HashRing::new(&names(2), 16);
        for shard in 0..16 {
            let reps = ring.replicas(shard, 5);
            assert_eq!(reps.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_endpoints_are_rejected() {
        let mut eps = names(2);
        eps.push(eps[0].clone());
        HashRing::new(&eps, 8);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = HashRing::new(&names(5), 64);
        let b = HashRing::new(&names(5), 64);
        for shard in 0..256 {
            assert_eq!(a.replicas(shard, 2), b.replicas(shard, 2));
        }
    }
}
