//! The scatter-gather coordinator: one logical `knn_join` over many serve processes.
//!
//! ## How a distributed join works
//!
//! The unit of placement is the **shard position** of the published snapshot —
//! every serve process cold-loads the *same* immutable snapshot (shard order is
//! part of the format), so "shard 7" means the same rows on every endpoint. The
//! coordinator:
//!
//! 1. builds the [`crate::ring::HashRing`] over the cluster's endpoints and
//!    derives each shard's ordered replica list (primary first),
//! 2. **scatters** the whole query batch to each primary as one `KNN_SUBSET`
//!    frame carrying that primary's owned shard positions,
//! 3. **gathers** the per-subset top-k answers and merges them through
//!    [`sudowoodo_index::TopK`] — the *same* bounded-heap selector (same total
//!    order: score descending, id ascending) the in-process join uses.
//!
//! Because the subsets partition the shard set and top-k selection is
//! order-independent, the merged answer is **bit-identical** (ids *and* scores)
//! to a single-process [`sudowoodo_index::BlockingIndex::knn_join`] over the same
//! snapshot — pinned end-to-end by `tests/distributed_equivalence.rs` at the
//! workspace root.
//!
//! ## Failover, and what "degraded" means here
//!
//! Any endpoint can fail mid-batch: connection refused, a torn stream, a read
//! timeout (wedged process), a `BUSY` load-shed, or a server-side quarantine of a
//! shard's storage. The coordinator retries the affected **shards** — not the
//! request — on their surviving replicas, in replica order. The failure *class*
//! decides what happens to the endpoint itself: a transport failure or timeout
//! marks it dead for the rest of this call (later calls re-probe from scratch),
//! but a `BUSY` answer comes from a healthy, responsive process that is load
//! shedding — its shards fail over to the next replica, while the endpoint stays
//! eligible for later shard sets in the same call (distinguished via
//! [`sudowoodo_serve::is_busy`], since an OS read timeout shares the `WouldBlock`
//! error kind). Only when a shard is
//! exhausted (every replica failed or reported the shard uncoverable) does the
//! join degrade: the outcome is still returned, with `degraded = true` and the
//! missing shard positions listed in
//! [`sudowoodo_index::JoinOutcome::quarantined_shards`] — explicitly flagged,
//! never silently wrong. The coordinator holds **no cache**, so a degraded answer
//! can never be replayed as if it were complete; a later call re-probes every
//! failed endpoint from scratch.
//!
//! Server *rejections* (dimension mismatch, shard position out of range —
//! surfaced as [`std::io::ErrorKind::InvalidInput`]) are configuration errors
//! that would fail identically on every replica; they propagate immediately
//! instead of burning the failover budget.
//!
//! ## Model requests are single-endpoint, not scattered
//!
//! `EMBED` and `MATCH` ([`Coordinator::embed`], [`Coordinator::match_pairs`]) do
//! **not** scatter. Scatter-gather works for `KNN` because the index is
//! partitioned by shard and top-k merging is order-independent; a model batch has
//! neither property — every endpoint loads the *same* model snapshot (there is
//! nothing to partition), and splitting a batch across endpoints would move the
//! model's internal chunk boundaries and change low-order `f32` bits, breaking
//! the workspace's bit-identity oracle discipline. So the coordinator sends the
//! whole batch to **one** endpoint and fails over to the next (in endpoint order)
//! on a transport failure or a `BUSY` shed — any replica's answer is
//! bit-identical to any other's.

use std::collections::{BTreeMap, HashSet};
use std::io;

use sudowoodo_index::{JoinOutcome, TopK};
use sudowoodo_serve::{is_busy, ClientConfig, RetryPolicy, ServeClient};

use crate::ring::HashRing;

/// Placement and transport knobs for a [`Coordinator`].
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// Replicas per shard (primary + backups). Capped at the endpoint count.
    pub replication: usize,
    /// Virtual nodes per endpoint on the placement ring; more smooths the load
    /// spread at O(endpoints × virtual_nodes) ring-build cost.
    pub virtual_nodes: usize,
    /// Per-connection transport knobs. The default zeroes `max_retries`: the
    /// coordinator's failover (another replica, immediately) beats the client's
    /// blind retry (same endpoint, after backoff) on every failure it handles.
    pub client: ClientConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            replication: 2,
            virtual_nodes: 64,
            client: ClientConfig {
                retry: RetryPolicy {
                    max_retries: 0,
                    ..RetryPolicy::default()
                },
                ..ClientConfig::default()
            },
        }
    }
}

/// A connected scatter-gather front end over one snapshot-serving cluster.
///
/// See the [module docs](self) for the join and failover semantics, and the crate
/// docs for an end-to-end example.
pub struct Coordinator {
    endpoints: Vec<String>,
    /// `placement[shard]` = ordered replica endpoint indices, primary first.
    placement: Vec<Vec<usize>>,
    /// Lazily (re)dialed connections, index-aligned with `endpoints`. `None` after
    /// a transport failure so the next use re-dials instead of reusing a torn
    /// stream.
    clients: Vec<Option<ServeClient>>,
    config: CoordinatorConfig,
    num_shards: usize,
    len: usize,
    dim: usize,
}

impl Coordinator {
    /// Connects to every endpoint, verifies they all serve the **same snapshot
    /// geometry** (corpus length, dimension, shard count — disagreement means the
    /// cluster is mid-rollout and scatter-gather would merge answers from
    /// different corpora), and computes the shard placement.
    ///
    /// # Errors
    /// Any endpoint unreachable at connect time, or a geometry disagreement
    /// (as [`std::io::ErrorKind::InvalidData`]). Connecting is strict so that
    /// placement starts from a fully-agreeing cluster; individual endpoints are
    /// allowed to die *later* — that is what failover is for.
    pub fn connect(endpoints: &[String], config: CoordinatorConfig) -> io::Result<Coordinator> {
        if endpoints.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a coordinator needs at least one endpoint",
            ));
        }
        if config.replication == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "replication must be at least 1",
            ));
        }
        let mut clients = Vec::with_capacity(endpoints.len());
        let mut geometry: Option<(usize, usize, usize)> = None;
        for endpoint in endpoints {
            let mut client = ServeClient::connect_with_config(endpoint, config.client)?;
            let stats = client.stats()?;
            let this = (
                stats.len as usize,
                stats.dim as usize,
                stats.num_shards as usize,
            );
            match geometry {
                None => geometry = Some(this),
                Some(reference) if reference != this => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "endpoint {endpoint} serves (len, dim, shards) = {this:?} but \
                             {:?} serves {reference:?}; all endpoints must load the same \
                             snapshot before a coordinator can place shards",
                            endpoints[0]
                        ),
                    ));
                }
                Some(_) => {}
            }
            clients.push(Some(client));
        }
        let (len, dim, num_shards) = geometry.expect("endpoints is non-empty");
        let ring = HashRing::new(endpoints, config.virtual_nodes.max(1));
        let placement = (0..num_shards)
            .map(|shard| ring.replicas(shard, config.replication))
            .collect();
        Ok(Coordinator {
            endpoints: endpoints.to_vec(),
            placement,
            clients,
            config,
            num_shards,
            len,
            dim,
        })
    }

    /// The cluster's endpoints, in the order given to [`Coordinator::connect`].
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// `placement()[shard]` is the shard's ordered replica list (endpoint indices,
    /// primary first) — exposed for tests and operational introspection.
    pub fn placement(&self) -> &[Vec<usize>] {
        &self.placement
    }

    /// Shards in the served snapshot.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Rows in the served snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the served snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimension of the served snapshot's vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The distributed form of [`sudowoodo_index::BlockingIndex::knn_join`]:
    /// scatter, gather, merge. Returns the `(query_index, stable_id, score)` pairs
    /// in the same order as every other join in the workspace (query index, then
    /// score descending, id ascending).
    ///
    /// # Errors
    /// Only configuration-class failures (see the module docs); shard loss is not
    /// an error — call [`Coordinator::knn_join_report`] to observe coverage.
    pub fn knn_join(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> io::Result<Vec<(usize, usize, f32)>> {
        self.knn_join_report(queries, k).map(|o| o.pairs)
    }

    /// [`Coordinator::knn_join`] plus explicit coverage: the returned
    /// [`JoinOutcome`] flags `degraded` and lists the shard positions no replica
    /// could serve. The coordinator never caches, so degraded answers are never
    /// replayed.
    pub fn knn_join_report(&mut self, queries: &[Vec<f32>], k: usize) -> io::Result<JoinOutcome> {
        let dim = queries.first().map_or(0, Vec::len);
        if let Some(bad) = queries.iter().position(|q| q.len() != dim) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "query {bad} has dimension {}, expected {dim} (the batch must be \
                     rectangular)",
                    queries[bad].len()
                ),
            ));
        }
        if queries.is_empty() || k == 0 || self.num_shards == 0 {
            return Ok(JoinOutcome::default());
        }

        let mut selectors: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        // Failover state: each shard walks its replica list; an endpoint that fails
        // transport-wise is dead for the rest of THIS call (later calls re-probe).
        let mut attempt = vec![0usize; self.num_shards];
        let mut pending: Vec<usize> = (0..self.num_shards).collect();
        let mut dead: HashSet<usize> = HashSet::new();
        let mut lost: Vec<usize> = Vec::new();

        while !pending.is_empty() {
            // Group the pending shards by the next live replica each would try.
            // BTreeMap keeps the endpoint order deterministic run to run.
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for shard in pending.drain(..) {
                let replicas = &self.placement[shard];
                while attempt[shard] < replicas.len() && dead.contains(&replicas[attempt[shard]]) {
                    attempt[shard] += 1;
                }
                match replicas.get(attempt[shard]) {
                    Some(&endpoint) => groups.entry(endpoint).or_default().push(shard),
                    None => lost.push(shard), // every replica exhausted
                }
            }
            for (endpoint, shards) in groups {
                match self.subset_join_on(endpoint, queries, k, &shards) {
                    Ok((pairs, uncovered)) => {
                        for (q, id, score) in pairs {
                            selectors[q].offer(id, score);
                        }
                        // Shards this replica quarantined may be healthy elsewhere
                        // (quarantine is per-process): fail them over too.
                        for shard in uncovered {
                            attempt[shard] += 1;
                            pending.push(shard);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::InvalidInput => return Err(e),
                    Err(e) if is_busy(&e) => {
                        // A BUSY answer is load shedding by a *healthy, responsive*
                        // process — the opposite of a dead endpoint. Advance these
                        // shards to their next replica (spreading the load), but
                        // leave the endpoint eligible for later shard sets in this
                        // same call: blacklisting it here would let one shed
                        // response knock a live replica out of the whole batch.
                        for &shard in &shards {
                            attempt[shard] += 1;
                        }
                        pending.extend(shards);
                    }
                    Err(_) => {
                        // Transport failure or timeout: the endpoint is out of
                        // this call; its shards retry on surviving replicas.
                        dead.insert(endpoint);
                        pending.extend(shards);
                    }
                }
            }
        }

        let mut pairs = Vec::new();
        for (q, selector) in selectors.into_iter().enumerate() {
            for hit in selector.into_sorted() {
                pairs.push((q, hit.id, hit.score));
            }
        }
        lost.sort_unstable();
        lost.dedup();
        Ok(JoinOutcome {
            pairs,
            degraded: !lost.is_empty(),
            quarantined_shards: lost,
        })
    }

    /// The distributed form of [`sudowoodo_serve::ServeClient::embed`]: the whole
    /// batch goes to one endpoint (see the module docs for why model requests are
    /// never scattered), failing over in endpoint order on transport failures and
    /// `BUSY` sheds. Answers are bit-identical regardless of which replica served.
    ///
    /// # Errors
    /// A server-side rejection ([`std::io::ErrorKind::InvalidInput`] — e.g. the
    /// cluster serves no model) propagates immediately: it would fail identically
    /// on every replica. Otherwise the last failure once every endpoint has been
    /// tried.
    pub fn embed(&mut self, texts: &[String]) -> io::Result<Vec<Vec<f32>>> {
        self.on_any_endpoint(|client| client.embed(texts))
    }

    /// The distributed form of [`sudowoodo_serve::ServeClient::match_pairs`]:
    /// single-endpoint with failover, like [`Coordinator::embed`].
    ///
    /// # Errors
    /// As [`Coordinator::embed`] (a mismatched pair batch cannot arise — the pair
    /// representation is aligned by construction).
    pub fn match_pairs(&mut self, pairs: &[(String, String)]) -> io::Result<Vec<f32>> {
        self.on_any_endpoint(|client| client.match_pairs(pairs))
    }

    /// Runs `call` against the first endpoint that answers, in endpoint order:
    /// the single-endpoint failover loop behind [`Coordinator::embed`] and
    /// [`Coordinator::match_pairs`]. Transport failures drop the connection (the
    /// next use re-dials); `BUSY` leaves it connected; rejections propagate.
    fn on_any_endpoint<T>(
        &mut self,
        mut call: impl FnMut(&mut ServeClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut last_error: Option<io::Error> = None;
        for endpoint in 0..self.endpoints.len() {
            if self.clients[endpoint].is_none() {
                match ServeClient::connect_with_config(
                    self.endpoints[endpoint].as_str(),
                    self.config.client,
                ) {
                    Ok(client) => self.clients[endpoint] = Some(client),
                    Err(e) => {
                        last_error = Some(e);
                        continue;
                    }
                }
            }
            let client = self.clients[endpoint].as_mut().expect("dialed above");
            match call(client) {
                Ok(answer) => return Ok(answer),
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => return Err(e),
                Err(e) => {
                    if !is_busy(&e) {
                        self.clients[endpoint] = None;
                    }
                    last_error = Some(e);
                }
            }
        }
        Err(last_error.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                "no endpoint could serve the model request",
            )
        }))
    }

    /// One subset join against one endpoint, lazily (re)dialing its connection.
    /// Any transport error drops the connection so the next use starts clean (a
    /// timed-out stream may still carry the stale response).
    fn subset_join_on(
        &mut self,
        endpoint: usize,
        queries: &[Vec<f32>],
        k: usize,
        shards: &[usize],
    ) -> io::Result<sudowoodo_serve::protocol::SubsetAnswer> {
        if self.clients[endpoint].is_none() {
            self.clients[endpoint] = Some(ServeClient::connect_with_config(
                self.endpoints[endpoint].as_str(),
                self.config.client,
            )?);
        }
        let client = self.clients[endpoint].as_mut().expect("dialed above");
        let result = client.knn_join_subset(queries, k, shards);
        if let Err(e) = &result {
            // A BUSY answer arrived as a complete, well-framed response — the
            // stream is clean and the endpoint stays connected for re-probing.
            // Rejections (InvalidInput) likewise leave the stream intact. Only
            // transport failures tear the connection down.
            if e.kind() != io::ErrorKind::InvalidInput && !is_busy(e) {
                self.clients[endpoint] = None;
            }
        }
        result
    }
}
