//! # sudowoodo-coord
//!
//! Distributed scatter-gather serving for the Sudowoodo blocking index: a
//! [`Coordinator`] that answers one logical `knn_join` by scattering the query
//! batch across many serve processes and merging their per-shard-subset answers —
//! **bit-identically** to a single-process join over the same snapshot.
//!
//! Three pieces, each documented in depth in its module:
//!
//! * [`ring`] — consistent-hash placement with virtual nodes: every shard position
//!   of the published snapshot maps to `R` distinct endpoints (primary + backups),
//!   balanced across the cluster, with ~1/N of the placement moving on a
//!   membership change. Property-tested in `tests/ring_props.rs`.
//! * [`coordinator`] — the scatter/gather/merge engine with **replica failover**:
//!   a dead, wedged, or load-shedding endpoint costs nothing but a retry against
//!   the shard's surviving replicas; only a shard with *no* live replica degrades
//!   the answer, and degradation is always explicit
//!   ([`sudowoodo_index::JoinOutcome`]) and never cached.
//! * [`local`] — [`LocalCluster`], an in-process loopback cluster for tests and
//!   benches.
//!
//! Everything is `std`-only, like the rest of the workspace.
//!
//! ## Example: two replicas, one logical join
//!
//! ```
//! use std::sync::Arc;
//! use sudowoodo_coord::{Coordinator, CoordinatorConfig, LocalCluster};
//! use sudowoodo_index::BlockingIndex;
//!
//! let corpus = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8], vec![0.8, 0.6]];
//! let index = Arc::new(BlockingIndex::build(corpus.clone(), Some(2)));
//!
//! // Reference: the single-process join.
//! let queries = vec![vec![0.9, 0.1], vec![0.1, 0.9]];
//! let expected = index.knn_join(&queries, 2);
//!
//! // Two servers, one coordinator, same answer — ids AND scores.
//! let cluster = LocalCluster::spawn(Arc::clone(&index), 2).unwrap();
//! let mut coord = Coordinator::connect(&cluster.endpoints(), CoordinatorConfig::default())
//!     .unwrap();
//! assert_eq!(coord.knn_join(&queries, 2).unwrap(), expected);
//! ```

#![deny(missing_docs)]

pub mod coordinator;
pub mod local;
pub mod ring;

pub use coordinator::{Coordinator, CoordinatorConfig};
pub use local::LocalCluster;
pub use ring::HashRing;
