//! # sudowoodo-faults
//!
//! A std-only, deterministic **failpoint registry** for chaos-testing the Sudowoodo
//! stack. Production code plants named failpoints at its fault-prone seams (spill
//! reads, snapshot renames, socket writes); tests and CI arm them by name to force
//! those seams to fail on demand:
//!
//! ```
//! use sudowoodo_faults as faults;
//!
//! faults::arm("spill.read.io_err", faults::Policy::Times(2));
//! assert!(faults::fires("spill.read.io_err"));
//! assert!(faults::fires("spill.read.io_err"));
//! assert!(!faults::fires("spill.read.io_err")); // budget spent
//! faults::disarm_all();
//! ```
//!
//! Design constraints, in order:
//!
//! * **Free when disarmed.** [`fires`] first does one relaxed atomic load of a global
//!   armed counter; with nothing armed it returns `false` without touching the
//!   registry mutex, hashing the name, or allocating. Production binaries that never
//!   arm anything pay a predictable single-branch toll per failpoint site.
//! * **Deterministic.** Probabilistic policies ([`Policy::OneIn`], [`Policy::Prob`])
//!   draw from a per-failpoint xorshift stream seeded at arm time — the same arming
//!   produces the same fire sequence on every run, so a chaos failure reproduces.
//! * **Env-drivable.** Setting `SUDOWOODO_FAILPOINTS` (for example
//!   `spill.read.io_err=1in7;serve.write.stall=always`) arms failpoints
//!   process-wide before the first [`fires`] call, which is how CI runs the whole
//!   workspace test suite under chaos without touching a single test.
//! * **Retry-friendly.** After a *probabilistic* policy fires on a thread, that
//!   thread suppresses the same failpoint for the next few evaluations
//!   ([`SUPPRESS_WINDOW`]) — enough for a bounded retry loop to succeed
//!   deterministically instead of flaking. Deterministic policies (`Always`,
//!   `Once`, `Times`) are never suppressed: a test arming `Always` wants the
//!   durable fault (and the quarantine path behind it).
//!
//! The registry is process-global. Tests that arm failpoints which other tests must
//! not observe (e.g. snapshot crash points) should serialize on a shared mutex and
//! [`disarm`] in a drop guard.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// How an armed failpoint decides whether a given evaluation fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Never fires (arming with `Off` is equivalent to [`disarm`]).
    Off,
    /// Fires on every evaluation until disarmed.
    Always,
    /// Fires exactly once, then never again.
    Once,
    /// Fires on the first `n` evaluations, then never again.
    Times(u64),
    /// Fires on average once per `n` evaluations (deterministic per-failpoint
    /// xorshift stream; `OneIn(1)` is equivalent to `Always` minus suppression).
    OneIn(u64),
    /// Fires with probability `num/den` per evaluation, from a stream seeded with
    /// `seed` (so two armings with different seeds see different fire patterns).
    Prob {
        /// Numerator of the fire probability.
        num: u64,
        /// Denominator of the fire probability (0 is treated as never-fire).
        den: u64,
        /// Seed of the deterministic per-failpoint draw stream.
        seed: u64,
    },
}

/// After a probabilistic policy fires on a thread, the same failpoint is suppressed
/// on that thread for this many further evaluations — wide enough to cover every
/// bounded retry loop in the workspace (the longest retries 4 times), so
/// retry-after-fault succeeds deterministically under chaos instead of flaking.
pub const SUPPRESS_WINDOW: u32 = 8;

struct State {
    policy: Policy,
    /// Evaluations seen so far (drives `Once`/`Times`).
    hits: u64,
    /// xorshift64 state for probabilistic policies.
    rng: u64,
}

/// Number of currently armed failpoints; the [`fires`] fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, State>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, State>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms failpoints from `SUDOWOODO_FAILPOINTS` exactly once per process.
///
/// The initialization closure must arm WITHOUT calling back into any public entry
/// point: those all call `arm_from_env_once` themselves, and re-entering a
/// `OnceLock` initializer deadlocks the whole process on the `Once` futex (every
/// later caller queues behind it). Hence `spec_entries` + the internal `arm_locked`
/// here instead of the public `arm_from_spec`/`arm`.
fn arm_from_env_once() {
    static ENV: OnceLock<()> = OnceLock::new();
    ENV.get_or_init(|| {
        if let Ok(spec) = std::env::var("SUDOWOODO_FAILPOINTS") {
            for (name, policy) in spec_entries(&spec) {
                arm_locked(&name, policy);
            }
        }
    });
}

thread_local! {
    /// Per-thread suppression counters (see [`SUPPRESS_WINDOW`]).
    static SUPPRESSED: RefCell<HashMap<String, u32>> = RefCell::new(HashMap::new());
}

/// Arms `name` with `policy`, replacing any previous arming (and resetting its
/// counters/stream). Arming [`Policy::Off`] disarms.
pub fn arm(name: &str, policy: Policy) {
    arm_from_env_once();
    arm_locked(name, policy);
}

/// The body of [`arm`], callable from inside the env-arming `OnceLock` initializer
/// (which must not re-enter [`arm_from_env_once`] — see its comment).
fn arm_locked(name: &str, policy: Policy) {
    if policy == Policy::Off {
        let mut map = registry().lock().unwrap();
        if map.remove(name).is_some() {
            ARMED.fetch_sub(1, Ordering::Relaxed);
        }
        drop(map);
        SUPPRESSED.with(|s| {
            s.borrow_mut().remove(name);
        });
        return;
    }
    let seed = match policy {
        Policy::Prob { seed, .. } => seed,
        // Stable per-name default seed so `OneIn` runs reproduce without the test
        // having to pick one.
        _ => {
            0x5DEECE66D
                ^ name
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
        }
    };
    let state = State {
        policy,
        hits: 0,
        // xorshift64 cannot leave state 0.
        rng: seed | 1,
    };
    let mut map = registry().lock().unwrap();
    if map.insert(name.to_string(), state).is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
    drop(map);
    // A leftover suppression window from a previous arming would silently shift the
    // new stream; clearing it keeps "same arming, same sequence" true on the arming
    // thread (suppression is thread-local, so other threads clear on their own next
    // window expiry).
    SUPPRESSED.with(|s| {
        s.borrow_mut().remove(name);
    });
}

/// Disarms `name`; evaluations return to the no-op branch.
pub fn disarm(name: &str) {
    arm_from_env_once();
    let mut map = registry().lock().unwrap();
    if map.remove(name).is_some() {
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
    drop(map);
    SUPPRESSED.with(|s| {
        s.borrow_mut().remove(name);
    });
}

/// Disarms every failpoint (including env-armed ones — chaos CI accepts that a
/// test doing this opts the rest of its process out of env chaos).
pub fn disarm_all() {
    arm_from_env_once();
    let mut map = registry().lock().unwrap();
    let n = map.len();
    map.clear();
    ARMED.fetch_sub(n, Ordering::Relaxed);
    drop(map);
    SUPPRESSED.with(|s| {
        s.borrow_mut().clear();
    });
}

/// Names of the currently armed failpoints (diagnostics / test assertions).
pub fn armed() -> Vec<String> {
    arm_from_env_once();
    let map = registry().lock().unwrap();
    let mut names: Vec<String> = map.keys().cloned().collect();
    names.sort();
    names
}

/// Evaluates the failpoint `name`: `true` means the planted fault should trigger.
///
/// This is the only call production code makes. With nothing armed it is one
/// relaxed atomic load and a branch.
pub fn fires(name: &str) -> bool {
    // Fast path: nothing armed anywhere. The env spec can only *add* armings, and
    // arming bumps ARMED, so a process that never arms (and has no env spec to
    // parse — checked once below on the slow path) never takes the lock. To keep
    // the fast path a single load, env arming is folded into the slow path: a
    // process with SUDOWOODO_FAILPOINTS set must evaluate the env once, so the
    // very first call pays the parse.
    if ARMED.load(Ordering::Relaxed) == 0 {
        arm_from_env_once();
        if ARMED.load(Ordering::Relaxed) == 0 {
            return false;
        }
    }

    // Thread-local suppression window after a probabilistic fire.
    let suppressed = SUPPRESSED.with(|s| {
        let mut map = s.borrow_mut();
        match map.get_mut(name) {
            Some(left) if *left > 0 => {
                *left -= 1;
                true
            }
            _ => false,
        }
    });
    if suppressed {
        return false;
    }

    let mut map = registry().lock().unwrap();
    let Some(state) = map.get_mut(name) else {
        return false;
    };
    state.hits += 1;
    let (fired, probabilistic) = match state.policy {
        Policy::Off => (false, false),
        Policy::Always => (true, false),
        Policy::Once => (state.hits == 1, false),
        Policy::Times(n) => (state.hits <= n, false),
        Policy::OneIn(n) => (n > 0 && xorshift(&mut state.rng).is_multiple_of(n), true),
        Policy::Prob { num, den, .. } => (den > 0 && xorshift(&mut state.rng) % den < num, true),
    };
    drop(map);
    if fired && probabilistic {
        SUPPRESSED.with(|s| {
            s.borrow_mut().insert(name.to_string(), SUPPRESS_WINDOW);
        });
    }
    fired
}

/// Arms failpoints from a `name=policy;name=policy` spec (the `SUDOWOODO_FAILPOINTS`
/// format). Unparseable entries are skipped with a note on stderr — a typo in a CI
/// matrix variable should weaken the chaos, not brick every test binary.
///
/// Policies: `off`, `always`, `once`, `times:N`, `1inN`, `prob:NUM/DEN:SEED`.
pub fn arm_from_spec(spec: &str) {
    arm_from_env_once();
    for (name, policy) in spec_entries(spec) {
        arm_locked(&name, policy);
    }
}

/// Parses a spec into its well-formed `(name, policy)` entries, noting the
/// malformed ones on stderr.
fn spec_entries(spec: &str) -> Vec<(String, Policy)> {
    let mut entries = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((name, policy)) = entry.split_once('=') else {
            eprintln!("sudowoodo-faults: ignoring malformed failpoint entry {entry:?}");
            continue;
        };
        match parse_policy(policy.trim()) {
            Some(p) => entries.push((name.trim().to_string(), p)),
            None => eprintln!("sudowoodo-faults: ignoring unknown policy in {entry:?}"),
        }
    }
    entries
}

fn parse_policy(s: &str) -> Option<Policy> {
    match s {
        "off" => return Some(Policy::Off),
        "always" => return Some(Policy::Always),
        "once" => return Some(Policy::Once),
        _ => {}
    }
    if let Some(n) = s.strip_prefix("times:") {
        return n.parse().ok().map(Policy::Times);
    }
    if let Some(n) = s.strip_prefix("1in") {
        return n.parse().ok().map(Policy::OneIn);
    }
    if let Some(rest) = s.strip_prefix("prob:") {
        let (frac, seed) = rest.split_once(':')?;
        let (num, den) = frac.split_once('/')?;
        return Some(Policy::Prob {
            num: num.parse().ok()?,
            den: den.parse().ok()?,
            seed: seed.parse().ok()?,
        });
    }
    None
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global and `cargo test` is multithreaded; every test
    /// here serializes on this lock and disarms on drop.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct DisarmGuard;
    impl Drop for DisarmGuard {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    #[test]
    fn disarmed_failpoints_never_fire() {
        let _s = serial();
        let _g = DisarmGuard;
        assert!(!fires("test.never.armed"));
        arm("test.other", Policy::Always);
        assert!(!fires("test.never.armed"), "arming one point must not leak");
    }

    #[test]
    fn counting_policies_are_exact() {
        let _s = serial();
        let _g = DisarmGuard;
        arm("test.once", Policy::Once);
        assert!(fires("test.once"));
        assert!(!fires("test.once"));

        arm("test.times", Policy::Times(3));
        let hits = (0..10).filter(|_| fires("test.times")).count();
        assert_eq!(hits, 3);

        arm("test.always", Policy::Always);
        assert!((0..50).all(|_| fires("test.always")));
    }

    #[test]
    fn rearming_resets_and_off_disarms() {
        let _s = serial();
        let _g = DisarmGuard;
        arm("test.reset", Policy::Once);
        assert!(fires("test.reset"));
        arm("test.reset", Policy::Once);
        assert!(fires("test.reset"), "re-arming must reset the budget");
        arm("test.reset", Policy::Off);
        assert!(!fires("test.reset"));
        assert!(!armed().iter().any(|n| n == "test.reset"));
    }

    #[test]
    fn probabilistic_policies_are_deterministic_and_suppress_retries() {
        let _s = serial();
        let _g = DisarmGuard;
        let run = || {
            arm(
                "test.prob",
                Policy::Prob {
                    num: 1,
                    den: 3,
                    seed: 42,
                },
            );
            (0..64).map(|_| fires("test.prob")).collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the same fire pattern");
        assert!(a.iter().any(|&f| f), "1/3 over 64 draws must fire");
        // Suppression: after every fire, the next SUPPRESS_WINDOW evaluations on
        // this thread are quiet — a retry loop shorter than the window always
        // succeeds.
        for (i, fired) in a.iter().enumerate() {
            if *fired {
                let window = &a[i + 1..(i + 1 + SUPPRESS_WINDOW as usize).min(a.len())];
                assert!(
                    window.iter().all(|&f| !f),
                    "fire at draw {i} must suppress the next {SUPPRESS_WINDOW}"
                );
            }
        }
    }

    #[test]
    fn spec_parsing_arms_and_skips_garbage() {
        let _s = serial();
        let _g = DisarmGuard;
        arm_from_spec("test.a=always; test.b = times:2 ;garbage;test.c=1in4;test.d=prob:1/5:9;;");
        // Filter to this test's namespace: a chaos CI run arms extra env-driven
        // failpoints that legitimately show up in `armed()` alongside ours.
        let ours: Vec<String> = armed()
            .into_iter()
            .filter(|n| n.starts_with("test."))
            .collect();
        assert_eq!(ours, vec!["test.a", "test.b", "test.c", "test.d"]);
        assert!(fires("test.a"));
        assert_eq!((0..5).filter(|_| fires("test.b")).count(), 2);
        arm_from_spec("test.a=off");
        assert!(!fires("test.a"));
    }
}
