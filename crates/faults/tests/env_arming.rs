//! The `SUDOWOODO_FAILPOINTS` env path, exercised the way a chaos CI process hits
//! it: the variable is set before the process touches the faults API at all, and the
//! very first call pays the one-time parse.
//!
//! This is an integration test (own process) because env arming is once-per-process;
//! and the first call runs on a watchdog thread because the historical failure mode
//! here was a *deadlock* — the env initializer re-entering the arming entry points
//! inside the `OnceLock` closure wedged every thread in the process — which must
//! surface as a test failure, not a hung CI job.

use std::time::Duration;

#[test]
fn env_spec_arms_on_the_first_call_without_deadlocking() {
    // Before any faults call in this process. Integration tests run single-threaded
    // per binary unless they spawn threads, so no reader can race this write.
    std::env::set_var(
        "SUDOWOODO_FAILPOINTS",
        "env.test.point=always; env.test.oneshot=once; bogus-entry; other=nonsense",
    );

    let first_call = std::thread::spawn(|| {
        // `fires` on an unarmed-by-API name: forces the slow path that parses the
        // env spec. The two well-formed entries arm; the malformed ones are skipped.
        assert!(sudowoodo_faults::fires("env.test.point"));
        assert!(sudowoodo_faults::fires("env.test.point"));
        assert!(sudowoodo_faults::fires("env.test.oneshot"));
        assert!(!sudowoodo_faults::fires("env.test.oneshot"));
        assert_eq!(
            sudowoodo_faults::armed(),
            vec!["env.test.oneshot".to_string(), "env.test.point".to_string()]
        );
        sudowoodo_faults::disarm_all();
        assert!(!sudowoodo_faults::fires("env.test.point"));
    });

    // Watchdog: the join must complete promptly. A regression in the env-arming
    // once-path deadlocks the spawned thread (and would deadlock every thread that
    // follows), which `is_finished` polling turns into a clean panic.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !first_call.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "env arming deadlocked: the first faults call never returned \
             (SUDOWOODO_FAILPOINTS initializer re-entered the arming API?)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    first_call.join().expect("first-call thread panicked");
}
