//! Query-batch result cache for the sharded blocking index.
//!
//! Production serving traffic is repetitive: the same query batch (a dashboard refresh,
//! a retried RPC, a popular entity page) hits `knn_join` again and again while the
//! corpus barely moves. ROADMAP names "a shard-level cache for repeated query batches"
//! as the scale step after spill/routing — this module is that cache, slotted into
//! [`crate::ShardedCosineIndex::knn_join`] **ahead of routing**, so a repeated batch
//! answers without touching a single shard (resident *or* spilled: a cache hit does no
//! disk I/O and no GEMM at all).
//!
//! ## Keying: the normalized-query fingerprint
//!
//! A cache key is a 128-bit FNV-1a fingerprint of `(dim, k, query count, every query's
//! length and **normalized** row bits)` — per-row lengths delimit the stream, so a
//! ragged batch can never alias a rectangular one. Hashing the normalized rows (`q · 1/‖q‖`, the exact scale
//! the scoring path applies) makes the cache scale-invariant, mirroring cosine search
//! itself: `2q` retrieves identically to `q` and shares its entry. Two independent
//! 64-bit FNV streams with different offset bases form the 128-bit key, making an
//! accidental collision (~2⁻¹²⁸ per pair) negligible next to hardware error rates.
//!
//! Precision note: for an **exactly repeated** batch (and for power-of-two rescalings,
//! which are exact in IEEE-754) a hit is bit-identical to recomputing. A batch that
//! merely *aliases* a cached one — same normalized bits reached from a different raw
//! scale — gets the cached answer, which may differ from its own from-scratch
//! computation by final-ulp rounding (the scoring path applies `1/‖q‖` after the raw
//! dot product). That is within the engine's cosine contract: the two batches are the
//! same query directions by construction.
//!
//! ## Invalidation: the mutation epoch
//!
//! The index keeps a monotonically increasing **epoch**, bumped by every successful
//! `add_batch`, `remove`, and `compact`. Entries are stamped with the epoch at insert;
//! a lookup under a different epoch is a miss (the stale entry is evicted on the spot).
//! This makes invalidation O(1) per mutation — no scanning the cache — while
//! guaranteeing a hit is always *result-identical* to recomputing against the current
//! corpus: between the stamp and the hit, no mutation happened.
//!
//! Capacity is counted in cached batches and evicts least-recently-used first. The
//! cache is internally synchronized (lookups take `&self`, exactly like `knn_join`) and
//! disabled at capacity 0 — the default, so nothing changes for existing callers until
//! [`crate::ShardedCosineIndex::set_query_cache_capacity`] (or
//! `SudowoodoConfig::blocking_query_cache` upstream) opts in.

use std::collections::HashMap;
use std::sync::Mutex;

/// One `knn_join` result set: `(query_index, stable_id, score)` pairs.
type JoinResult = Vec<(usize, usize, f32)>;

/// 128-bit fingerprint of a normalized query batch (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryFingerprint(u128);

/// Computes the fingerprint of a query batch for a `k`-neighbor join against a
/// `dim`-dimensional index.
///
/// Queries are normalized exactly like the scoring path normalizes them (inverse norm,
/// with the `1e-12` zero-norm guard), so scaled copies of a batch share one entry.
pub fn fingerprint(queries: &[Vec<f32>], k: usize, dim: usize) -> QueryFingerprint {
    // Two independent FNV-1a streams over the same words -> one 128-bit key.
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325; // the standard FNV-1a offset basis
    let mut hi: u64 = 0x6c62_272e_07bb_0142; // the FNV-1a 128-bit basis' low word
    let mix = |word: u32, lo: &mut u64, hi: &mut u64| {
        *lo = (*lo ^ word as u64).wrapping_mul(PRIME);
        *hi = (*hi ^ (word as u64).rotate_left(17)).wrapping_mul(PRIME);
    };
    mix(dim as u32, &mut lo, &mut hi);
    mix(k as u32, &mut lo, &mut hi);
    mix(queries.len() as u32, &mut lo, &mut hi);
    for q in queries {
        // Each row's length delimits its words in the stream. Without it, a *ragged*
        // batch could alias a rectangular one (same concatenated bits, different row
        // boundaries) and silently take its cached result instead of reaching the
        // scoring path's ragged-input panic.
        mix(q.len() as u32, &mut lo, &mut hi);
        let norm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
        let inv = if norm > 1e-12 { 1.0 / norm } else { 0.0 };
        for &x in q {
            mix((x * inv).to_bits(), &mut lo, &mut hi);
        }
    }
    QueryFingerprint(((hi as u128) << 64) | lo as u128)
}

/// One cached batch: the results, the epoch they were computed under, and an LRU stamp.
#[derive(Debug)]
struct Entry {
    epoch: u64,
    last_used: u64,
    results: JoinResult,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<QueryFingerprint, Entry>,
    /// Monotone use counter driving LRU eviction.
    tick: u64,
}

/// A bounded, epoch-validated cache of `knn_join` results (see the module docs).
#[derive(Debug)]
pub(crate) struct QueryCache {
    /// Maximum number of cached batches; 0 disables the cache entirely.
    capacity: usize,
    inner: Mutex<Inner>,
}

impl QueryCache {
    /// Creates a cache retaining at most `capacity` batches (0 = disabled).
    pub(crate) fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// `true` when the cache can hold anything at all.
    pub(crate) fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity in batches.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of batches currently cached (stale-epoch entries included until touched).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Returns the cached results for `key` if present *and* computed under `epoch`.
    /// A stale-epoch entry is removed on the way out (its slot is dead weight).
    pub(crate) fn lookup(&self, key: QueryFingerprint, epoch: u64) -> Option<JoinResult> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = tick;
                Some(entry.results.clone())
            }
            Some(_) => {
                inner.entries.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Caches `results` for `key` under `epoch`, evicting the least-recently-used
    /// entry when the cache is full. No-op when the cache is disabled.
    pub(crate) fn insert(&self, key: QueryFingerprint, epoch: u64, results: JoinResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            // Evict the least-recently-used batch (ties cannot happen: ticks are unique).
            if let Some(&evict) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.entries.remove(&evict);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                epoch,
                last_used: tick,
                results,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: usize) -> JoinResult {
        vec![(0, tag, 0.5)]
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = QueryCache::new(4);
        let key = fingerprint(&[vec![1.0, 0.0]], 3, 2);
        cache.insert(key, 7, result(1));
        assert_eq!(cache.lookup(key, 7), Some(result(1)));
        assert_eq!(cache.lookup(key, 8), None, "epoch bump must invalidate");
        assert_eq!(cache.len(), 0, "the stale entry is dropped on miss");
    }

    #[test]
    fn fingerprint_is_scale_invariant_but_shape_sensitive() {
        let q = vec![vec![0.6f32, 0.8], vec![1.0, 0.0]];
        let doubled: Vec<Vec<f32>> = q
            .iter()
            .map(|v| v.iter().map(|x| x * 2.0).collect())
            .collect();
        assert_eq!(fingerprint(&q, 5, 2), fingerprint(&doubled, 5, 2));
        assert_ne!(fingerprint(&q, 5, 2), fingerprint(&q, 6, 2), "k is keyed");
        assert_ne!(
            fingerprint(&q[..1], 5, 2),
            fingerprint(&q, 5, 2),
            "batch length is keyed"
        );
        let other = vec![vec![0.6f32, 0.8], vec![0.0, 1.0]];
        assert_ne!(fingerprint(&q, 5, 2), fingerprint(&other, 5, 2));
    }

    #[test]
    fn ragged_batches_never_alias_rectangular_ones() {
        // Same concatenated normalized bit stream, different row boundaries: [1],[0,0,1]
        // vs [1,0],[0,1]. The per-row length words must keep the keys apart, so a
        // ragged batch reaches the scoring path's panic instead of a silent cache hit.
        let rect = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let ragged = vec![vec![1.0f32], vec![0.0, 0.0, 1.0]];
        assert_ne!(fingerprint(&rect, 4, 2), fingerprint(&ragged, 4, 2));
    }

    #[test]
    fn lru_evicts_the_coldest_batch() {
        let cache = QueryCache::new(2);
        let keys: Vec<QueryFingerprint> = (0..3)
            .map(|i| fingerprint(&[vec![i as f32 + 1.0, 1.0]], 1, 2))
            .collect();
        cache.insert(keys[0], 0, result(0));
        cache.insert(keys[1], 0, result(1));
        assert!(cache.lookup(keys[0], 0).is_some(), "warm key 0");
        cache.insert(keys[2], 0, result(2)); // key 1 is now the coldest
        assert_eq!(cache.lookup(keys[1], 0), None, "cold entry evicted");
        assert_eq!(cache.lookup(keys[0], 0), Some(result(0)));
        assert_eq!(cache.lookup(keys[2], 0), Some(result(2)));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = QueryCache::new(0);
        assert!(!cache.is_enabled());
        let key = fingerprint(&[vec![1.0]], 1, 1);
        cache.insert(key, 0, result(1));
        assert_eq!(cache.lookup(key, 0), None);
        assert_eq!(cache.capacity(), 0);
    }
}
