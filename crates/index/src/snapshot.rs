//! Persistent whole-index snapshots: build once, serve from any process.
//!
//! Every layer below this one keeps the blocking index fast *within* one process; this
//! module makes it durable *across* processes (ROADMAP: "a multi-process/RPC shard
//! server for true multi-machine corpora" — the server half lives in `sudowoodo-serve`).
//! A snapshot is a directory holding:
//!
//! * **`MANIFEST.swidx`** — a small versioned binary manifest: layout, dimensions,
//!   shard capacity, id maps, tombstones, and the exact per-shard routing statistics
//!   (centroid, radius, *and* the `f64` running sum, so post-load appends stay as tight
//!   as they would have been without the round trip);
//! * **one payload file per shard** (`shard-<i>.bin`, or `dense.bin` for the dense
//!   layout) in the exact [`crate::storage`] `SWSHARD1` spill format — so a shard that
//!   is already spilled to disk snapshots with a plain file copy, never deserialized,
//!   and a resident shard is written by the same streaming serializer the spill path
//!   uses.
//!
//! ## Cold loads: warm-start is O(manifest), not O(corpus)
//!
//! [`ShardedCosineIndex::load_snapshot`] reads **only the manifest**. Every shard comes
//! up in the spilled state, backed by a *non-owning* handle onto the snapshot payload
//! (the snapshot is never deleted by loaded indexes — any number of processes can serve
//! from one directory). Treat a published snapshot as **immutable**: cold loaders
//! re-read payload files lazily by path, so overwriting a directory while another
//! *live process* is serving from it is uncoordinated — that process could pair its
//! old manifest with new payload bytes. To republish, write a fresh directory and
//! switch readers over (e.g. an atomic symlink swap); overwriting is safe only when
//! no other process currently serves the directory.
//!
//! Queries fault shards transiently exactly like spilled shards,
//! routing statistics (restored from the manifest, not recomputed) keep pruned shards
//! from ever touching the payload files, and the first `compact()` applies the regular
//! [`crate::ShardedCosineIndex::set_memory_budget`] LRU policy — faulting the hot
//! shards resident (all of them, when no budget is set) and leaving the cold ones on
//! disk.
//!
//! ## Equivalence contract
//!
//! A snapshot round trip is **bit-identical**: payloads are the shard matrices
//! bit-for-bit (including the row-quad zero padding), ids/tombstones/routing statistics
//! are preserved exactly, so a loaded index returns id- and score-identical `knn_join`
//! results to the index that was saved — spilled, routed, compacted, or not. The
//! `snapshot_roundtrip` integration tests pin this on the 2k×10k fixture with spill
//! forced and routing on.
//!
//! ## Manifest format (`SWINDEX1`)
//!
//! All integers little-endian; `f32`/`f64` as IEEE-754 bits, little-endian.
//!
//! ```text
//! magic    b"SWINDEX1"          (version baked into the magic)
//! layout   u8                   0 = dense, 1 = sharded
//!
//! dense:   dim u64 · len u64 · payload_rows u64            (payload: dense.bin)
//!
//! sharded: dim u64 · shard_capacity u64 · next_id u64 · live u64 · num_shards u64
//!          then per shard i (payload: shard-<i>.bin):
//!            rows u64 · cols u64                            (payload matrix shape)
//!            kind u8                                        (0 = SWSHARD1 f32, 1 = SWSHARDQ1 quantized)
//!            n u64 · ids u64×n · deleted bitmask ⌈n/8⌉ bytes · live u64
//!            stats: counted u64 · radius f32
//!                   centroid_len u64 · centroid f32×len
//!                   sum_len u64 · sum f64×len
//!
//! trailer  CRC-32 (ISO-HDLC) of every preceding byte, u32 little-endian
//! ```
//!
//! The manifest is written to a temporary name and atomically renamed into place after
//! every payload file has been written, so a crashed save never publishes a manifest
//! pointing at missing payloads, and it carries a **CRC-32 trailer** over every
//! preceding byte — a manifest torn by a crash mid-write (or bit-rotted on disk) is
//! rejected with a typed error instead of being half-parsed. Payload file lengths are
//! validated against the manifest at load time
//! ([`crate::storage::SpilledShard::open`]), the `SWSHARD1` header and payload CRC are
//! re-verified on every fault, and a shard whose payload fails validation is loaded
//! **quarantined** (see [`crate::JoinOutcome`]) so one corrupt file degrades — not
//! aborts — the snapshot: the readable shards serve while the quarantined ones wait
//! for a `compact()` to recover or drop them.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64};

use sudowoodo_faults as faults;
use sudowoodo_nn::matrix::Matrix;

use crate::blocking::BlockingIndex;
use crate::cache::QueryCache;
use crate::knn::CosineIndex;
use crate::routing::RoutingStats;
use crate::sharded::{QuantSpec, RoutingCounters, Shard, ShardedCosineIndex};
use crate::storage::{
    crc32, same_file, write_matrix_file, write_quant_matrix_file, QuantSpilledShard, ShardStorage,
    SpilledShard,
};

/// File name of the snapshot manifest inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST.swidx";

/// Magic prefix of a manifest; the trailing `1` is the format version.
pub(crate) const MAGIC: &[u8; 8] = b"SWINDEX1";

/// Layout tag of a dense snapshot.
const LAYOUT_DENSE: u8 = 0;
/// Layout tag of a sharded snapshot.
const LAYOUT_SHARDED: u8 = 1;

/// Payload file name of the dense layout.
const DENSE_PAYLOAD: &str = "dense.bin";

/// Payload file name of shard `i` (shared with the [`crate::delta`] format, whose local
/// payloads use the same naming).
pub(crate) fn shard_payload(i: usize) -> String {
    format!("shard-{i}.bin")
}

/// `InvalidData` error prefixed with a manifest location (shared with [`crate::delta`]).
pub(crate) fn corrupt_at(manifest: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("snapshot {}: {what}", manifest.display()),
    )
}

/// `InvalidData` error prefixed with the manifest location.
fn corrupt(dir: &Path, what: impl std::fmt::Display) -> io::Error {
    corrupt_at(&dir.join(MANIFEST_FILE), what)
}

// ---- little-endian primitives (shared with `crate::delta`) --------------------------

pub(crate) fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn w_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn r_usize(r: &mut impl Read) -> io::Result<usize> {
    r_u64(r).map(|v| v as usize)
}

pub(crate) fn r_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

pub(crate) fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Writes `payload` bytes (or runs the writer) to `<dest>.tmp`, then atomically renames
/// onto `dest` — readers of a concurrently overwritten snapshot never see half a file.
///
/// Failpoint `snapshot.rename.skip`: errors out after the temp file is fully written
/// but before the rename — the on-disk shape of a crash between the two syscalls (the
/// destination keeps its old content; the `.bin.tmp` leftover is swept by the next
/// successful save's [`remove_stale_payloads`]).
pub(crate) fn write_file_atomic(
    dest: &Path,
    write: impl FnOnce(&Path) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = dest.with_extension("bin.tmp");
    write(&tmp)?;
    if faults::fires("snapshot.rename.skip") {
        return Err(io::Error::other(
            "failpoint snapshot.rename.skip: simulated crash before rename",
        ));
    }
    fs::rename(&tmp, dest)
}

// ---- per-shard record I/O (shared with `crate::delta`) ------------------------------

/// Serializes one shard's manifest record (shape, ids, tombstones, live count, routing
/// statistics) — the byte layout shared by `SWINDEX1` and `SWDELTA1` manifests.
pub(crate) fn write_shard_record(w: &mut Vec<u8>, shard: &Shard) -> io::Result<()> {
    w_u64(w, shard.storage.rows() as u64)?;
    w_u64(w, shard.storage.cols() as u64)?;
    // Storage kind: which payload format backs this shard. Drives the load-time
    // length check and handle type; the payload's own magic is re-verified on fault.
    w.write_all(&[shard.storage.is_quantized() as u8])?;
    w_u64(w, shard.ids.len() as u64)?;
    for &id in &shard.ids {
        w_u64(w, id as u64)?;
    }
    for byte_group in shard.deleted.chunks(8) {
        let mut byte = 0u8;
        for (bit, &dead) in byte_group.iter().enumerate() {
            byte |= (dead as u8) << bit;
        }
        w.write_all(&[byte])?;
    }
    w_u64(w, shard.live as u64)?;
    let (centroid, radius, sum, counted) = shard.stats.snapshot_parts();
    w_u64(w, counted as u64)?;
    w_f32(w, radius)?;
    w_u64(w, centroid.len() as u64)?;
    for &c in centroid {
        w_f32(w, c)?;
    }
    w_u64(w, sum.len() as u64)?;
    for &s in sum {
        w_f64(w, s)?;
    }
    Ok(())
}

/// One shard's manifest record, parsed and validated but not yet bound to a payload.
pub(crate) struct ShardRecord {
    /// Payload matrix row count (including the row-quad zero padding).
    pub rows: usize,
    /// Payload matrix column count (== the index dimension).
    pub cols: usize,
    /// `true` when the payload is a quantized `SWSHARDQ1` file, `false` for `SWSHARD1`.
    pub quantized: bool,
    /// Stable ids of the shard's slots, ascending.
    pub ids: Vec<usize>,
    /// Tombstone per slot.
    pub deleted: Vec<bool>,
    /// Live (non-tombstoned) slots.
    pub live: usize,
    /// Routing statistics, restored exactly.
    pub stats: RoutingStats,
}

/// Parses and validates one shard record — the inverse of [`write_shard_record`].
/// `prev_id` threads the cross-shard ascending-id check; errors name `manifest`.
pub(crate) fn read_shard_record(
    manifest: &Path,
    r: &mut impl Read,
    i: usize,
    dim: usize,
    shard_capacity: usize,
    next_id: usize,
    prev_id: &mut Option<usize>,
) -> io::Result<ShardRecord> {
    let rows = r_usize(r)?;
    let cols = r_usize(r)?;
    if cols != dim {
        return Err(corrupt_at(
            manifest,
            format!("shard {i} payload has {cols} columns, index dimension is {dim}"),
        ));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    if kind[0] > 1 {
        return Err(corrupt_at(
            manifest,
            format!("shard {i} has unknown storage kind {}", kind[0]),
        ));
    }
    let quantized = kind[0] == 1;
    let n = r_usize(r)?;
    if n > rows || n > shard_capacity || n > next_id {
        return Err(corrupt_at(
            manifest,
            format!(
                "shard {i} claims {n} rows against a {rows}-row payload, \
                 capacity {shard_capacity}, and next_id {next_id}"
            ),
        ));
    }
    // `n` is now bounded by next_id (ids are distinct and below it), so this
    // preallocation cannot be driven huge by a corrupt count alone; the payload
    // length check in `SpilledShard::open` catches inflated `rows`.
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r_usize(r)?;
        if prev_id.is_some_and(|p| p >= id) || id >= next_id {
            return Err(corrupt_at(
                manifest,
                format!("shard {i} ids are not ascending"),
            ));
        }
        *prev_id = Some(id);
        ids.push(id);
    }
    let mut deleted = Vec::with_capacity(n);
    let mut mask = vec![0u8; n.div_ceil(8)];
    r.read_exact(&mut mask)?;
    for bit in 0..n {
        deleted.push(mask[bit / 8] >> (bit % 8) & 1 == 1);
    }
    let live = r_usize(r)?;
    if live != deleted.iter().filter(|d| !**d).count() {
        return Err(corrupt_at(
            manifest,
            format!("shard {i} live count disagrees with its tombstones"),
        ));
    }
    let counted = r_usize(r)?;
    let radius = r_f32(r)?;
    // Routing-stat vectors are either empty (no covered rows) or exactly `dim`
    // wide; any other length is corruption — reject it *before* allocating, so a
    // bit-flipped count turns into a clean error, not a huge allocation.
    let centroid_len = r_usize(r)?;
    if centroid_len != 0 && centroid_len != dim {
        return Err(corrupt_at(
            manifest,
            format!("shard {i} centroid has {centroid_len} entries, expected 0 or {dim}"),
        ));
    }
    let mut centroid = Vec::with_capacity(centroid_len);
    for _ in 0..centroid_len {
        centroid.push(r_f32(r)?);
    }
    let sum_len = r_usize(r)?;
    if sum_len != 0 && sum_len != dim {
        return Err(corrupt_at(
            manifest,
            format!("shard {i} stat sum has {sum_len} entries, expected 0 or {dim}"),
        ));
    }
    let mut sum = Vec::with_capacity(sum_len);
    for _ in 0..sum_len {
        sum.push(r_f64(r)?);
    }
    let stats = RoutingStats::from_snapshot_parts(centroid, radius, sum, counted);
    Ok(ShardRecord {
        rows,
        cols,
        quantized,
        ids,
        deleted,
        live,
        stats,
    })
}

/// Opens a shard payload for a cold load. A payload that fails validation (missing,
/// truncated, wrong size) does not abort the load: the shard comes up **quarantined** —
/// skipped by queries, flagged degraded in every [`crate::JoinOutcome`] — and the
/// readable shards serve. The next `compact()` retries the payload and recovers or
/// drops the shard. Shared by the full-snapshot and delta-chain loaders.
pub(crate) fn open_payload_quarantining(
    dir: &Path,
    i: usize,
    payload: PathBuf,
    rows: usize,
    cols: usize,
    quantized: bool,
) -> (ShardStorage, bool) {
    let warn = |e: crate::StorageError| {
        eprintln!(
            "warning: snapshot load {}: quarantining shard with invalid \
             payload (degraded results until compact): {e}",
            dir.display()
        );
    };
    if quantized {
        match QuantSpilledShard::open(payload.clone(), rows, cols) {
            Ok(opened) => (ShardStorage::QuantSpilled(opened), false),
            Err(e) => {
                warn(e.with_shard(i));
                let unchecked = QuantSpilledShard::open_unchecked(payload, rows, cols);
                (ShardStorage::QuantSpilled(unchecked), true)
            }
        }
    } else {
        match SpilledShard::open(payload.clone(), rows, cols) {
            Ok(opened) => (ShardStorage::Spilled(opened), false),
            Err(e) => {
                warn(e.with_shard(i));
                let unchecked = SpilledShard::open_unchecked(payload, rows, cols);
                (ShardStorage::Spilled(unchecked), true)
            }
        }
    }
}

// ---- save ---------------------------------------------------------------------------

/// Saves a sharded index into `dir` (created if missing). See
/// [`ShardedCosineIndex::save_snapshot`] for the public contract.
pub(crate) fn save_sharded(index: &ShardedCosineIndex, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    for (i, shard) in index.shards.iter().enumerate() {
        let dest = dir.join(shard_payload(i));
        // A shard backed by a *different* file inside the target directory moved
        // position since this snapshot was loaded. Overwriting files out from under
        // our own live handles would corrupt this index, so refuse; a fresh
        // directory is always safe.
        let refuse_same_dir = |backing: &Path| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "snapshot save into {}: shard {i} is backed by {} inside the \
                     same directory; save a mutated snapshot-loaded index into a \
                     fresh directory instead",
                    dir.display(),
                    backing.display()
                ),
            )
        };
        match &shard.storage {
            ShardStorage::Resident(matrix) => {
                write_file_atomic(&dest, |tmp| write_matrix_file(tmp, matrix))?;
            }
            ShardStorage::QuantResident { quant, exact } => {
                write_file_atomic(&dest, |tmp| write_quant_matrix_file(tmp, quant, exact))?;
            }
            ShardStorage::Spilled(spilled) => {
                if same_file(spilled.file_path(), &dest) {
                    // Saving a snapshot-loaded index back into its own directory: the
                    // payload is already exactly this file.
                    continue;
                }
                if spilled
                    .file_path()
                    .parent()
                    .is_some_and(|p| same_file(p, dir))
                {
                    return Err(refuse_same_dir(spilled.file_path()));
                }
                write_file_atomic(&dest, |tmp| spilled.copy_to(tmp))?;
            }
            ShardStorage::QuantSpilled(spilled) => {
                if same_file(spilled.file_path(), &dest) {
                    continue;
                }
                if spilled
                    .file_path()
                    .parent()
                    .is_some_and(|p| same_file(p, dir))
                {
                    return Err(refuse_same_dir(spilled.file_path()));
                }
                write_file_atomic(&dest, |tmp| spilled.copy_to(tmp))?;
            }
        }
    }
    // The manifest body is built in memory (it is O(shards), small next to the
    // payloads) so the CRC-32 trailer covers exactly the bytes written and a torn
    // write can be simulated byte-precisely.
    let manifest = dir.join(MANIFEST_FILE);
    let mut w: Vec<u8> = Vec::new();
    w.write_all(MAGIC)?;
    w.write_all(&[LAYOUT_SHARDED])?;
    w_u64(&mut w, index.dim as u64)?;
    w_u64(&mut w, index.shard_capacity as u64)?;
    w_u64(&mut w, index.next_id as u64)?;
    w_u64(&mut w, index.live as u64)?;
    w_u64(&mut w, index.shards.len() as u64)?;
    for shard in &index.shards {
        write_shard_record(&mut w, shard)?;
    }
    w.extend_from_slice(&crc32(&w).to_le_bytes());
    // Failpoint `snapshot.manifest.torn`: half the manifest reaches disk *at its final
    // name* (the shape of a lost rename journal or torn sector) — the CRC trailer is
    // what keeps a later load from trusting it.
    if faults::fires("snapshot.manifest.torn") {
        fs::write(&manifest, &w[..w.len() / 2])?;
        return Err(io::Error::other(
            "failpoint snapshot.manifest.torn: simulated torn manifest write",
        ));
    }
    write_file_atomic(&manifest, |tmp| fs::write(tmp, &w))?;
    remove_stale_payloads(dir, Some(index.shards.len()))
}

/// Saves a dense index into `dir` (created if missing).
pub(crate) fn save_dense(index: &CosineIndex, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_file_atomic(&dir.join(DENSE_PAYLOAD), |tmp| {
        write_matrix_file(tmp, index.matrix())
    })?;
    let mut w: Vec<u8> = Vec::new();
    w.write_all(MAGIC)?;
    w.write_all(&[LAYOUT_DENSE])?;
    w_u64(&mut w, index.dim() as u64)?;
    w_u64(&mut w, index.len() as u64)?;
    w_u64(&mut w, index.matrix().rows() as u64)?;
    w.extend_from_slice(&crc32(&w).to_le_bytes());
    write_file_atomic(&dir.join(MANIFEST_FILE), |tmp| fs::write(tmp, &w))?;
    remove_stale_payloads(dir, None)
}

/// Removes payload files a previous (larger or different-layout) snapshot left behind,
/// so the directory holds exactly the current snapshot. Only files matching this
/// module's own naming scheme are ever touched. Best-effort: a failed removal never
/// fails the save (the manifest already ignores stale files).
fn remove_stale_payloads(dir: &Path, shards: Option<usize>) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // Leftover atomic-write temporaries from a crashed save are always stale, and
        // so is a delta manifest once a *full* snapshot is saved over the directory —
        // leaving it would make a later load resolve the old chain instead.
        if name.ends_with(".bin.tmp") || name == crate::delta::DELTA_MANIFEST_FILE {
            let _ = fs::remove_file(entry.path());
            continue;
        }
        let stale = match shards {
            // Sharded snapshot: the dense payload and any shard index beyond the count.
            Some(count) => {
                name == DENSE_PAYLOAD
                    || name
                        .strip_prefix("shard-")
                        .and_then(|rest| rest.strip_suffix(".bin"))
                        .and_then(|i| i.parse::<usize>().ok())
                        .is_some_and(|i| i >= count)
            }
            // Dense snapshot: every shard payload is stale.
            None => name.starts_with("shard-") && name.ends_with(".bin"),
        };
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

// ---- load ---------------------------------------------------------------------------

/// Reads and CRC-verifies the whole manifest, returning the layout byte and a reader
/// positioned after the header. Verification up front means a manifest torn by a
/// crashed save (or bit-rotted on disk) is rejected as a unit — the per-field parser
/// below never sees half-written bytes.
fn open_manifest(dir: &Path) -> io::Result<(u8, io::Cursor<Vec<u8>>)> {
    let path = dir.join(MANIFEST_FILE);
    let mut bytes = fs::read(&path)?;
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(corrupt(dir, "manifest is truncated"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt(dir, "bad magic (not a Sudowoodo index snapshot)"));
    }
    let body_len = bytes.len() - 4;
    let recorded = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if crc32(&bytes[..body_len]) != recorded {
        return Err(corrupt(
            dir,
            "manifest CRC-32 mismatch (torn by a crashed save, or corrupt on disk)",
        ));
    }
    bytes.truncate(body_len);
    let layout = bytes[MAGIC.len()];
    let mut r = io::Cursor::new(bytes);
    r.set_position((MAGIC.len() + 1) as u64);
    Ok((layout, r))
}

/// Loads a sharded snapshot cold. See [`ShardedCosineIndex::load_snapshot`].
///
/// A directory published by [`ShardedCosineIndex::save_delta_snapshot`] (detected by
/// its `DELTA.swdel` manifest) loads through the delta chain instead — see
/// [`crate::delta`].
pub(crate) fn load_sharded(dir: &Path) -> io::Result<ShardedCosineIndex> {
    if dir.join(crate::delta::DELTA_MANIFEST_FILE).is_file() {
        return crate::delta::load_delta(dir);
    }
    let (layout, mut r) = open_manifest(dir)?;
    if layout != LAYOUT_SHARDED {
        return Err(corrupt(
            dir,
            "holds the dense layout; load it through BlockingIndex::load_snapshot",
        ));
    }
    read_sharded_body(dir, &mut r)
}

fn read_sharded_body(dir: &Path, r: &mut impl Read) -> io::Result<ShardedCosineIndex> {
    let dim = r_usize(r)?;
    let shard_capacity = r_usize(r)?;
    let next_id = r_usize(r)?;
    let live = r_usize(r)?;
    let num_shards = r_usize(r)?;
    if shard_capacity == 0 {
        return Err(corrupt(dir, "shard capacity 0"));
    }
    // Clamp the preallocation: `num_shards` is still untrusted here (the per-shard
    // records below validate it implicitly by running out of manifest bytes).
    let mut shards = Vec::with_capacity(num_shards.min(1024));
    let mut live_seen = 0usize;
    let mut prev_id: Option<usize> = None;
    let manifest = dir.join(MANIFEST_FILE);
    for i in 0..num_shards {
        let record =
            read_shard_record(&manifest, r, i, dim, shard_capacity, next_id, &mut prev_id)?;
        live_seen += record.live;
        let payload = dir.join(shard_payload(i));
        let (storage, quarantined) =
            open_payload_quarantining(dir, i, payload, record.rows, record.cols, record.quantized);
        shards.push(Shard {
            storage,
            ids: record.ids,
            deleted: record.deleted,
            live: record.live,
            stats: record.stats,
            last_used: AtomicU64::new(0),
            quarantined: AtomicBool::new(quarantined),
        });
    }
    if live_seen != live {
        return Err(corrupt(dir, "total live count disagrees with the shards"));
    }
    // The on-disk payload formats win at load time; the index-level setting follows
    // them so a later `compact` preserves what was saved rather than silently
    // re-encoding. `set_quantization` overrides (typed cross-load behavior: a
    // dense-saved snapshot serves dense until the next compact re-encodes it, and
    // vice versa).
    let quantization = shards
        .iter()
        .any(|s| s.storage.is_quantized())
        .then(QuantSpec::default);
    Ok(ShardedCosineIndex {
        shard_capacity,
        dim,
        next_id,
        live,
        shards,
        memory_budget: None,
        routing: true,
        spill_dir: None,
        clock: AtomicU64::new(0),
        counters: RoutingCounters::default(),
        epoch: AtomicU64::new(0),
        cache: QueryCache::new(0),
        quantization,
    })
}

/// Loads either layout behind the [`BlockingIndex`] API. See
/// [`BlockingIndex::load_snapshot`].
pub(crate) fn load_blocking(dir: &Path) -> io::Result<BlockingIndex> {
    if dir.join(crate::delta::DELTA_MANIFEST_FILE).is_file() {
        return crate::delta::load_delta(dir).map(BlockingIndex::Sharded);
    }
    let (layout, mut r) = open_manifest(dir)?;
    match layout {
        LAYOUT_SHARDED => read_sharded_body(dir, &mut r).map(BlockingIndex::Sharded),
        LAYOUT_DENSE => {
            let dim = r_usize(&mut r)?;
            let len = r_usize(&mut r)?;
            let rows = r_usize(&mut r)?;
            if len > rows {
                return Err(corrupt(dir, "dense length exceeds the payload rows"));
            }
            // The dense layout is one monolithic matrix, so there is no cold state to
            // load into — the payload is read here (the sharded layout is the one that
            // starts cold). There is also nothing to degrade around: a single corrupt
            // payload *is* the whole index, so it fails the load with a typed error
            // (with the storage layer's retry backoff for transient faults).
            let payload: PathBuf = dir.join(DENSE_PAYLOAD);
            let matrix: Matrix = SpilledShard::open(payload, rows, dim)?.load_retrying()?;
            Ok(BlockingIndex::Dense(CosineIndex::from_normalized_parts(
                matrix, len,
            )))
        }
        other => Err(corrupt(dir, format!("unknown layout tag {other}"))),
    }
}

/// Saves either layout behind the [`BlockingIndex`] API. See
/// [`BlockingIndex::save_snapshot`].
pub(crate) fn save_blocking(index: &BlockingIndex, dir: &Path) -> io::Result<()> {
    match index {
        BlockingIndex::Dense(dense) => save_dense(dense, dir),
        BlockingIndex::Sharded(sharded) => save_sharded(sharded, dir),
    }
}
