//! Exact top-k cosine similarity search over dense vectors.
//!
//! Sudowoodo's blocking stage vectorizes every data item with the learned embedding model
//! and retrieves, for each left-table item, the `k` nearest right-table items as the
//! candidate set (§II-C step 2). The corpora in this reproduction are small enough that an
//! exact brute-force scan is both simpler and faster than an approximate index.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A searchable collection of L2-normalized dense vectors.
#[derive(Clone, Debug, Default)]
pub struct CosineIndex {
    vectors: Vec<Vec<f32>>,
    dim: usize,
}

/// A single search hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the hit within the indexed collection.
    pub id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// Internal heap entry ordered by ascending score so the heap keeps the current worst hit on
/// top (min-heap over a max-heap container via reversed ordering).
#[derive(PartialEq)]
struct HeapEntry {
    score: f32,
    id: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest score has highest priority.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl CosineIndex {
    /// Builds an index from vectors, L2-normalizing each one.
    pub fn build(vectors: Vec<Vec<f32>>) -> Self {
        let dim = vectors.first().map(|v| v.len()).unwrap_or(0);
        let normalized = vectors
            .into_iter()
            .map(|mut v| {
                assert_eq!(v.len(), dim, "CosineIndex::build: inconsistent dimensions");
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 1e-12 {
                    for x in v.iter_mut() {
                        *x /= norm;
                    }
                }
                v
            })
            .collect();
        CosineIndex { vectors: normalized, dim }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the `k` most similar indexed vectors to `query`, sorted by decreasing score.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.vectors.is_empty() {
            return Vec::new();
        }
        let qnorm: f32 = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (id, v) in self.vectors.iter().enumerate() {
            let dot: f32 = v.iter().zip(query.iter()).map(|(a, b)| a * b).sum();
            let score = if qnorm > 1e-12 { dot / qnorm } else { 0.0 };
            if heap.len() < k {
                heap.push(HeapEntry { score, id });
            } else if let Some(worst) = heap.peek() {
                if score > worst.score {
                    heap.pop();
                    heap.push(HeapEntry { score, id });
                }
            }
        }
        let mut hits: Vec<Neighbor> = heap
            .into_iter()
            .map(|e| Neighbor { id: e.id, score: e.score })
            .collect();
        hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal));
        hits
    }

    /// Retrieves, for every query vector, its `k` nearest indexed vectors, returning the
    /// candidate pair list `(query_index, indexed_index, score)`.
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        let mut pairs = Vec::with_capacity(queries.len() * k);
        for (qi, q) in queries.iter().enumerate() {
            for hit in self.top_k(q, k) {
                pairs.push((qi, hit.id, hit.score));
            }
        }
        pairs
    }
}

/// Evaluation of a blocking candidate set against gold matching pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of gold positive pairs retained in the candidate set.
    pub recall: f32,
    /// Candidate set size.
    pub num_candidates: usize,
    /// Candidate Set Size Ratio: `num_candidates / (|A| * |B|)`.
    pub cssr: f32,
}

/// Evaluates a candidate pair set produced by blocking.
///
/// `candidates` and `gold_positive_pairs` hold `(left, right)` id pairs; `left_size` and
/// `right_size` are the table cardinalities used for the CSSR denominator.
pub fn evaluate_blocking(
    candidates: &[(usize, usize)],
    gold_positive_pairs: &[(usize, usize)],
    left_size: usize,
    right_size: usize,
) -> BlockingQuality {
    use std::collections::HashSet;
    let candidate_set: HashSet<(usize, usize)> = candidates.iter().copied().collect();
    let retained = gold_positive_pairs
        .iter()
        .filter(|p| candidate_set.contains(p))
        .count();
    let recall = if gold_positive_pairs.is_empty() {
        1.0
    } else {
        retained as f32 / gold_positive_pairs.len() as f32
    };
    let total = (left_size * right_size).max(1);
    BlockingQuality {
        recall,
        num_candidates: candidate_set.len(),
        cssr: candidate_set.len() as f32 / total as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        v.to_vec()
    }

    #[test]
    fn top_k_returns_nearest_by_cosine() {
        let index = CosineIndex::build(vec![
            unit(&[1.0, 0.0]),
            unit(&[0.0, 1.0]),
            unit(&[0.7, 0.7]),
        ]);
        let hits = index.top_k(&[1.0, 0.1], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn top_k_handles_k_larger_than_collection() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])]);
        assert_eq!(index.top_k(&[1.0, 1.0], 10).len(), 2);
        assert_eq!(index.top_k(&[1.0, 1.0], 0).len(), 0);
        assert_eq!(index.len(), 2);
        assert_eq!(index.dim(), 2);
        assert!(!index.is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = CosineIndex::build(Vec::new());
        assert!(index.is_empty());
        assert!(index.top_k(&[1.0], 3).is_empty());
    }

    #[test]
    fn zero_query_scores_zero() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0])]);
        let hits = index.top_k(&[0.0, 0.0], 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn knn_join_produces_pairs_per_query() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])]);
        let queries = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])];
        let pairs = index.knn_join(&queries, 1);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 0));
        assert_eq!((pairs[1].0, pairs[1].1), (1, 1));
    }

    #[test]
    fn blocking_evaluation_computes_recall_and_cssr() {
        let candidates = vec![(0, 0), (0, 1), (1, 1), (1, 1)]; // duplicate collapses
        let gold = vec![(0, 0), (1, 0)];
        let q = evaluate_blocking(&candidates, &gold, 2, 2);
        assert!((q.recall - 0.5).abs() < 1e-6);
        assert_eq!(q.num_candidates, 3);
        assert!((q.cssr - 3.0 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn blocking_evaluation_with_no_gold_pairs_is_perfect_recall() {
        let q = evaluate_blocking(&[(0, 0)], &[], 1, 1);
        assert_eq!(q.recall, 1.0);
    }
}
