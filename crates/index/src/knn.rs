//! Exact top-k cosine similarity search over dense vectors.
//!
//! Sudowoodo's blocking stage vectorizes every data item with the learned embedding model
//! and retrieves, for each left-table item, the `k` nearest right-table items as the
//! candidate set (§II-C step 2). The search is exact: the corpus is stored as **one
//! row-major matrix** of L2-normalized rows, and [`CosineIndex::knn_join`] computes
//! query-block × corpusᵀ similarity tiles through the fused
//! [`Matrix::matmul_transpose_b`] GEMM kernel — parallel over query blocks — followed by
//! per-row top-k heap selection. Single-query [`CosineIndex::top_k`] uses the same dot
//! kernel without the tiling.
//!
//! Neighbor selection is **deterministic**: ties on score break toward the smaller id, so
//! blocking candidate sets are bit-for-bit reproducible regardless of thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rayon::prelude::*;
use sudowoodo_nn::matrix::Matrix;

/// Number of query rows per GEMM tile in [`CosineIndex::knn_join`]. Each tile produces a
/// `TILE x n` similarity block that stays cache-resident during selection.
const QUERY_TILE: usize = 256;

/// A searchable collection of L2-normalized dense vectors.
#[derive(Clone, Debug)]
pub struct CosineIndex {
    /// Corpus as one row-major `n x dim` matrix with L2-normalized rows.
    matrix: Matrix,
}

impl Default for CosineIndex {
    fn default() -> Self {
        CosineIndex {
            matrix: Matrix::zeros(0, 0),
        }
    }
}

/// A single search hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the hit within the indexed collection.
    pub id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// Internal heap entry ordered so that the heap's top is the entry that should be evicted
/// first: the *lowest* score, ties broken toward the *largest* id (so the surviving set on
/// a tie is always the smallest ids — the deterministic selection contract).
#[derive(PartialEq)]
struct HeapEntry {
    score: f32,
    id: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: "greater" means "evict sooner" = lower score, then larger id.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Top-k selection over one row of similarity scores, deterministic on ties.
fn select_top_k(scores: impl Iterator<Item = f32>, k: usize) -> Vec<Neighbor> {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (id, score) in scores.enumerate() {
        if heap.len() < k {
            heap.push(HeapEntry { score, id });
        } else if let Some(worst) = heap.peek() {
            // Strict improvement only: on a score tie the incumbent (smaller id, since ids
            // arrive in ascending order) wins.
            if score > worst.score {
                heap.pop();
                heap.push(HeapEntry { score, id });
            }
        }
    }
    let mut hits: Vec<Neighbor> = heap
        .into_iter()
        .map(|e| Neighbor {
            id: e.id,
            score: e.score,
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    hits
}

impl CosineIndex {
    /// Builds an index from vectors, L2-normalizing each one.
    ///
    /// An empty input produces an empty (searchable) index.
    ///
    /// # Panics
    /// Panics with a clear message when the vectors have inconsistent dimensions.
    pub fn build(vectors: Vec<Vec<f32>>) -> Self {
        let Some(first) = vectors.first() else {
            return CosineIndex::default();
        };
        let dim = first.len();
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for (i, v) in vectors.iter().enumerate() {
            assert_eq!(
                v.len(),
                dim,
                "CosineIndex::build: vector {i} has dimension {} but the index dimension \
                 (from vector 0) is {dim}",
                v.len()
            );
            data.extend_from_slice(v);
        }
        Self::from_matrix(Matrix::from_vec(vectors.len(), dim, data))
    }

    /// Builds an index directly from an `n x dim` matrix of row vectors (one copy saved
    /// versus [`CosineIndex::build`] when embeddings already live in a matrix).
    pub fn from_matrix(mut matrix: Matrix) -> Self {
        matrix.l2_normalize_rows_mut(); // in place: no second full-corpus allocation
        CosineIndex { matrix }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.matrix.rows() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// The normalized corpus matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Returns the `k` most similar indexed vectors to `query`, sorted by decreasing
    /// score (ties broken by ascending id).
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        assert_eq!(
            query.len(),
            self.dim(),
            "top_k: query dimension {} does not match index dimension {}",
            query.len(),
            self.dim()
        );
        let qnorm: f32 = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        let inv = if qnorm > 1e-12 { 1.0 / qnorm } else { 0.0 };
        // Score through the same fused GEMM kernel as `knn_join` (a 1-row tile), so both
        // APIs accumulate in the same order and return identical neighbors on near-ties.
        let q = Matrix::from_vec(1, self.dim(), query.to_vec());
        let sims = q.matmul_transpose_b(&self.matrix);
        select_top_k(sims.row(0).iter().map(|&s| s * inv), k)
    }

    /// Retrieves, for every query vector, its `k` nearest indexed vectors, returning the
    /// candidate pair list `(query_index, indexed_index, score)`.
    ///
    /// Queries are processed as [`QUERY_TILE`]-row blocks: each block is one fused
    /// `Q_block * corpusᵀ` GEMM tile followed by per-row heap selection, and blocks fan
    /// out across threads. Results are ordered by query index, then descending score
    /// (ascending id on ties) — identical to running [`CosineIndex::top_k`] per query.
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        if k == 0 || self.is_empty() || queries.is_empty() {
            return Vec::new();
        }
        let dim = self.dim();
        let per_block: Vec<Vec<(usize, usize, f32)>> = queries
            .par_chunks(QUERY_TILE)
            .enumerate()
            .map(|(block_idx, block)| {
                let base = block_idx * QUERY_TILE;
                let mut data = Vec::with_capacity(block.len() * dim);
                let mut inv_norms = Vec::with_capacity(block.len());
                for (qi, q) in block.iter().enumerate() {
                    assert_eq!(
                        q.len(),
                        dim,
                        "knn_join: query {} has dimension {} but the index dimension is {dim}",
                        base + qi,
                        q.len()
                    );
                    data.extend_from_slice(q);
                    let norm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
                    inv_norms.push(if norm > 1e-12 { 1.0 / norm } else { 0.0 });
                }
                let q_block = Matrix::from_vec(block.len(), dim, data);
                let sims = q_block.matmul_transpose_b(&self.matrix); // block x n tile
                let mut pairs = Vec::with_capacity(block.len() * k);
                for (r, &inv) in inv_norms.iter().enumerate() {
                    let hits = select_top_k(sims.row(r).iter().map(|&s| s * inv), k);
                    pairs.extend(hits.into_iter().map(|h| (base + r, h.id, h.score)));
                }
                pairs
            })
            .collect();
        per_block.into_iter().flatten().collect()
    }
}

/// Evaluation of a blocking candidate set against gold matching pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of gold positive pairs retained in the candidate set.
    pub recall: f32,
    /// Candidate set size.
    pub num_candidates: usize,
    /// Candidate Set Size Ratio: `num_candidates / (|A| * |B|)`.
    pub cssr: f32,
}

/// Evaluates a candidate pair set produced by blocking.
///
/// `candidates` and `gold_positive_pairs` hold `(left, right)` id pairs; `left_size` and
/// `right_size` are the table cardinalities used for the CSSR denominator.
pub fn evaluate_blocking(
    candidates: &[(usize, usize)],
    gold_positive_pairs: &[(usize, usize)],
    left_size: usize,
    right_size: usize,
) -> BlockingQuality {
    use std::collections::HashSet;
    let candidate_set: HashSet<(usize, usize)> = candidates.iter().copied().collect();
    let retained = gold_positive_pairs
        .iter()
        .filter(|p| candidate_set.contains(p))
        .count();
    let recall = if gold_positive_pairs.is_empty() {
        1.0
    } else {
        retained as f32 / gold_positive_pairs.len() as f32
    };
    let total = (left_size * right_size).max(1);
    BlockingQuality {
        recall,
        num_candidates: candidate_set.len(),
        cssr: candidate_set.len() as f32 / total as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        v.to_vec()
    }

    #[test]
    fn top_k_returns_nearest_by_cosine() {
        let index = CosineIndex::build(vec![
            unit(&[1.0, 0.0]),
            unit(&[0.0, 1.0]),
            unit(&[0.7, 0.7]),
        ]);
        let hits = index.top_k(&[1.0, 0.1], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn top_k_handles_k_larger_than_collection() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])]);
        assert_eq!(index.top_k(&[1.0, 1.0], 10).len(), 2);
        assert_eq!(index.top_k(&[1.0, 1.0], 0).len(), 0);
        assert_eq!(index.len(), 2);
        assert_eq!(index.dim(), 2);
        assert!(!index.is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = CosineIndex::build(Vec::new());
        assert!(index.is_empty());
        assert!(index.top_k(&[1.0], 3).is_empty());
        assert!(index.knn_join(&[vec![1.0]], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "vector 2 has dimension 3")]
    fn ragged_input_panics_with_offending_index() {
        let _ = CosineIndex::build(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    fn zero_query_scores_zero() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0])]);
        let hits = index.top_k(&[0.0, 0.0], 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn knn_join_produces_pairs_per_query() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])]);
        let queries = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])];
        let pairs = index.knn_join(&queries, 1);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 0));
        assert_eq!((pairs[1].0, pairs[1].1), (1, 1));
    }

    #[test]
    fn ties_break_toward_smaller_ids_deterministically() {
        // Four identical vectors: any top-2 has score 1.0 for all of them; the contract is
        // that the *smallest ids* survive, in ascending order.
        let v = unit(&[0.6, 0.8]);
        let index = CosineIndex::build(vec![v.clone(), v.clone(), v.clone(), v.clone()]);
        let hits = index.top_k(&v, 2);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1]);
        let pairs = index.knn_join(&[v], 2);
        assert_eq!(pairs.iter().map(|p| p.1).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn from_matrix_matches_build() {
        let rows = vec![unit(&[3.0, 4.0]), unit(&[1.0, 0.0])];
        let a = CosineIndex::build(rows.clone());
        let m = Matrix::from_rows(&[rows[0].clone(), rows[1].clone()]);
        let b = CosineIndex::from_matrix(m);
        assert_eq!(a.top_k(&[1.0, 1.0], 2), b.top_k(&[1.0, 1.0], 2));
    }

    #[test]
    fn blocking_evaluation_computes_recall_and_cssr() {
        let candidates = vec![(0, 0), (0, 1), (1, 1), (1, 1)]; // duplicate collapses
        let gold = vec![(0, 0), (1, 0)];
        let q = evaluate_blocking(&candidates, &gold, 2, 2);
        assert!((q.recall - 0.5).abs() < 1e-6);
        assert_eq!(q.num_candidates, 3);
        assert!((q.cssr - 3.0 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn blocking_evaluation_with_no_gold_pairs_is_perfect_recall() {
        let q = evaluate_blocking(&[(0, 0)], &[], 1, 1);
        assert_eq!(q.recall, 1.0);
    }
}
