//! Exact top-k cosine similarity search over dense vectors.
//!
//! Sudowoodo's blocking stage vectorizes every data item with the learned embedding model
//! and retrieves, for each left-table item, the `k` nearest right-table items as the
//! candidate set (§II-C step 2). The search is exact: the corpus is stored as **one
//! row-major matrix** of L2-normalized rows, and [`CosineIndex::knn_join`] computes
//! query-block × corpusᵀ similarity tiles through the fused
//! [`Matrix::matmul_transpose_b`] GEMM kernel — parallel over query blocks — followed by
//! per-row top-k heap selection. Single-query [`CosineIndex::top_k`] uses the same dot
//! kernel without the tiling.
//!
//! Neighbor selection is **deterministic**: ties on score break toward the smaller id, so
//! blocking candidate sets are bit-for-bit reproducible regardless of thread count.
//!
//! The corpus matrix is zero-padded to a multiple of the SIMD row-quad width so that
//! every real row is scored by the same microkernel whatever the corpus size; this keeps
//! per-row scores bit-identical to [`crate::ShardedCosineIndex`] (which pads its shards
//! the same way), so the two layouts return identical neighbors even on exact ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rayon::prelude::*;
use sudowoodo_nn::matrix::Matrix;

/// Number of query rows per GEMM tile in [`CosineIndex::knn_join`]. Each tile produces a
/// `TILE x n` similarity block that stays cache-resident during selection.
const QUERY_TILE: usize = 256;

/// Row-group width of the `A * B^T` microkernel (`dot4`). The corpus matrix is padded
/// with zero rows to a multiple of this so every real row is scored by the same SIMD
/// kernel regardless of corpus size — which keeps scores bit-identical to the sharded
/// index (whose shards are padded the same way) and independent of where a row sits.
pub(crate) const ROW_GROUP: usize = 4;

/// A searchable collection of L2-normalized dense vectors.
#[derive(Clone, Debug)]
pub struct CosineIndex {
    /// Corpus as one row-major matrix with L2-normalized rows, zero-padded to a multiple
    /// of [`ROW_GROUP`] rows; only the first `len` rows are real.
    matrix: Matrix,
    /// Number of real (searchable) corpus rows.
    len: usize,
}

impl Default for CosineIndex {
    fn default() -> Self {
        CosineIndex {
            matrix: Matrix::zeros(0, 0),
            len: 0,
        }
    }
}

/// A single search hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the hit within the indexed collection.
    pub id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// Internal heap entry ordered so that the heap's top is the entry that should be evicted
/// first: the *lowest* score, ties broken toward the *largest* id (so the surviving set on
/// a tie is always the smallest ids — the deterministic selection contract).
#[derive(PartialEq)]
struct HeapEntry {
    score: f32,
    id: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: "greater" means "evict sooner" = lower score, then larger id.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// A bounded top-k accumulator implementing the crate's deterministic selection contract:
/// the surviving set is the top `k` under the total order (score descending, id ascending).
///
/// Both the dense [`CosineIndex`] row selection and the sharded per-shard/merge selection
/// go through this type, so selection semantics cannot drift between the two paths. The
/// order in which candidates are offered does not affect the result — which is also why
/// it is public: a scatter-gather coordinator merging per-replica top-k lists through
/// this same selector produces results bit-identical to a single-process join.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Creates a selector retaining the best `k` candidates.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one candidate. Kept iff it beats the current worst under the total order
    /// (score descending, id ascending); NaN scores never displace an incumbent.
    pub fn offer(&mut self, id: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { score, id });
        } else if let Some(worst) = self.heap.peek() {
            if score > worst.score || (score == worst.score && id < worst.id) {
                self.heap.pop();
                self.heap.push(HeapEntry { score, id });
            }
        }
    }

    /// The retention capacity `k` this selector was created with.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// The `k`-th best score currently retained, or `None` while fewer than `k`
    /// candidates are held. This is the pruning threshold of the sharded index's
    /// routing layer: a shard whose score upper bound is strictly below this value for
    /// every query cannot change the selection.
    pub fn worst_score_when_full(&self) -> Option<f32> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Consumes the selector, returning the survivors sorted by descending score
    /// (ascending id on ties).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut hits: Vec<Neighbor> = self
            .heap
            .into_iter()
            .map(|e| Neighbor {
                id: e.id,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

/// Top-k selection over one row of similarity scores, deterministic on ties.
fn select_top_k(scores: impl Iterator<Item = f32>, k: usize) -> Vec<Neighbor> {
    let mut selector = TopK::new(k);
    for (id, score) in scores.enumerate() {
        selector.offer(id, score);
    }
    selector.into_sorted()
}

/// Validates that row `index` of a vector collection has the expected dimension, panicking
/// with the offending row index and the expected dimension otherwise.
///
/// Shared by [`CosineIndex::build`], [`CosineIndex::knn_join`], and the streaming
/// [`crate::ShardedCosineIndex`] ingestion path so every ragged-input error reads the same.
pub(crate) fn check_row_dim(context: &str, index: usize, actual: usize, expected: usize) {
    if actual != expected {
        panic!(
            "{context}: vector {index} has dimension {actual}, expected {expected} \
             (the dimension of the first indexed vector)"
        );
    }
}

/// Pads a row count up to the kernel row-group width — the one expression behind the
/// dense/sharded score-equivalence invariant, so it lives in exactly one place.
pub(crate) fn padded_rows(rows: usize) -> usize {
    rows.div_ceil(ROW_GROUP) * ROW_GROUP
}

/// Flattens one query block into a `block x dim` matrix plus per-query inverse norms
/// (with the `1e-12` zero-norm guard), validating every query's dimension.
///
/// Shared by [`CosineIndex::knn_join`] and [`crate::ShardedCosineIndex::knn_join`] so
/// tile packing and query normalization cannot drift between the two layouts.
pub(crate) fn pack_query_block(
    context: &str,
    base: usize,
    block: &[Vec<f32>],
    dim: usize,
) -> (Matrix, Vec<f32>) {
    let mut data = Vec::with_capacity(block.len() * dim);
    let mut inv_norms = Vec::with_capacity(block.len());
    for (qi, q) in block.iter().enumerate() {
        check_row_dim(context, base + qi, q.len(), dim);
        data.extend_from_slice(q);
        let norm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
        inv_norms.push(if norm > 1e-12 { 1.0 / norm } else { 0.0 });
    }
    (Matrix::from_vec(block.len(), dim, data), inv_norms)
}

impl CosineIndex {
    /// Builds an index from vectors, L2-normalizing each one.
    ///
    /// An empty input produces an empty (searchable) index.
    ///
    /// # Panics
    /// Panics when the vectors have inconsistent dimensions, naming the offending row
    /// index and the expected dimension.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_index::CosineIndex;
    ///
    /// let index = CosineIndex::build(vec![
    ///     vec![1.0, 0.0],
    ///     vec![0.0, 1.0],
    ///     vec![0.8, 0.6],
    /// ]);
    /// assert_eq!(index.len(), 3);
    ///
    /// let hits = index.top_k(&[1.0, 0.1], 2);
    /// assert_eq!(hits[0].id, 0); // closest direction wins
    /// ```
    pub fn build(vectors: Vec<Vec<f32>>) -> Self {
        let Some(first) = vectors.first() else {
            return CosineIndex::default();
        };
        let dim = first.len();
        let len = vectors.len();
        // Pad the flat buffer directly while flattening — unlike `from_matrix`, no
        // second full-corpus copy is needed to reach the row-quad kernel width.
        let padded = padded_rows(len);
        let mut data = Vec::with_capacity(padded * dim);
        for (i, v) in vectors.iter().enumerate() {
            check_row_dim("CosineIndex::build", i, v.len(), dim);
            data.extend_from_slice(v);
        }
        data.resize(padded * dim, 0.0);
        let mut matrix = Matrix::from_vec(padded, dim, data);
        matrix.l2_normalize_rows_mut(); // pad rows are zero and stay zero
        CosineIndex { matrix, len }
    }

    /// Builds an index directly from an `n x dim` matrix of row vectors (one copy saved
    /// versus [`CosineIndex::build`] when embeddings already live in a matrix, unless
    /// `n` needs padding to the kernel row-group width).
    pub fn from_matrix(mut matrix: Matrix) -> Self {
        matrix.l2_normalize_rows_mut(); // in place: no second full-corpus allocation
        let len = matrix.rows();
        if !len.is_multiple_of(ROW_GROUP) {
            // Zero-pad so every real row is scored by the row-quad SIMD kernel (pad rows
            // never surface: selection only reads the first `len` similarity columns).
            let padded = padded_rows(len);
            let mut data = matrix.data().to_vec();
            data.resize(padded * matrix.cols(), 0.0);
            matrix = Matrix::from_vec(padded, matrix.cols(), data);
        }
        CosineIndex { matrix, len }
    }

    /// Rebuilds an index from a snapshot-loaded matrix whose rows are **already**
    /// normalized and padded ([`crate::snapshot`]). Skipping the second normalization
    /// is what keeps a snapshot round trip bit-identical (renormalizing an
    /// already-unit row divides by a norm within 1 ulp of 1.0 — and can move bits).
    pub(crate) fn from_normalized_parts(matrix: Matrix, len: usize) -> Self {
        CosineIndex { matrix, len }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// The normalized corpus matrix. Rows `len()..` (fewer than the kernel row-group
    /// width) are zero padding, not corpus rows.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Returns the `k` most similar indexed vectors to `query`, sorted by decreasing
    /// score (ties broken by ascending id).
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        check_row_dim("CosineIndex::top_k (query)", 0, query.len(), self.dim());
        let qnorm: f32 = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        let inv = if qnorm > 1e-12 { 1.0 / qnorm } else { 0.0 };
        // Score through the same fused GEMM kernel as `knn_join` (a 1-row tile), so both
        // APIs accumulate in the same order and return identical neighbors on near-ties.
        let q = Matrix::from_vec(1, self.dim(), query.to_vec());
        let sims = q.matmul_transpose_b(&self.matrix);
        select_top_k(sims.row(0)[..self.len].iter().map(|&s| s * inv), k)
    }

    /// Retrieves, for every query vector, its `k` nearest indexed vectors, returning the
    /// candidate pair list `(query_index, indexed_index, score)`.
    ///
    /// Queries are processed as `QUERY_TILE` (256)-row blocks: each block is one fused
    /// `Q_block * corpusᵀ` GEMM tile followed by per-row heap selection, and blocks fan
    /// out across threads. Results are ordered by query index, then descending score
    /// (ascending id on ties) — identical to running [`CosineIndex::top_k`] per query.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_index::CosineIndex;
    ///
    /// let index = CosineIndex::build(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
    /// let pairs = index.knn_join(&[vec![2.0, 0.1], vec![0.1, 3.0]], 1);
    /// // (query index, corpus id, cosine similarity), one hit per query at k = 1.
    /// assert_eq!(pairs.len(), 2);
    /// assert_eq!((pairs[0].0, pairs[0].1), (0, 0));
    /// assert_eq!((pairs[1].0, pairs[1].1), (1, 1));
    /// ```
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        if k == 0 || self.is_empty() || queries.is_empty() {
            return Vec::new();
        }
        let dim = self.dim();
        let per_block: Vec<Vec<(usize, usize, f32)>> = queries
            .par_chunks(QUERY_TILE)
            .enumerate()
            .map(|(block_idx, block)| {
                let base = block_idx * QUERY_TILE;
                let (q_block, inv_norms) =
                    pack_query_block("CosineIndex::knn_join (query)", base, block, dim);
                let sims = q_block.matmul_transpose_b(&self.matrix); // block x n tile
                let mut pairs = Vec::with_capacity(block.len() * k);
                for (r, &inv) in inv_norms.iter().enumerate() {
                    let hits = select_top_k(sims.row(r)[..self.len].iter().map(|&s| s * inv), k);
                    pairs.extend(hits.into_iter().map(|h| (base + r, h.id, h.score)));
                }
                pairs
            })
            .collect();
        per_block.into_iter().flatten().collect()
    }
}

/// Evaluation of a blocking candidate set against gold matching pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of gold positive pairs retained in the candidate set.
    pub recall: f32,
    /// Candidate set size.
    pub num_candidates: usize,
    /// Candidate Set Size Ratio: `num_candidates / (|A| * |B|)`.
    pub cssr: f32,
}

/// Evaluates a candidate pair set produced by blocking.
///
/// `candidates` and `gold_positive_pairs` hold `(left, right)` id pairs; `left_size` and
/// `right_size` are the table cardinalities used for the CSSR denominator.
pub fn evaluate_blocking(
    candidates: &[(usize, usize)],
    gold_positive_pairs: &[(usize, usize)],
    left_size: usize,
    right_size: usize,
) -> BlockingQuality {
    use std::collections::HashSet;
    let candidate_set: HashSet<(usize, usize)> = candidates.iter().copied().collect();
    let retained = gold_positive_pairs
        .iter()
        .filter(|p| candidate_set.contains(p))
        .count();
    let recall = if gold_positive_pairs.is_empty() {
        1.0
    } else {
        retained as f32 / gold_positive_pairs.len() as f32
    };
    let total = (left_size * right_size).max(1);
    BlockingQuality {
        recall,
        num_candidates: candidate_set.len(),
        cssr: candidate_set.len() as f32 / total as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        v.to_vec()
    }

    #[test]
    fn top_k_returns_nearest_by_cosine() {
        let index = CosineIndex::build(vec![
            unit(&[1.0, 0.0]),
            unit(&[0.0, 1.0]),
            unit(&[0.7, 0.7]),
        ]);
        let hits = index.top_k(&[1.0, 0.1], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn top_k_handles_k_larger_than_collection() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])]);
        assert_eq!(index.top_k(&[1.0, 1.0], 10).len(), 2);
        assert_eq!(index.top_k(&[1.0, 1.0], 0).len(), 0);
        assert_eq!(index.len(), 2);
        assert_eq!(index.dim(), 2);
        assert!(!index.is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = CosineIndex::build(Vec::new());
        assert!(index.is_empty());
        assert!(index.top_k(&[1.0], 3).is_empty());
        assert!(index.knn_join(&[vec![1.0]], 3).is_empty());
    }

    #[test]
    fn ragged_input_panics_with_offending_index_and_expected_dim() {
        let err = std::panic::catch_unwind(|| {
            CosineIndex::build(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 2.0, 3.0]])
        })
        .expect_err("ragged input must panic");
        let message = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted message");
        assert!(
            message.contains("CosineIndex::build: vector 2 has dimension 3, expected 2"),
            "unexpected ragged-input message: {message}"
        );
    }

    #[test]
    fn ragged_query_panics_with_offending_index_and_expected_dim() {
        let index = CosineIndex::build(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let err =
            std::panic::catch_unwind(|| index.knn_join(&[vec![1.0, 0.0], vec![1.0, 0.0, 3.0]], 1))
                .expect_err("ragged query must panic");
        let message = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted message");
        assert!(
            message.contains("CosineIndex::knn_join (query): vector 1 has dimension 3, expected 2"),
            "unexpected ragged-query message: {message}"
        );
    }

    #[test]
    fn zero_query_scores_zero() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0])]);
        let hits = index.top_k(&[0.0, 0.0], 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn knn_join_produces_pairs_per_query() {
        let index = CosineIndex::build(vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])]);
        let queries = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0])];
        let pairs = index.knn_join(&queries, 1);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 0));
        assert_eq!((pairs[1].0, pairs[1].1), (1, 1));
    }

    #[test]
    fn ties_break_toward_smaller_ids_deterministically() {
        // Four identical vectors: any top-2 has score 1.0 for all of them; the contract is
        // that the *smallest ids* survive, in ascending order.
        let v = unit(&[0.6, 0.8]);
        let index = CosineIndex::build(vec![v.clone(), v.clone(), v.clone(), v.clone()]);
        let hits = index.top_k(&v, 2);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1]);
        let pairs = index.knn_join(&[v], 2);
        assert_eq!(pairs.iter().map(|p| p.1).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn from_matrix_matches_build() {
        let rows = vec![unit(&[3.0, 4.0]), unit(&[1.0, 0.0])];
        let a = CosineIndex::build(rows.clone());
        let m = Matrix::from_rows(&[rows[0].clone(), rows[1].clone()]);
        let b = CosineIndex::from_matrix(m);
        assert_eq!(a.top_k(&[1.0, 1.0], 2), b.top_k(&[1.0, 1.0], 2));
    }

    #[test]
    fn blocking_evaluation_computes_recall_and_cssr() {
        let candidates = vec![(0, 0), (0, 1), (1, 1), (1, 1)]; // duplicate collapses
        let gold = vec![(0, 0), (1, 0)];
        let q = evaluate_blocking(&candidates, &gold, 2, 2);
        assert!((q.recall - 0.5).abs() < 1e-6);
        assert_eq!(q.num_candidates, 3);
        assert!((q.cssr - 3.0 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn blocking_evaluation_with_no_gold_pairs_is_perfect_recall() {
        let q = evaluate_blocking(&[(0, 0)], &[], 1, 1);
        assert_eq!(q.recall, 1.0);
    }
}
