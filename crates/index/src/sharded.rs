//! Sharded, streaming variant of the cosine blocking index.
//!
//! [`crate::CosineIndex`] stores the whole corpus as **one** row-major matrix, which is
//! the fastest layout as long as the corpus fits one allocation and never changes. Two
//! pressures break that assumption at scale (ROADMAP: "streaming / sharded `CosineIndex`
//! for corpora that exceed one machine"):
//!
//! * **Size** — a single `n x d` matrix must be reallocated and re-normalized wholesale
//!   to grow, and cannot be distributed.
//! * **Streaming** — entity-matching corpora arrive in batches; rebuilding a dense index
//!   per batch is quadratic work over the ingest lifetime.
//!
//! [`ShardedCosineIndex`] answers both: the corpus is partitioned into fixed-capacity
//! **shards**, each a small row-major matrix that reuses the exact GEMM tile path of the
//! dense index. `knn_join` computes per-shard `query-tile x shardᵀ` products (rayon
//! parallel) and merges per-shard candidates through the same bounded-heap top-k selector
//! as the dense path, so results are **deterministic and identical** to a dense index over
//! the same rows. Ingestion is incremental: [`ShardedCosineIndex::add_batch`] appends
//! (normalizing only the new rows), [`ShardedCosineIndex::remove`] tombstones, and
//! [`ShardedCosineIndex::compact`] repacks shards to drop tombstones.
//!
//! Two scale layers sit underneath the shards (both invisible in results):
//!
//! * **Disk spill** ([`crate::storage`]) — under a resident-memory budget
//!   ([`ShardedCosineIndex::set_memory_budget`]), the least-recently-used shard matrices
//!   are serialized to a compact on-disk format after [`ShardedCosineIndex::compact`]
//!   and read back only when a query actually needs them.
//! * **Routing statistics** ([`crate::routing`]) — every shard carries a centroid+radius
//!   summary giving an admissible upper bound on any row's cosine score; shards whose
//!   bound cannot enter the current top-k are skipped, and a skipped spilled shard is
//!   never read from disk.
//!
//! ## Equivalence with the dense index
//!
//! Three invariants make sharded results match a fresh dense build bit-for-bit — same
//! ids *and* same scores, even on exact ties (duplicate rows are normal in EM data):
//!
//! 1. every row is L2-normalized exactly once, with the same per-row op the dense index
//!    uses ([`Matrix::l2_normalize_rows_mut`]);
//! 2. both layouts pad their matrices with zero rows to a multiple of the `dot4` row
//!    group width, so every live row is scored by the same SIMD microkernel regardless
//!    of corpus size or where a shard boundary falls (the `dot4` accumulators are
//!    per-row independent, so grouping does not affect the value — only which kernel
//!    runs does); spilling preserves the matrix bit-for-bit, so a faulted shard scores
//!    identically to a resident one;
//! 3. all candidates — per-shard, per-group, and the cross-group merge — flow through
//!    the crate's single top-k selector, whose (score descending, id ascending) total
//!    order is insertion-order independent; routing skips only shards whose best
//!    possible score is *strictly* below every query's currently retained `k`-th best
//!    (see [`crate::routing`] for the admissibility argument), so pruning never changes
//!    the selected set.
//!
//! Rows keep **stable ids** (their insertion sequence number) across `remove`/`compact`,
//! so downstream candidate pairs remain valid while the index mutates underneath.

use std::cmp::Reverse;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use rayon::prelude::*;

use sudowoodo_nn::matrix::Matrix;

use crate::cache::{fingerprint, QueryCache};
use crate::knn::{check_row_dim, pack_query_block, padded_rows, Neighbor, TopK};
use crate::routing::RoutingStats;
use crate::snapshot;
use crate::storage::{QuantizedMatrix, QuantizedRow, ShardStorage, SpillDir};

/// Number of query rows per GEMM tile in [`ShardedCosineIndex::knn_join`] — the same tile
/// height as the dense index so both paths have identical cache behavior per shard.
const QUERY_TILE: usize = 256;

/// Maximum number of shard groups a single query tile fans out over. Bounds the
/// merge-buffer memory at `MERGE_GROUPS x tile_rows x k` candidates while still keeping
/// every core busy when the query set fits one tile.
const MERGE_GROUPS: usize = 8;

/// Why a [`ShardedCosineIndex::remove`] (or [`crate::BlockingIndex::remove`]) failed.
///
/// Both blocking-index layouts report removal failures through this one type, so error
/// handling cannot drift between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveError {
    /// The id was never assigned by any `add_batch` call (it is at or beyond the next
    /// id the index would hand out).
    NeverAssigned {
        /// The offending id.
        id: usize,
        /// The next id the index will assign; valid ids are strictly below it.
        next_id: usize,
    },
    /// The id was assigned but its row is already removed.
    AlreadyRemoved {
        /// The offending id.
        id: usize,
    },
    /// The dense layout is immutable; removal requires the sharded layout.
    DenseImmutable,
}

impl fmt::Display for RemoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoveError::NeverAssigned { id, next_id } => write!(
                f,
                "id {id} was never assigned (ids 0..{next_id} have been handed out)"
            ),
            RemoveError::AlreadyRemoved { id } => write!(f, "id {id} is already removed"),
            RemoveError::DenseImmutable => write!(
                f,
                "the dense blocking layout is immutable; configure a shard capacity to \
                 stream removals"
            ),
        }
    }
}

impl std::error::Error for RemoveError {}

/// Shard-skipping, disk-fault, and query-cache tallies — the observable effect of the
/// routing/spill/cache/quantization layers (results are unchanged by design, so the
/// counters are how tests and benches see them work).
///
/// The counters split into two lifetimes:
///
/// * **Scan counters** (`shards_visited`, `shards_pruned`, `spill_faults`,
///   `shards_quarantined`, `quant_scans`, `rescored_rows`) are **per join**: every
///   [`ShardedCosineIndex::knn_join_report`] / subset join zeroes them on entry, so a
///   report read after a join describes exactly that join on a reused handle.
/// * **Cache counters** (`cache_hits`, `cache_misses`) are **cumulative** since
///   construction or the last [`ShardedCosineIndex::reset_routing_report`] — hit-rate
///   over a serving window is their whole point, and a cache hit returns before any
///   scan happens.
///
/// Shard counts are per *visit opportunity*: one shard scored (or skipped) for one
/// query tile (with routing disabled, for one query tile in one merge group). Cache
/// counts are per `knn_join` call while the cache is enabled. Quarantine fields are
/// the failure-model half of the report: which shards have been taken out of service
/// because their storage could not be read (see [`JoinOutcome`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingReport {
    /// Shards actually scored against a query tile.
    pub shards_visited: u64,
    /// Shards skipped because their routing bound provably could not enter the top-k.
    pub shards_pruned: u64,
    /// Spilled shards read back from disk (pruned shards never count here).
    pub spill_faults: u64,
    /// `knn_join` calls answered from the query-batch cache (no shard was touched).
    pub cache_hits: u64,
    /// `knn_join` calls that missed the enabled query-batch cache and were computed.
    pub cache_misses: u64,
    /// Shard-quarantine events (a shard whose storage stayed unreadable through the
    /// retry backoff and was taken out of service).
    pub shards_quarantined: u64,
    /// Quantized first-stage scans that actually ran: one per (quantized shard, query
    /// tile) visit. Zero means every visited shard was scored on the dense path.
    pub quant_scans: u64,
    /// Rows gathered for the exact f32 rescore by quantized scans — the second-stage
    /// work. Compare against `live x tiles` to see what the i8 stage filtered out.
    pub rescored_rows: u64,
    /// Positions of the shards **currently** quarantined — live state, not a counter:
    /// populated while the index is serving degraded results and emptied when
    /// [`ShardedCosineIndex::compact`] recovers or drops the shards.
    pub quarantined_shards: Vec<usize>,
}

#[derive(Debug, Default)]
pub(crate) struct RoutingCounters {
    visited: AtomicU64,
    pruned: AtomicU64,
    faults: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    quarantines: AtomicU64,
    quant_scans: AtomicU64,
    rescored_rows: AtomicU64,
}

impl RoutingCounters {
    /// Zeroes the per-join scan counters (visited/pruned/faults/quarantines/quant) —
    /// called on entry to every join so a post-join report describes that join alone.
    /// Cache hit/miss tallies survive: they meter the serving window, not one scan.
    fn reset_scan(&self) {
        self.visited.store(0, Ordering::Relaxed);
        self.pruned.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.quarantines.store(0, Ordering::Relaxed);
        self.quant_scans.store(0, Ordering::Relaxed);
        self.rescored_rows.store(0, Ordering::Relaxed);
    }
}

/// Configuration of the i8 quantized shard tier (see [`crate::storage::QuantizedMatrix`]
/// and the two-stage scan described on [`ShardedCosineIndex::set_quantization`]).
///
/// Results are **bit-identical** to the dense build at any setting — `alpha` trades
/// first-stage selectivity against rescore volume, never correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantSpec {
    /// Candidate-widening factor of the quantized scan: each query keeps at least the
    /// `alpha * k` best approximate rows (plus everything within the admissible error
    /// band of the thresholds) for exact rescoring. Values below 1 behave as 1.
    pub alpha: usize,
}

impl Default for QuantSpec {
    /// `alpha = 2`: rescore roughly twice the requested depth — enough slack that the
    /// error-band terms, not the count, usually decide the candidate set.
    fn default() -> Self {
        QuantSpec { alpha: 2 }
    }
}

/// The full result of a fault-aware join: the candidate pairs plus whether any
/// quarantined shard forced a **degraded** (possibly incomplete) answer.
///
/// The exact-results invariant is explicit here: when `degraded` is `false`, `pairs`
/// is bit-identical to a dense join over the same rows — quarantine never silently
/// weakens results. When `degraded` is `true`, every pair is still a true similarity
/// (quarantine only *removes* candidate rows), but rows held by the shards listed in
/// `quarantined_shards` were not scored.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JoinOutcome {
    /// Candidate pairs `(query_index, stable_id, score)` — the [`ShardedCosineIndex::knn_join`]
    /// contract.
    pub pairs: Vec<(usize, usize, f32)>,
    /// `true` when at least one live shard could not be scored (its storage was
    /// unreadable after retries) and the answer may be missing its rows.
    pub degraded: bool,
    /// Positions of the shards that were skipped as quarantined during this join
    /// (sorted, deduplicated). Empty exactly when `degraded` is `false`.
    pub quarantined_shards: Vec<usize>,
}

/// One fixed-capacity partition of the corpus. Fields are crate-visible so the
/// [`crate::snapshot`] serializer can persist and rebuild shards without an
/// accessor-per-field indirection layer.
#[derive(Debug)]
pub(crate) struct Shard {
    /// Row-major buffer (resident or spilled); rows `0..ids.len()` are real (already
    /// normalized), trailing rows — row-quad padding plus geometric growth slack — are
    /// zero and never surface in results.
    pub(crate) storage: ShardStorage,
    /// Stable id of each real row, ascending (insertion order is preserved shard-to-shard).
    pub(crate) ids: Vec<usize>,
    /// Tombstone flag per real row.
    pub(crate) deleted: Vec<bool>,
    /// Number of rows with `deleted == false`.
    pub(crate) live: usize,
    /// Centroid/radius routing summary of the live rows (admissible superset when rows
    /// were removed since the last recomputation — see [`crate::routing`]).
    pub(crate) stats: RoutingStats,
    /// Logical timestamp of the last search that scored this shard (or the ingestion
    /// that filled it); drives the LRU residency decision. Relaxed atomics: searches
    /// take `&self`, and an approximate recency order is all the budget needs.
    pub(crate) last_used: AtomicU64,
    /// Set when the shard's storage stayed unreadable through the retry backoff (or a
    /// snapshot payload failed validation at load): the shard is skipped by every
    /// query — degrading results instead of failing them — until the next
    /// [`ShardedCosineIndex::compact`] retries the read and either recovers the rows
    /// or drops the shard. Relaxed atomic: queries take `&self`.
    pub(crate) quarantined: AtomicBool,
}

impl Clone for Shard {
    fn clone(&self) -> Self {
        Shard {
            storage: self.storage.clone(), // spilled storage faults into a resident copy
            ids: self.ids.clone(),
            deleted: self.deleted.clone(),
            live: self.live,
            stats: self.stats.clone(),
            last_used: AtomicU64::new(self.last_used.load(Ordering::Relaxed)),
            quarantined: AtomicBool::new(self.quarantined.load(Ordering::Relaxed)),
        }
    }
}

impl Shard {
    /// Lowest id held by this shard (its rows are id-sorted).
    fn min_id(&self) -> usize {
        self.ids.first().copied().unwrap_or(usize::MAX)
    }

    /// `true` when the shard is out of service because its storage could not be read.
    fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Scores `q_block x shardᵀ` and offers every live row to the per-query selectors.
    ///
    /// `inv_norms[r]` is the query-row inverse norm; the scale is applied at offer time
    /// exactly like the dense path (`s * inv`). A spilled shard matrix is scored
    /// straight out of its shared memory mapping (established, CRC-checked once, with
    /// the storage layer's retry backoff for transient I/O faults) — the OS page
    /// cache, not a per-process heap copy, is the working set.
    ///
    /// # Errors
    /// The shard's storage stayed unreadable through the retries; no candidate was
    /// offered and the selectors are untouched — the caller quarantines the shard and
    /// degrades the join instead of failing it.
    fn offer_into(
        &self,
        q_block: &Matrix,
        inv_norms: &[f32],
        selectors: &mut [TopK],
    ) -> Result<(), crate::storage::StorageError> {
        if self.live == 0 {
            return Ok(());
        }
        // The query path borrows the payload (resident memory or the shared CRC-
        // verified mapping) instead of faulting a heap copy per tile; the kernels
        // are identical either way, so scores stay bit-identical.
        let payload = self.storage.query_payload()?;
        let sims = q_block.matmul_transpose_b_view(&payload.view());
        for (r, selector) in selectors.iter_mut().enumerate() {
            let inv = inv_norms[r];
            let row = sims.row(r);
            for (row_idx, &id) in self.ids.iter().enumerate() {
                if !self.deleted[row_idx] {
                    selector.offer(id, row[row_idx] * inv);
                }
            }
        }
        Ok(())
    }
}

/// Lazily quantized copies of one query tile's normalized rows, computed at most once
/// per tile and only when a quantized shard is actually scanned — a fully dense index
/// never pays for query quantization. Shared across the tile's shard visits (including
/// the rayon-parallel merge groups of the unrouted path) through the `OnceLock`.
struct QuantQueries<'a> {
    q_block: &'a Matrix,
    inv_norms: &'a [f32],
    rows: OnceLock<Vec<QuantizedRow>>,
}

impl<'a> QuantQueries<'a> {
    fn new(q_block: &'a Matrix, inv_norms: &'a [f32]) -> Self {
        QuantQueries {
            q_block,
            inv_norms,
            rows: OnceLock::new(),
        }
    }

    /// One [`QuantizedRow`] per tile query, quantizing `q * inv_norm` — the normalized
    /// vector whose dot against a corpus row is the exact score being approximated.
    fn get(&self) -> &[QuantizedRow] {
        self.rows.get_or_init(|| {
            (0..self.q_block.rows())
                .map(|r| {
                    let inv = self.inv_norms[r];
                    let row: Vec<f32> = self.q_block.row(r).iter().map(|&x| x * inv).collect();
                    QuantizedRow::from_row(&row)
                })
                .collect()
        })
    }
}

/// A streaming, sharded collection of L2-normalized dense vectors.
///
/// Functionally a [`crate::CosineIndex`] that can grow in batches, delete rows, score
/// shards in parallel, spill cold shards to disk under a memory budget, and skip shards
/// whose routing bound cannot reach the top-k. Ids returned by searches are **stable
/// insertion ids**: the `i`-th vector ever added has id `i`, forever, regardless of later
/// [`ShardedCosineIndex::remove`] or [`ShardedCosineIndex::compact`] calls.
///
/// # Examples
/// ```
/// use sudowoodo_index::ShardedCosineIndex;
///
/// // Build incrementally: 3 vectors across shards of capacity 2.
/// let mut index = ShardedCosineIndex::new(2);
/// index.add_batch(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// index.add_batch(&[vec![0.8, 0.6]]);
/// assert_eq!((index.len(), index.num_shards()), (3, 2));
///
/// // Search exactly like the dense index.
/// let pairs = index.knn_join(&[vec![1.0, 0.1]], 2);
/// assert_eq!(pairs[0].1, 0);
///
/// // Stream: remove a row and repack; ids stay stable.
/// index.remove(0).unwrap();
/// index.compact();
/// let pairs = index.knn_join(&[vec![1.0, 0.1]], 2);
/// assert_eq!(pairs[0].1, 2); // the [0.8, 0.6] row keeps id 2 after compaction
/// ```
///
/// Constrain resident memory and the cold shards spill to disk (results unchanged):
/// ```
/// use sudowoodo_index::ShardedCosineIndex;
///
/// let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32, 1.0]).collect();
/// let mut index = ShardedCosineIndex::from_vectors(&rows, 8);
/// let before = index.knn_join(&[vec![3.0, 1.0]], 4);
/// index.set_memory_budget(Some(0)); // everything is cold
/// index.compact();                  // the budget is applied here
/// assert_eq!(index.num_spilled_shards(), index.num_shards());
/// assert_eq!(index.knn_join(&[vec![3.0, 1.0]], 4), before);
/// ```
#[derive(Debug)]
pub struct ShardedCosineIndex {
    /// Maximum number of real rows per shard.
    pub(crate) shard_capacity: usize,
    /// Vector dimensionality; `0` until the first non-empty batch fixes it.
    pub(crate) dim: usize,
    /// Next stable id to assign.
    pub(crate) next_id: usize,
    /// Number of live (non-tombstoned) rows across all shards.
    pub(crate) live: usize,
    /// The partitions, in insertion order; `ids` are ascending across and within shards.
    pub(crate) shards: Vec<Shard>,
    /// Resident-memory budget (bytes of shard matrix payload) applied after `compact`;
    /// `None` keeps everything resident.
    pub(crate) memory_budget: Option<usize>,
    /// Whether routing-statistics shard skipping is active.
    pub(crate) routing: bool,
    /// Spill-file directory, created lazily the first time a shard spills.
    pub(crate) spill_dir: Option<SpillDir>,
    /// Logical clock stamping shard use (searches and ingestion).
    pub(crate) clock: AtomicU64,
    /// Pruning/fault observability (results are unaffected by routing, so the counters
    /// are the visible effect).
    pub(crate) counters: RoutingCounters,
    /// Mutation epoch: bumped by every successful `add_batch`/`remove`/`compact`;
    /// stamps (and invalidates) query-cache entries.
    pub(crate) epoch: AtomicU64,
    /// Query-batch result cache consulted by `knn_join` ahead of routing (disabled at
    /// capacity 0, the default — see [`crate::cache`]).
    pub(crate) cache: QueryCache,
    /// i8 quantized-tier configuration; `None` (the default) keeps every shard dense.
    /// Applied to shard storage by [`ShardedCosineIndex::compact`].
    pub(crate) quantization: Option<QuantSpec>,
}

impl Clone for ShardedCosineIndex {
    /// Cloning faults every spilled shard into the clone as resident memory (spill
    /// files are single-owner); the clone re-applies its budget at its next
    /// [`ShardedCosineIndex::compact`]. Counters start at zero, and the clone gets a
    /// fresh, empty query cache with the same capacity.
    fn clone(&self) -> Self {
        ShardedCosineIndex {
            shard_capacity: self.shard_capacity,
            dim: self.dim,
            next_id: self.next_id,
            live: self.live,
            shards: self.shards.clone(),
            memory_budget: self.memory_budget,
            routing: self.routing,
            spill_dir: None,
            clock: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            counters: RoutingCounters::default(),
            epoch: AtomicU64::new(self.epoch.load(Ordering::Relaxed)),
            cache: QueryCache::new(self.cache.capacity()),
            quantization: self.quantization,
        }
    }
}

impl ShardedCosineIndex {
    /// Creates an empty index whose shards hold at most `shard_capacity` vectors each.
    ///
    /// Routing-statistics shard skipping is enabled by default (it never changes
    /// results); no memory budget is set, so nothing spills until
    /// [`ShardedCosineIndex::set_memory_budget`] is called.
    ///
    /// # Panics
    /// Panics when `shard_capacity` is zero.
    pub fn new(shard_capacity: usize) -> Self {
        assert!(
            shard_capacity > 0,
            "ShardedCosineIndex::new: shard_capacity must be positive"
        );
        ShardedCosineIndex {
            shard_capacity,
            dim: 0,
            next_id: 0,
            live: 0,
            shards: Vec::new(),
            memory_budget: None,
            routing: true,
            spill_dir: None,
            clock: AtomicU64::new(0),
            counters: RoutingCounters::default(),
            epoch: AtomicU64::new(0),
            cache: QueryCache::new(0),
            quantization: None,
        }
    }

    /// Builds an index from an initial corpus in one call (`new` + [`Self::add_batch`]).
    pub fn from_vectors(vectors: &[Vec<f32>], shard_capacity: usize) -> Self {
        let mut index = Self::new(shard_capacity);
        index.add_batch(vectors);
        index
    }

    /// Builds an index and immediately applies a resident-memory budget: cold shards
    /// beyond `memory_budget` bytes are spilled to disk before this returns.
    ///
    /// `memory_budget: None` is identical to [`Self::from_vectors`].
    pub fn from_vectors_with_budget(
        vectors: &[Vec<f32>],
        shard_capacity: usize,
        memory_budget: Option<usize>,
    ) -> Self {
        let mut index = Self::from_vectors(vectors, shard_capacity);
        index.set_memory_budget(memory_budget);
        index.compact();
        index
    }

    /// Number of live (searchable) vectors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Vector dimensionality (`0` until the first non-empty batch is added).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards currently allocated (including ones that are all tombstones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of vectors per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of shards whose matrix currently lives on disk.
    pub fn num_spilled_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| !s.storage.is_resident())
            .count()
    }

    /// Bytes of shard-matrix payload currently held in memory — the quantity the
    /// residency budget constrains.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.storage.resident_bytes()).sum()
    }

    /// The resident-memory budget, if any (bytes of shard matrix payload).
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// Sets the resident-memory budget. The budget is **applied by the next
    /// [`Self::compact`]** (mirroring how tombstone space is also reclaimed there), in
    /// both directions: least-recently-used shards spill to disk until the resident
    /// payload fits, and when the budget leaves room — because it was raised or set to
    /// `None` — previously spilled shards are faulted back, most recently used first.
    pub fn set_memory_budget(&mut self, memory_budget: Option<usize>) {
        self.memory_budget = memory_budget;
    }

    /// Enables or disables routing-statistics shard skipping (enabled by default).
    ///
    /// Skipping never changes results (see [`crate::routing`]); disabling it exists for
    /// A/B measurement and for the equivalence test suite.
    pub fn set_routing_enabled(&mut self, enabled: bool) {
        self.routing = enabled;
    }

    /// `true` when routing-statistics shard skipping is active.
    pub fn routing_enabled(&self) -> bool {
        self.routing
    }

    /// Pruning/fault/quantization counters: the scan fields describe **the most recent
    /// join** on this handle (each join zeroes them on entry); the cache fields
    /// accumulate since construction or the last [`Self::reset_routing_report`] — see
    /// [`RoutingReport`] for the split.
    pub fn routing_report(&self) -> RoutingReport {
        RoutingReport {
            shards_visited: self.counters.visited.load(Ordering::Relaxed),
            shards_pruned: self.counters.pruned.load(Ordering::Relaxed),
            spill_faults: self.counters.faults.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            shards_quarantined: self.counters.quarantines.load(Ordering::Relaxed),
            quant_scans: self.counters.quant_scans.load(Ordering::Relaxed),
            rescored_rows: self.counters.rescored_rows.load(Ordering::Relaxed),
            quarantined_shards: self.quarantined_shards(),
        }
    }

    /// Positions of the shards currently out of service with unreadable storage
    /// (sorted; see [`RoutingReport::quarantined_shards`]).
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_quarantined())
            .map(|(i, _)| i)
            .collect()
    }

    /// Resets **all** [`Self::routing_report`] counters to zero, including the
    /// cumulative cache hit/miss tallies (the per-join scan counters are also reset by
    /// every join on entry). Quarantine *flags* are state, not counters — they persist
    /// until [`Self::compact`] recovers or drops the affected shards.
    pub fn reset_routing_report(&self) {
        self.counters.reset_scan();
        self.counters.cache_hits.store(0, Ordering::Relaxed);
        self.counters.cache_misses.store(0, Ordering::Relaxed);
    }

    /// Enables (`Some`) or disables (`None`) the i8 quantized shard tier. Takes effect
    /// at the next [`Self::compact`], which re-encodes every shard's storage to match.
    ///
    /// With quantization on, each shard carries an i8 (per-row scale) copy of its
    /// matrix next to the exact f32 payload, and `knn_join` scans it **two-stage**:
    /// an i8 integer-dot pass selects a widened candidate set (at least
    /// `alpha * k` rows per query, plus every row inside the admissible error band
    /// of the selection thresholds — see [`RoutingStats::quant_scan_epsilon`]), and
    /// the survivors are rescored with the exact f32 kernels. Final ids **and score
    /// bits** are identical to a dense build; the quantized spill/snapshot payloads
    /// (`SWSHARDQ1`) let a spilled shard scan from a ~4x smaller resident footprint,
    /// faulting exact rows only for the rescore.
    pub fn set_quantization(&mut self, spec: Option<QuantSpec>) {
        self.quantization = spec;
    }

    /// The configured quantized tier, if any (see [`Self::set_quantization`]).
    pub fn quantization(&self) -> Option<QuantSpec> {
        self.quantization
    }

    /// Number of shards whose storage currently carries the i8 quantized tier.
    pub fn num_quantized_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.storage.is_quantized())
            .count()
    }

    /// Heap bytes of the i8 quantized tier (codes + scales) across all shards — the
    /// resident scanning footprint of quantized spilled shards, which the memory-
    /// density bench compares against the 4-bytes-per-coordinate dense payload.
    pub fn quantized_payload_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.storage.quantized_payload_bytes())
            .sum()
    }

    /// Sets the query-batch cache capacity, in cached batches (0, the default,
    /// disables the cache). Changing the capacity drops all cached batches.
    ///
    /// With a capacity set, [`Self::knn_join`] first consults the cache under the
    /// batch's normalized-query fingerprint (see [`crate::cache`]): a hit returns the
    /// cached pairs without touching any shard (no GEMM, no disk fault); entries are
    /// invalidated by the mutation epoch, so a repeated batch's hit is bit-identical
    /// to recomputing (see the [`crate::cache`] precision note for the rescaled-batch
    /// nuance). Repeated query batches are the serving workload this exists for.
    pub fn set_query_cache_capacity(&mut self, capacity: usize) {
        self.cache = QueryCache::new(capacity);
    }

    /// The query-batch cache capacity in batches (0 = disabled).
    pub fn query_cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Number of query batches currently cached.
    pub fn query_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The mutation epoch: bumped by every successful [`Self::add_batch`] (of a
    /// non-empty batch), [`Self::remove`], and [`Self::compact`]. Query-cache entries
    /// from earlier epochs never serve.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Pure cache peek: the cached [`Self::knn_join`] result for exactly this batch,
    /// if one was computed under the current epoch. **Never computes anything** and
    /// never touches a shard. Request coalescers (the `sudowoodo-serve` join worker)
    /// use this to answer cache-hitting requests individually and merge only the
    /// misses — merging a hit into a bigger batch would change the fingerprint and
    /// waste the cached work.
    pub fn cached_knn_join(
        &self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Option<Vec<(usize, usize, f32)>> {
        if !self.cache.is_enabled() || k == 0 || self.is_empty() || queries.is_empty() {
            return None;
        }
        let hit = self
            .cache
            .lookup(fingerprint(queries, k, self.dim), self.epoch());
        if hit.is_some() {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records `results` as the cached [`Self::knn_join`] answer for `(queries, k)`
    /// under the current epoch — the insert half of [`Self::cached_knn_join`], for
    /// request coalescers that computed a batch *inside a merged join* and want the
    /// individual batch to hit next time (caching only the merged fingerprint would
    /// miss every per-client repeat).
    ///
    /// `results` must be exactly what `knn_join(queries, k)` returns right now; per-
    /// query scoring is batch-composition-independent (each query row is scored and
    /// selected on its own), so a faithfully split merged result satisfies that.
    /// No-op when the cache is disabled or the request is degenerate.
    pub fn cache_join_result(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        results: Vec<(usize, usize, f32)>,
    ) {
        if !self.cache.is_enabled() || k == 0 || self.is_empty() || queries.is_empty() {
            return;
        }
        self.cache
            .insert(fingerprint(queries, k, self.dim), self.epoch(), results);
    }

    /// Persists the whole index into `dir` (created if missing): a versioned manifest
    /// (dims, shard capacity, id maps, tombstones, routing statistics) plus one payload
    /// file per shard in the [`crate::storage`] spill format — see [`crate::snapshot`]
    /// for the layout. A shard that is already spilled is snapshotted with a plain file
    /// copy; resident data is serialized by the same streaming writer the spill path
    /// uses, so saving never doubles a shard's memory footprint.
    ///
    /// The snapshot is self-contained and process-independent: any number of processes
    /// can [`ShardedCosineIndex::load_snapshot`] it concurrently, and loaded indexes
    /// never modify or delete it. Treat a published snapshot as immutable — do not
    /// save over a directory while **another live process** is serving from it (cold
    /// loaders re-read payloads lazily by path and could pair an old manifest with
    /// new bytes); republish into a fresh directory and switch readers over instead
    /// (see [`crate::snapshot`]).
    ///
    /// # Errors
    /// Any I/O failure; also [`std::io::ErrorKind::InvalidInput`] when saving a
    /// *mutated* snapshot-loaded index back into the directory currently backing it
    /// (its shards moved position, and overwriting the files under the index's own
    /// cold handles would corrupt it — save into a fresh directory instead; saving an
    /// **unmutated** loaded index back into its own directory is fine and cheap).
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_index::ShardedCosineIndex;
    ///
    /// let dir = std::env::temp_dir().join(format!("swidx-doc-{}", std::process::id()));
    /// let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
    /// let index = ShardedCosineIndex::from_vectors(&rows, 2);
    /// index.save_snapshot(&dir).unwrap();
    ///
    /// // Another process would do exactly this; the load reads only the manifest.
    /// let loaded = ShardedCosineIndex::load_snapshot(&dir).unwrap();
    /// assert_eq!(loaded.num_spilled_shards(), loaded.num_shards()); // cold start
    /// let queries = vec![vec![0.9, 0.1]];
    /// assert_eq!(loaded.knn_join(&queries, 2), index.knn_join(&queries, 2));
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn save_snapshot(&self, dir: &Path) -> io::Result<()> {
        snapshot::save_sharded(self, dir)
    }

    /// Publishes this index into `dir` as an **incremental delta** over the snapshot
    /// in `base_dir` (full or itself a delta — chains compose): only shards whose
    /// matrix changed since the base get a payload written; unchanged shards are
    /// recorded as references into the base chain, and tombstone-only changes cost a
    /// few manifest bytes. See [`crate::delta`] for the format, the epoch-fingerprint
    /// chain validation, and the crash-consistency story (manifest last, atomic
    /// rename — a crashed publish leaves the base untouched and loadable).
    ///
    /// The natural workflow is load-mutate-publish:
    /// [`ShardedCosineIndex::load_snapshot`] the current epoch (every shard then
    /// inherits for free), `add_batch`/`remove`, and publish the delta into a fresh
    /// sibling directory. [`ShardedCosineIndex::load_snapshot`] on the delta directory
    /// resolves the chain automatically and is bit-identical to a full snapshot of the
    /// same index.
    ///
    /// # Errors
    /// Any I/O failure; `InvalidInput` when the target equals the base, already holds
    /// a full snapshot, or the index geometry (dimension / shard capacity) changed
    /// against the base; `InvalidData` when the base chain fails validation.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_index::ShardedCosineIndex;
    ///
    /// let root = std::env::temp_dir().join(format!("swdelta-doc-{}", std::process::id()));
    /// let base = root.join("epoch-0");
    /// let delta = root.join("epoch-1");
    /// let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
    /// ShardedCosineIndex::from_vectors(&rows, 2).save_snapshot(&base).unwrap();
    ///
    /// let mut index = ShardedCosineIndex::load_snapshot(&base).unwrap();
    /// index.add_batch(&[vec![0.0, -1.0]]);
    /// let report = index.save_delta_snapshot(&base, &delta).unwrap();
    /// assert!(report.inherited_shards >= 1); // the untouched shard was not rewritten
    ///
    /// let loaded = ShardedCosineIndex::load_snapshot(&delta).unwrap();
    /// assert_eq!(loaded.len(), 4);
    /// # std::fs::remove_dir_all(&root).unwrap();
    /// ```
    pub fn save_delta_snapshot(
        &self,
        base_dir: &Path,
        dir: &Path,
    ) -> io::Result<crate::delta::DeltaSaveReport> {
        crate::delta::save_delta(self, base_dir, dir)
    }

    /// Loads a snapshot written by [`ShardedCosineIndex::save_snapshot`] — **cold**:
    /// only the manifest is read (O(shards), not O(corpus)), every shard starts in the
    /// spilled state backed by the snapshot payload, and queries fault shards in
    /// transiently exactly like disk-spilled shards (routing statistics, restored from
    /// the manifest, keep pruned shards from ever touching the payload files).
    ///
    /// To warm up, set a residency budget (or none) and [`ShardedCosineIndex::compact`]
    /// — the regular LRU policy then faults the hot shards resident. The loaded index
    /// starts with routing enabled, no memory budget, a disabled query cache, and fresh
    /// counters/epoch; search results are id- and score-identical to the saved index in
    /// every configuration.
    ///
    /// A directory published by [`ShardedCosineIndex::save_delta_snapshot`] loads
    /// through its base chain automatically ([`crate::delta`]) — still cold, still
    /// O(manifests).
    ///
    /// # Errors
    /// I/O failures, a missing/foreign/corrupt manifest, payload files whose size
    /// disagrees with the manifest, a delta whose base chain fails validation, or a
    /// snapshot holding the dense layout (load that through
    /// [`crate::BlockingIndex::load_snapshot`]).
    pub fn load_snapshot(dir: &Path) -> io::Result<ShardedCosineIndex> {
        snapshot::load_sharded(dir)
    }

    /// Number of tombstoned rows still occupying shard slots (reclaimed by
    /// [`Self::compact`]).
    pub fn num_tombstones(&self) -> usize {
        self.shards.iter().map(|s| s.ids.len() - s.live).sum()
    }

    /// `true` when `id` is currently live in the index.
    pub fn contains(&self, id: usize) -> bool {
        self.locate(id).is_some()
    }

    /// Appends a batch of vectors, returning the stable id range assigned to them.
    ///
    /// The first non-empty batch fixes the index dimensionality. New rows are
    /// L2-normalized on ingestion (once — exactly like a dense build); existing rows are
    /// never touched, and the tail shard's buffer grows geometrically (copied at most
    /// `log(shard_capacity)` times over a shard's lifetime), so repeated `add_batch`
    /// calls cost amortized time proportional to the batch, not the corpus. A spilled
    /// tail shard with room left is faulted back to memory to take the new rows; the
    /// routing statistics of every shard that received rows are updated incrementally
    /// (O(new rows), see [`RoutingStats::append`] — the bound may loosen slightly
    /// until the next [`Self::compact`] recomputes it exactly).
    ///
    /// # Panics
    /// Panics when a vector's dimension disagrees with the index dimension, naming the
    /// offending row and the expected dimension.
    pub fn add_batch(&mut self, vectors: &[Vec<f32>]) -> std::ops::Range<usize> {
        let start = self.next_id;
        if vectors.is_empty() {
            return start..start;
        }
        if self.next_id == 0 {
            // First batch ever fixes the dimensionality — even a degenerate 0, so that a
            // later batch of different width gets the ragged-input error, not a crash.
            self.dim = vectors[0].len();
        }
        let dim = self.dim;
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for (i, v) in vectors.iter().enumerate() {
            check_row_dim("ShardedCosineIndex::add_batch", i, v.len(), dim);
            data.extend_from_slice(v);
        }
        // Normalize the new rows once, with the same per-row op the dense index applies.
        let mut batch = Matrix::from_vec(vectors.len(), dim, data);
        batch.l2_normalize_rows_mut();

        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut offset = 0;
        while offset < vectors.len() {
            let shard_room = match self.shards.last() {
                Some(s) if s.ids.len() < self.shard_capacity => self.shard_capacity - s.ids.len(),
                _ => {
                    self.shards.push(Shard {
                        storage: ShardStorage::Resident(Matrix::zeros(0, dim)),
                        ids: Vec::new(),
                        deleted: Vec::new(),
                        live: 0,
                        stats: RoutingStats::default(),
                        last_used: AtomicU64::new(stamp),
                        quarantined: AtomicBool::new(false),
                    });
                    self.shard_capacity
                }
            };
            let take = shard_room.min(vectors.len() - offset);
            let shard = self.shards.last_mut().expect("shard ensured above");
            let old_filled = shard.ids.len();
            let new_filled = old_filled + take;
            let needed = padded_rows(new_filled);
            // Ingestion mutates the buffer, so a spilled tail shard returns to memory.
            // Mutation has no degraded mode (dropping ingested rows would be silent
            // data loss), so an unreadable tail shard — after the storage layer's
            // retries — still panics, with the typed error naming the file.
            let matrix = shard
                .storage
                .make_resident()
                .unwrap_or_else(|e| panic!("ShardedCosineIndex::add_batch: {e}"));
            if needed > matrix.rows() {
                // Grow geometrically (capped at the shard capacity) so per-row appends
                // amortize; the slack rows are zero, which the scoring kernel treats as
                // more padding (skipped in selection, and `dot4` scores each row
                // independently, so real-row scores are unaffected).
                let grown = padded_rows(
                    (matrix.rows() * 2).clamp(needed, padded_rows(self.shard_capacity).max(needed)),
                );
                let mut rows = Vec::with_capacity(grown * dim);
                rows.extend_from_slice(&matrix.data()[..old_filled * dim]);
                rows.resize(grown * dim, 0.0);
                *matrix = Matrix::from_vec(grown, dim, rows);
            }
            if dim > 0 {
                matrix.data_mut()[old_filled * dim..new_filled * dim]
                    .copy_from_slice(&batch.data()[offset * dim..(offset + take) * dim]);
            }
            for i in 0..take {
                shard.ids.push(start + offset + i);
                shard.deleted.push(false);
            }
            shard.live += take;
            // New rows move the centroid, so the old radius alone is no longer a
            // bound; the incremental update folds just the new rows in (the resident
            // matrix is at hand — `make_resident` above — and re-borrowing it here is
            // free).
            let resident = shard
                .storage
                .make_resident()
                .expect("made resident above; a resident shard cannot fault");
            shard.stats.append(resident, old_filled..new_filled);
            shard.last_used.store(stamp, Ordering::Relaxed);
            offset += take;
        }
        self.next_id = start + vectors.len();
        self.live += vectors.len();
        self.epoch.fetch_add(1, Ordering::Relaxed); // invalidates cached query batches
        start..self.next_id
    }

    /// Finds the shard and row holding live id `id` (ids are sorted across and within
    /// shards, so both lookups are binary searches).
    fn locate(&self, id: usize) -> Option<(usize, usize)> {
        let shard_idx = match self.shards.partition_point(|s| s.min_id() <= id) {
            0 => return None,
            p => p - 1,
        };
        let shard = &self.shards[shard_idx];
        let row = shard.ids.binary_search(&id).ok()?;
        (!shard.deleted[row]).then_some((shard_idx, row))
    }

    /// Tombstones the row with stable id `id`. The slot is reclaimed by
    /// [`Self::compact`].
    ///
    /// # Errors
    /// [`RemoveError::NeverAssigned`] when `id` was never handed out by
    /// [`Self::add_batch`]; [`RemoveError::AlreadyRemoved`] when it was assigned but its
    /// row is already removed. Both leave the index unchanged.
    pub fn remove(&mut self, id: usize) -> Result<(), RemoveError> {
        if id >= self.next_id {
            return Err(RemoveError::NeverAssigned {
                id,
                next_id: self.next_id,
            });
        }
        let Some((shard_idx, row)) = self.locate(id) else {
            return Err(RemoveError::AlreadyRemoved { id });
        };
        let shard = &mut self.shards[shard_idx];
        shard.deleted[row] = true;
        shard.live -= 1;
        self.live -= 1;
        // Removal is O(1): the routing statistics are left covering a superset of the
        // live rows, which keeps their bound admissible (see `crate::routing`); the
        // next `compact` recomputes them exactly. Cache invalidation is O(1) too —
        // the epoch bump orphans every cached batch.
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Repacks all surviving rows into full shards, dropping tombstones, then
    /// reconciles shard residency with the memory budget in LRU order — cold shards
    /// spill, and hot spilled shards fault back when the budget (raised, or removed
    /// with `None`) leaves them room; see [`Self::set_memory_budget`]. Stable ids and
    /// search results are unchanged; returns the number of tombstones reclaimed.
    ///
    /// Compaction is also the **quarantine recovery point**: a shard quarantined by a
    /// degraded join (see [`Self::knn_join_report`]) gets its storage re-read here —
    /// a transient fault that has passed restores the rows and clears the flag; a
    /// still-unreadable shard is dropped (its rows are lost, a warning names the file)
    /// so the index returns to non-degraded service either way.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.num_tombstones();
        if reclaimed > 0 || self.shards.iter().any(|s| s.is_quarantined()) {
            self.repack();
        }
        // Re-encode storage to match the quantization setting before the budget pass,
        // so shards spilled under the budget land in the matching payload format.
        self.apply_quantization();
        self.apply_memory_budget();
        // Compaction never changes results, but the epoch bump is deliberately
        // conservative: cached batches are cheap to recompute once, reasoning about a
        // cache serving across arbitrary structural changes is not.
        self.epoch.fetch_add(1, Ordering::Relaxed);
        reclaimed
    }

    /// Rebuilds full shards from the surviving rows (faulting spilled sources in),
    /// recomputing routing statistics and carrying each row's source recency stamp so
    /// the LRU budget still sees which data was hot.
    ///
    /// This is where quarantined shards are resolved: their storage is re-read (with
    /// the retry backoff); a recovered read carries the rows into the new shards, a
    /// still-unreadable shard is dropped with a warning and the live count shrinks.
    fn repack(&mut self) {
        let dim = self.dim;
        let old_shards = std::mem::take(&mut self.shards);
        // One pass in id order: rows are already normalized, so compaction is pure
        // copying. `(id, row, recency of the source shard)` per survivor.
        let mut survivors: Vec<(usize, Vec<f32>, u64)> = Vec::with_capacity(self.live);
        for (i, shard) in old_shards.iter().enumerate() {
            if shard.live == 0 {
                continue;
            }
            let recency = shard.last_used.load(Ordering::Relaxed);
            // Faults a spilled source transiently; also the quarantine-recovery read.
            let matrix = match shard.storage.matrix() {
                Ok(matrix) => matrix,
                Err(e) => {
                    let e = e.with_shard(i);
                    eprintln!(
                        "warning: ShardedCosineIndex::compact: dropping {} unreadable \
                         row(s) — {e}",
                        shard.live
                    );
                    continue;
                }
            };
            for (row, &id) in shard.ids.iter().enumerate() {
                if !shard.deleted[row] {
                    survivors.push((id, matrix.row(row).to_vec(), recency));
                }
            }
        }
        drop(old_shards); // spill files of the old shards are deleted here
        self.live = survivors.len(); // shrinks when an unreadable shard was dropped
        for chunk in survivors.chunks(self.shard_capacity) {
            let mut rows = Vec::with_capacity(padded_rows(chunk.len()) * dim);
            for (_, row, _) in chunk {
                rows.extend_from_slice(row);
            }
            rows.resize(padded_rows(chunk.len()) * dim, 0.0);
            let matrix = Matrix::from_vec(padded_rows(chunk.len()), dim, rows);
            let deleted = vec![false; chunk.len()];
            let stats = RoutingStats::compute(&matrix, &deleted);
            let recency = chunk.iter().map(|&(_, _, r)| r).max().unwrap_or(0);
            self.shards.push(Shard {
                storage: ShardStorage::Resident(matrix),
                ids: chunk.iter().map(|(id, _, _)| *id).collect(),
                deleted,
                live: chunk.len(),
                stats,
                last_used: AtomicU64::new(recency),
                quarantined: AtomicBool::new(false),
            });
        }
    }

    /// Re-encodes every shard's storage to match [`Self::quantization`]: with the tier
    /// enabled, dense shards gain an i8 quantized copy; with it disabled, quantized
    /// shards drop theirs. Transitions go through the resident state (a mismatched
    /// spilled shard is faulted in, re-encoded, and re-spilled by the budget pass that
    /// follows). A shard whose storage cannot be read keeps its current format with a
    /// warning — queries retry it lazily, and results are unaffected either way.
    fn apply_quantization(&mut self) {
        let want = self.quantization.is_some();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if shard.storage.is_quantized() == want {
                continue;
            }
            if !shard.storage.is_resident() {
                self.counters.faults.fetch_add(1, Ordering::Relaxed);
            }
            // `make_resident` lands on the plain dense state from every variant.
            if let Err(e) = shard.storage.make_resident() {
                let e = e.with_shard(i);
                eprintln!(
                    "warning: ShardedCosineIndex: cannot re-encode shard storage, \
                     keeping its current format: {e}"
                );
                continue;
            }
            if want {
                shard.storage.quantize_resident();
            }
        }
    }

    /// Reconciles shard residency with the budget, in LRU order and in both
    /// directions: most-recently-used shards are kept (or faulted back) resident while
    /// they fit, and the cold remainder spills. Without a budget, every spilled shard
    /// is faulted back. Spill I/O errors degrade gracefully: the shard stays resident
    /// and a warning is printed (spilling is an optimization, never a correctness
    /// requirement).
    fn apply_memory_budget(&mut self) {
        let Some(budget) = self.memory_budget else {
            // No budget: everything belongs in memory again. An unreadable shard
            // stays spilled with a warning — queries keep retrying it lazily.
            for (i, shard) in self.shards.iter_mut().enumerate() {
                if !shard.storage.is_resident() {
                    self.counters.faults.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = shard.storage.make_resident() {
                        let e = e.with_shard(i);
                        eprintln!(
                            "warning: ShardedCosineIndex: cannot fault shard back, \
                             keeping spilled: {e}"
                        );
                    }
                }
            }
            return;
        };
        // Most-recently-used first; newer shards win ties so the tail shard (the one
        // ingestion appends to) tends to stay resident.
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by_key(|&i| {
            (
                Reverse(self.shards[i].last_used.load(Ordering::Relaxed)),
                Reverse(i),
            )
        });
        let mut dir = self.spill_dir.clone();
        let mut resident = 0usize;
        for i in order {
            let shard = &mut self.shards[i];
            let bytes = shard.storage.payload_bytes();
            if resident + bytes <= budget {
                resident += bytes;
                if !shard.storage.is_resident() {
                    // The budget leaves room for this hot shard: fault it back. An
                    // unreadable shard stays spilled (queries retry it lazily).
                    self.counters.faults.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = shard.storage.make_resident() {
                        let e = e.with_shard(i);
                        eprintln!(
                            "warning: ShardedCosineIndex: cannot fault shard back, \
                             keeping spilled: {e}"
                        );
                        resident -= bytes;
                    }
                }
            } else if shard.storage.is_resident() {
                if dir.is_none() {
                    match SpillDir::create() {
                        Ok(created) => dir = Some(created),
                        Err(e) => {
                            eprintln!("warning: ShardedCosineIndex: cannot create spill dir: {e}");
                            return;
                        }
                    }
                }
                let dir = dir.as_ref().expect("ensured above");
                if let Err(e) = shard.storage.spill(dir) {
                    eprintln!("warning: ShardedCosineIndex: spill failed, keeping resident: {e}");
                    resident += bytes;
                }
            }
        }
        self.spill_dir = dir;
    }

    /// Returns the `k` most similar live vectors to `query`, sorted by descending score
    /// (ties broken by ascending stable id) — the dense [`crate::CosineIndex::top_k`]
    /// contract.
    ///
    /// Delegates to [`Self::knn_join`] with a single query (one shard-scoring/merge
    /// implementation to keep correct), so the shards still fan out across threads and
    /// routing-based skipping applies.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        check_row_dim(
            "ShardedCosineIndex::top_k (query)",
            0,
            query.len(),
            self.dim,
        );
        let queries = [query.to_vec()];
        self.knn_join(&queries, k)
            .into_iter()
            .map(|(_, id, score)| Neighbor { id, score })
            .collect()
    }

    /// Retrieves, for every query vector, its `k` nearest live vectors, returning the
    /// candidate pair list `(query_index, stable_id, score)`.
    ///
    /// Queries fan out across threads in `QUERY_TILE` (256)-row blocks. Within a block,
    /// the shard scan depends on the routing switch:
    ///
    /// * **Routing enabled** (the default) — the block visits all shards *sequentially*
    ///   in decreasing order of their cosine upper bound, sharing one set of per-query
    ///   bounded heaps, and skips every shard that provably cannot place a row in any
    ///   query's top-k. A skipped shard's matrix is never touched — a spilled one is
    ///   never read from disk. Sequential scanning is what makes the bound effective:
    ///   the heaps tighten after the most promising shard, so cold shards prune. Query
    ///   tiles (the dominant axis of join workloads) still run in parallel.
    /// * **Routing disabled** — shards fan out in up to `MERGE_GROUPS` contiguous
    ///   groups scored in parallel, each with its own heaps (memory: groups x block
    ///   rows x k candidates); the group-local top-k lists then merge through the same
    ///   selector. This is the layout-throughput mode for workloads where nothing can
    ///   prune (and the A/B baseline for the routing tests).
    ///
    /// Output ordering matches the dense [`crate::CosineIndex::knn_join`] either way:
    /// query index, then descending score (ascending id on ties) — selection is a total
    /// order, so neither the grouping nor the pruning is visible in results (see
    /// [`crate::routing`] for the admissibility argument).
    ///
    /// # Panics
    /// Panics when a query's dimension disagrees with the index dimension.
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        self.knn_join_report(queries, k).pairs
    }

    /// [`Self::knn_join`] with the failure-model envelope: the pairs plus whether any
    /// quarantined shard made the answer **degraded** (see [`JoinOutcome`]).
    ///
    /// A shard whose storage cannot be read even after the retry backoff is
    /// quarantined — flagged, skipped, counted in [`Self::routing_report`] — and the
    /// join completes over the readable shards instead of panicking the query thread.
    /// When no shard is quarantined (`degraded == false`), the result is bit-identical
    /// to a dense join over the same rows; degraded results are never cached, so a
    /// later non-degraded join repairs the answer. [`Self::compact`] retries and then
    /// recovers or drops quarantined shards.
    pub fn knn_join_report(&self, queries: &[Vec<f32>], k: usize) -> JoinOutcome {
        // Scan counters describe one join at a time on a reused handle; cache counters
        // keep accumulating (see `RoutingReport`).
        self.counters.reset_scan();
        if k == 0 || self.is_empty() || queries.is_empty() {
            return JoinOutcome::default();
        }
        // Query-batch cache, consulted ahead of routing: a repeated batch answers
        // without touching a single shard (see `crate::cache` for keying and the
        // epoch-invalidation argument). Disabled (capacity 0) by default. Only
        // non-degraded results are ever inserted, so a hit is always a complete
        // answer (computed while every shard it covered was readable).
        let cache_key = if self.cache.is_enabled() {
            let key = fingerprint(queries, k, self.dim);
            if let Some(hit) = self.cache.lookup(key, self.epoch()) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return JoinOutcome {
                    pairs: hit,
                    degraded: false,
                    quarantined_shards: Vec::new(),
                };
            }
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            Some(key)
        } else {
            None
        };
        let dim = self.dim;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let group_size = self.shards.len().div_ceil(MERGE_GROUPS).max(1);
        let all_shards: Vec<usize> = (0..self.shards.len()).collect();
        let per_block: Vec<Vec<(usize, usize, f32)>> = queries
            .par_chunks(QUERY_TILE)
            .enumerate()
            .map(|(block_idx, block)| {
                let base = block_idx * QUERY_TILE;
                let (q_block, inv_norms) =
                    pack_query_block("ShardedCosineIndex::knn_join (query)", base, block, dim);
                let quant_queries = QuantQueries::new(&q_block, &inv_norms);
                let selectors = if self.routing {
                    // One shared selector set, best-bound-first scan with pruning.
                    let mut selectors: Vec<TopK> = (0..block.len()).map(|_| TopK::new(k)).collect();
                    self.offer_shards_routed(
                        block,
                        &q_block,
                        &inv_norms,
                        &quant_queries,
                        &mut selectors,
                        stamp,
                        &all_shards,
                    );
                    selectors
                } else {
                    // Rayon-parallel per-shard-group products, each with its own bounded
                    // heaps, merged deterministically.
                    let per_group: Vec<Vec<Vec<Neighbor>>> = self
                        .shards
                        .par_chunks(group_size)
                        .enumerate()
                        .map(|(group_idx, group)| {
                            let mut selectors: Vec<TopK> =
                                (0..block.len()).map(|_| TopK::new(k)).collect();
                            for (j, shard) in group.iter().enumerate() {
                                if shard.live > 0 && !shard.is_quarantined() {
                                    self.counters.visited.fetch_add(1, Ordering::Relaxed);
                                    if !shard.storage.is_resident() {
                                        self.counters.faults.fetch_add(1, Ordering::Relaxed);
                                    }
                                    if let Err(e) = self.offer_shard(
                                        shard,
                                        &q_block,
                                        &inv_norms,
                                        &quant_queries,
                                        &mut selectors,
                                    ) {
                                        self.quarantine(group_idx * group_size + j, e);
                                    }
                                }
                                shard.last_used.store(stamp, Ordering::Relaxed);
                            }
                            selectors.into_iter().map(TopK::into_sorted).collect()
                        })
                        .collect();
                    let mut selectors: Vec<TopK> = (0..block.len()).map(|_| TopK::new(k)).collect();
                    for group_hits in per_group {
                        for (r, hits) in group_hits.into_iter().enumerate() {
                            for hit in hits {
                                selectors[r].offer(hit.id, hit.score);
                            }
                        }
                    }
                    selectors
                };
                let mut pairs = Vec::with_capacity(block.len() * k);
                for (r, selector) in selectors.into_iter().enumerate() {
                    pairs.extend(
                        selector
                            .into_sorted()
                            .into_iter()
                            .map(|h| (base + r, h.id, h.score)),
                    );
                }
                pairs
            })
            .collect();
        let pairs: Vec<(usize, usize, f32)> = per_block.into_iter().flatten().collect();
        // Shards that were skipped as quarantined — whether they entered the join that
        // way or failed during it — made this answer incomplete.
        let quarantined_shards: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live > 0 && s.is_quarantined())
            .map(|(i, _)| i)
            .collect();
        let degraded = !quarantined_shards.is_empty();
        if let Some(key) = cache_key {
            if !degraded {
                self.cache.insert(key, self.epoch(), pairs.clone());
            }
        }
        JoinOutcome {
            pairs,
            degraded,
            quarantined_shards,
        }
    }

    /// [`Self::knn_join_report`] restricted to a subset of **shard positions** — the
    /// server-side half of distributed scatter-gather serving. A coordinator that
    /// partitions `0..num_shards()` across serve processes and merges the per-subset
    /// pairs through the same [`TopK`] selector reconstructs the whole-index join
    /// bit-identically: selection is a total order, so splitting the corpus by shard
    /// and merging per-subset top-k lists cannot change the surviving set.
    ///
    /// Shard positions refer to the current shard layout (stable for a cold-loaded
    /// snapshot, which is the distributed deployment model). Duplicates in
    /// `shard_subset` are ignored. The query-batch cache is **bypassed** in both
    /// directions: its fingerprint does not include the subset, so a subset answer
    /// must never be served from — or inserted as — a whole-index result.
    ///
    /// `degraded` / `quarantined_shards` report quarantined shards *within the
    /// subset* only, so a coordinator can attribute the loss to the owning process.
    ///
    /// # Panics
    /// Panics when a subset position is out of range or a query's dimension
    /// disagrees with the index dimension.
    pub fn knn_join_subset_report(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        shard_subset: &[usize],
    ) -> JoinOutcome {
        self.counters.reset_scan();
        let mut subset: Vec<usize> = shard_subset.to_vec();
        subset.sort_unstable();
        subset.dedup();
        if let Some(&bad) = subset.iter().find(|&&s| s >= self.shards.len()) {
            panic!(
                "ShardedCosineIndex::knn_join_subset_report: shard position {bad} out of \
                 range (index has {} shards)",
                self.shards.len()
            );
        }
        if k == 0 || self.is_empty() || queries.is_empty() || subset.is_empty() {
            return JoinOutcome::default();
        }
        let dim = self.dim;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let per_block: Vec<Vec<(usize, usize, f32)>> = queries
            .par_chunks(QUERY_TILE)
            .enumerate()
            .map(|(block_idx, block)| {
                let base = block_idx * QUERY_TILE;
                let (q_block, inv_norms) =
                    pack_query_block("ShardedCosineIndex::knn_join (query)", base, block, dim);
                let quant_queries = QuantQueries::new(&q_block, &inv_norms);
                let mut selectors: Vec<TopK> = (0..block.len()).map(|_| TopK::new(k)).collect();
                if self.routing {
                    // Same best-bound-first pruning scan as the whole-index join,
                    // considering only the subset.
                    self.offer_shards_routed(
                        block,
                        &q_block,
                        &inv_norms,
                        &quant_queries,
                        &mut selectors,
                        stamp,
                        &subset,
                    );
                } else {
                    for &i in &subset {
                        let shard = &self.shards[i];
                        if shard.live > 0 && !shard.is_quarantined() {
                            self.counters.visited.fetch_add(1, Ordering::Relaxed);
                            if !shard.storage.is_resident() {
                                self.counters.faults.fetch_add(1, Ordering::Relaxed);
                            }
                            if let Err(e) = self.offer_shard(
                                shard,
                                &q_block,
                                &inv_norms,
                                &quant_queries,
                                &mut selectors,
                            ) {
                                self.quarantine(i, e);
                            }
                        }
                        shard.last_used.store(stamp, Ordering::Relaxed);
                    }
                }
                let mut pairs = Vec::with_capacity(block.len() * k);
                for (r, selector) in selectors.into_iter().enumerate() {
                    pairs.extend(
                        selector
                            .into_sorted()
                            .into_iter()
                            .map(|h| (base + r, h.id, h.score)),
                    );
                }
                pairs
            })
            .collect();
        let pairs: Vec<(usize, usize, f32)> = per_block.into_iter().flatten().collect();
        let quarantined_shards: Vec<usize> = subset
            .iter()
            .copied()
            .filter(|&i| self.shards[i].live > 0 && self.shards[i].is_quarantined())
            .collect();
        let degraded = !quarantined_shards.is_empty();
        JoinOutcome {
            pairs,
            degraded,
            quarantined_shards,
        }
    }

    /// Takes a shard out of service after its storage stayed unreadable through the
    /// retry backoff. Idempotent (the counter and warning fire on the first
    /// transition only); callable from parallel query workers (`&self`).
    fn quarantine(&self, shard_idx: usize, err: crate::storage::StorageError) {
        let shard = &self.shards[shard_idx];
        if !shard.quarantined.swap(true, Ordering::Relaxed) {
            self.counters.quarantines.fetch_add(1, Ordering::Relaxed);
            let err = err.with_shard(shard_idx);
            eprintln!(
                "warning: ShardedCosineIndex: quarantining shard with unreadable \
                 storage (degraded results until compact): {err}"
            );
        }
    }

    /// Scores one shard against a query tile: dense storage goes through the exact
    /// [`Shard::offer_into`] GEMM; quantized storage through the two-stage scan of
    /// [`Self::offer_shard_quantized`]. Either way every score a selector receives is
    /// an exact f32 kernel score, which is what keeps the shard-level routing prune
    /// (and the results) identical to the dense build.
    fn offer_shard(
        &self,
        shard: &Shard,
        q_block: &Matrix,
        inv_norms: &[f32],
        quant_queries: &QuantQueries<'_>,
        selectors: &mut [TopK],
    ) -> Result<(), crate::storage::StorageError> {
        if shard.live == 0 {
            return Ok(());
        }
        match shard.storage.quant() {
            None => shard.offer_into(q_block, inv_norms, selectors),
            Some(Err(e)) => Err(e),
            Some(Ok(quant)) => self.offer_shard_quantized(
                shard,
                quant,
                q_block,
                inv_norms,
                quant_queries,
                selectors,
            ),
        }
    }

    /// The two-stage quantized scan for one (shard, query tile) visit.
    ///
    /// **Stage 1** scores every live row against every tile query with an exact i8
    /// integer dot (`approx = t·s·(c_q·c_r)`, evaluated in f64) and keeps, per query,
    /// every row whose approximate score reaches the higher of two thresholds, each
    /// padded by the admissible error band `eps` of
    /// [`RoutingStats::quant_scan_epsilon`]:
    ///
    /// * `worst − eps` — a row further below the query's current `k`-th best exact
    ///   score provably cannot displace it;
    /// * `a_ref − 2·eps`, with `a_ref` the `alpha·k`-th best approximate score in the
    ///   shard — a row further below is *strictly* exact-dominated by at least `k`
    ///   rows that are themselves kept (their exacts are ≥ `a_ref − eps`, its own is
    ///   `< a_ref − eps`), so it cannot appear in any final top-k.
    ///
    /// Ties with the threshold are kept (`>=`), and all comparisons run in f64.
    ///
    /// **Stage 2** gathers the union of survivors from the exact f32 tier, zero-pads
    /// the gather to the kernel row-group width (so every gathered row is scored by
    /// the same per-row-independent `dot4` microkernel as in a full-shard scan —
    /// bit-identical scores), and offers the exact scores to every selector. Offering
    /// the cross-query union is superset-safe: extra exact-scored rows are exactly
    /// what the dense path offers anyway.
    #[allow(clippy::too_many_arguments)]
    fn offer_shard_quantized(
        &self,
        shard: &Shard,
        quant: &QuantizedMatrix,
        q_block: &Matrix,
        inv_norms: &[f32],
        quant_queries: &QuantQueries<'_>,
        selectors: &mut [TopK],
    ) -> Result<(), crate::storage::StorageError> {
        let dim = self.dim;
        let k = selectors.first().map_or(0, TopK::capacity);
        let alpha = self.quantization.unwrap_or_default().alpha.max(1);
        let k_wide = k.saturating_mul(alpha);
        let qq = quant_queries.get();
        let live_rows: Vec<usize> = (0..shard.ids.len())
            .filter(|&row| !shard.deleted[row])
            .collect();
        let mut approx = vec![0.0f64; live_rows.len()];
        let mut order_scratch = vec![0.0f64; live_rows.len()];
        let mut candidate = vec![false; live_rows.len()];
        for (r, selector) in selectors.iter().enumerate() {
            let q = &qq[r];
            let eps = RoutingStats::quant_scan_epsilon(
                q.norm,
                q.err_norm,
                quant.max_err_norm(),
                quant.max_row_norm(),
                dim,
            );
            for (j, &row) in live_rows.iter().enumerate() {
                let idot = Matrix::dot_i8(&q.codes, quant.code_row(row));
                approx[j] = q.scale as f64 * quant.scale(row) as f64 * idot as f64;
            }
            let a_ref = if k_wide == 0 || live_rows.len() <= k_wide {
                // No surplus to filter: every live row is a candidate.
                f64::NEG_INFINITY
            } else {
                order_scratch.copy_from_slice(&approx);
                let (_, nth, _) = order_scratch.select_nth_unstable_by(k_wide - 1, |a, b| {
                    b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
                });
                *nth
            };
            let worst = selector
                .worst_score_when_full()
                .map_or(f64::NEG_INFINITY, |w| w as f64 - eps);
            let threshold = worst.max(a_ref - 2.0 * eps);
            for (j, &a) in approx.iter().enumerate() {
                if a >= threshold {
                    candidate[j] = true;
                }
            }
        }
        let rescore: Vec<usize> = live_rows
            .iter()
            .zip(candidate.iter())
            .filter(|(_, &c)| c)
            .map(|(&row, _)| row)
            .collect();
        self.counters.quant_scans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .rescored_rows
            .fetch_add(rescore.len() as u64, Ordering::Relaxed);
        if rescore.is_empty() {
            return Ok(());
        }
        // For a spilled shard this faults exact rows through the shared mapping (page
        // cache, not heap) — the resident scanning footprint stays the i8 tier.
        let payload = shard.storage.query_payload()?;
        let view = payload.view();
        let padded = padded_rows(rescore.len());
        let mut data = Vec::with_capacity(padded * dim);
        for &row in &rescore {
            data.extend_from_slice(view.row(row));
        }
        data.resize(padded * dim, 0.0);
        let gathered = Matrix::from_vec(padded, dim, data);
        let sims = q_block.matmul_transpose_b_view(&gathered.view());
        for (r, selector) in selectors.iter_mut().enumerate() {
            let inv = inv_norms[r];
            let srow = sims.row(r);
            for (j, &row) in rescore.iter().enumerate() {
                selector.offer(shard.ids[row], srow[j] * inv);
            }
        }
        Ok(())
    }

    /// Scores the `candidates` shard positions against one query tile with
    /// routing-statistics skipping: shards are visited best-bound-first, and once every
    /// selector holds `k` candidates, a shard whose bound is strictly below every
    /// query's retained `k`-th best score (minus the float slack) is skipped without
    /// touching its matrix. The whole-index join passes every position; the
    /// scatter-gather subset join passes its subset.
    #[allow(clippy::too_many_arguments)]
    fn offer_shards_routed(
        &self,
        block: &[Vec<f32>],
        q_block: &Matrix,
        inv_norms: &[f32],
        quant_queries: &QuantQueries<'_>,
        selectors: &mut [TopK],
        stamp: u64,
        candidates: &[usize],
    ) {
        // Upper bound per (shard, query): one small dot against the shard centroid —
        // negligible next to the `rows x dim` GEMM it can save.
        let mut order: Vec<(usize, f32, Vec<f32>)> = candidates
            .iter()
            .map(|&i| (i, &self.shards[i]))
            .filter(|(_, shard)| shard.live > 0 && !shard.is_quarantined())
            .map(|(i, shard)| {
                let bounds: Vec<f32> = block
                    .iter()
                    .zip(inv_norms.iter())
                    .map(|(q, &inv)| shard.stats.upper_bound(q, inv))
                    .collect();
                let best = bounds.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                (i, best, bounds)
            })
            .collect();
        // Best shard first so the selectors tighten as early as possible; ties break on
        // the shard position so the visit order (and the counters) are deterministic.
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let slack = RoutingStats::prune_slack(self.dim);
        for (i, _, bounds) in order {
            let prunable = selectors.iter().zip(bounds.iter()).all(|(selector, &b)| {
                match selector.worst_score_when_full() {
                    // Strict `<`: a bound *tying* the worst retained score could still
                    // displace it through the smaller-id tie-break.
                    Some(worst) => b + slack < worst,
                    None => false,
                }
            });
            if prunable {
                self.counters.pruned.fetch_add(1, Ordering::Relaxed);
                continue; // never faulted in: a spilled shard skips the disk read too
            }
            let shard = &self.shards[i];
            self.counters.visited.fetch_add(1, Ordering::Relaxed);
            if !shard.storage.is_resident() {
                self.counters.faults.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(e) = self.offer_shard(shard, q_block, inv_norms, quant_queries, selectors) {
                self.quarantine(i, e);
            }
            shard.last_used.store(stamp, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CosineIndex;

    fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        // Cheap deterministic pseudo-random values without pulling a dev-dependency in.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_index_behaves_like_dense_empty() {
        let index = ShardedCosineIndex::new(4);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert_eq!(index.dim(), 0);
        assert!(index.top_k(&[1.0], 3).is_empty());
        assert!(index.knn_join(&[vec![1.0]], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "shard_capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ShardedCosineIndex::new(0);
    }

    #[test]
    fn add_batch_assigns_sequential_id_ranges() {
        let mut index = ShardedCosineIndex::new(3);
        assert_eq!(index.add_batch(&vectors(4, 8, 1)), 0..4);
        assert_eq!(index.add_batch(&[]), 4..4);
        assert_eq!(index.add_batch(&vectors(5, 8, 2)), 4..9);
        assert_eq!(index.len(), 9);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.dim(), 8);
    }

    #[test]
    #[should_panic(
        expected = "ShardedCosineIndex::add_batch: vector 1 has dimension 3, expected 2"
    )]
    fn ragged_batch_names_offending_row() {
        let mut index = ShardedCosineIndex::new(4);
        index.add_batch(&[vec![1.0, 0.0], vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    fn matches_dense_index_on_identical_input() {
        let corpus = vectors(57, 16, 3);
        let queries = vectors(23, 16, 4);
        let dense = CosineIndex::build(corpus.clone());
        for capacity in [1, 5, 8, 57, 100] {
            let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
            assert_eq!(
                sharded.knn_join(&queries, 6),
                dense.knn_join(&queries, 6),
                "capacity {capacity} diverged from dense"
            );
            for q in &queries {
                assert_eq!(sharded.top_k(q, 6), dense.top_k(q, 6));
            }
        }
    }

    #[test]
    fn top_k_and_knn_join_agree() {
        let corpus = vectors(40, 12, 5);
        let queries = vectors(10, 12, 6);
        let index = ShardedCosineIndex::from_vectors(&corpus, 7);
        let joined = index.knn_join(&queries, 4);
        for (qi, q) in queries.iter().enumerate() {
            let from_join: Vec<(usize, f32)> = joined
                .iter()
                .filter(|(i, _, _)| *i == qi)
                .map(|&(_, id, s)| (id, s))
                .collect();
            let from_single: Vec<(usize, f32)> = index
                .top_k(q, 4)
                .into_iter()
                .map(|h| (h.id, h.score))
                .collect();
            assert_eq!(from_join, from_single, "query {qi}");
        }
    }

    #[test]
    fn duplicate_rows_in_odd_sized_corpus_match_dense_exactly() {
        // 5 identical rows (n % 4 != 0): without the shared row-quad padding, the dense
        // index would score row 4 through a different kernel than rows 0..4 and a 1-ulp
        // difference could beat the id tie-break. Both layouts must agree bit-for-bit.
        // Duplicate rows are also the adversarial case for routing: the shard radius is
        // ~0 and every bound ties the true score, so only the strict `<` keeps pruning
        // admissible.
        let v = vec![0.6f32, 0.8, 0.1, -0.3, 0.2];
        let corpus = vec![v.clone(); 5];
        let dense = CosineIndex::build(corpus.clone());
        let queries = std::slice::from_ref(&v);
        for capacity in [1usize, 2, 3, 5] {
            let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
            assert_eq!(
                sharded.knn_join(queries, 3),
                dense.knn_join(queries, 3),
                "capacity {capacity}"
            );
            assert_eq!(
                sharded.top_k(&v, 3),
                dense.top_k(&v, 3),
                "capacity {capacity}"
            );
        }
        // The tie-break contract itself: smallest ids survive, in order, with no pad rows.
        let ids: Vec<usize> = dense.top_k(&v, 3).iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(dense.top_k(&v, 10).len(), 5, "pad rows must never surface");
    }

    #[test]
    fn zero_width_first_batch_then_wider_batch_is_a_ragged_error() {
        let mut index = ShardedCosineIndex::new(4);
        index.add_batch(&[vec![], vec![]]);
        assert_eq!((index.len(), index.dim()), (2, 0));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            index.add_batch(&[vec![1.0, 2.0]])
        }))
        .expect_err("widening the dimension must be a ragged-input error");
        let message = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted message");
        assert!(
            message.contains("ShardedCosineIndex::add_batch: vector 0 has dimension 2, expected 0"),
            "unexpected message: {message}"
        );
    }

    #[test]
    fn ties_break_toward_smaller_ids_across_shards() {
        let v = vec![0.6f32, 0.8];
        let mut index = ShardedCosineIndex::new(2);
        index.add_batch(&[v.clone(), v.clone(), v.clone(), v.clone(), v.clone()]);
        let hits = index.top_k(&v, 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        let pairs = index.knn_join(&[v], 3);
        assert_eq!(pairs.iter().map(|p| p.1).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn remove_hides_rows_and_compact_reclaims_slots() {
        let corpus = vectors(10, 8, 7);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 4);
        assert_eq!(index.remove(3), Ok(()));
        assert_eq!(
            index.remove(3),
            Err(RemoveError::AlreadyRemoved { id: 3 }),
            "double remove must say so"
        );
        assert_eq!(index.remove(8), Ok(()));
        assert_eq!(
            index.remove(42),
            Err(RemoveError::NeverAssigned {
                id: 42,
                next_id: 10
            }),
            "unknown id must say so"
        );
        assert_eq!(index.len(), 8);
        assert_eq!(index.num_tombstones(), 2);
        assert!(!index.contains(3) && index.contains(2));

        let before = index.knn_join(&vectors(6, 8, 8), 5);
        assert!(before.iter().all(|&(_, id, _)| id != 3 && id != 8));

        assert_eq!(index.compact(), 2);
        assert_eq!(index.num_tombstones(), 0);
        assert_eq!(
            index.num_shards(),
            2,
            "8 survivors repack into 2 shards of 4"
        );
        let after = index.knn_join(&vectors(6, 8, 8), 5);
        assert_eq!(before, after, "compaction must not change search results");
        assert_eq!(index.compact(), 0, "second compaction is a no-op");
    }

    #[test]
    fn remove_error_messages_name_the_id() {
        let mut index = ShardedCosineIndex::from_vectors(&vectors(3, 4, 17), 2);
        index.remove(1).unwrap();
        let already = index.remove(1).unwrap_err();
        assert_eq!(already.to_string(), "id 1 is already removed");
        let never = index.remove(9).unwrap_err();
        assert_eq!(
            never.to_string(),
            "id 9 was never assigned (ids 0..3 have been handed out)"
        );
        // A compacted-away id still reports AlreadyRemoved, not NeverAssigned.
        index.compact();
        assert_eq!(index.remove(1), Err(RemoveError::AlreadyRemoved { id: 1 }));
    }

    #[test]
    fn add_after_compact_continues_stable_ids() {
        let mut index = ShardedCosineIndex::from_vectors(&vectors(6, 4, 9), 4);
        index.remove(0).unwrap();
        index.remove(5).unwrap();
        index.compact();
        assert_eq!(index.add_batch(&vectors(2, 4, 10)), 6..8);
        assert_eq!(index.len(), 6);
        assert!(index.contains(6) && index.contains(7) && !index.contains(0));
    }

    #[test]
    fn all_rows_removed_returns_nothing_until_new_batch() {
        let mut index = ShardedCosineIndex::from_vectors(&vectors(3, 4, 11), 2);
        for id in 0..3 {
            assert!(index.remove(id).is_ok());
        }
        assert!(index.is_empty());
        assert!(index.knn_join(&vectors(2, 4, 12), 2).is_empty());
        index.compact();
        index.add_batch(&vectors(2, 4, 13));
        assert_eq!(index.knn_join(&vectors(1, 4, 14), 5).len(), 2);
    }

    #[test]
    fn memory_budget_spills_cold_shards_without_changing_results() {
        let corpus = vectors(60, 8, 15);
        let queries = vectors(12, 8, 16);
        let resident = ShardedCosineIndex::from_vectors(&corpus, 8);
        let expected = resident.knn_join(&queries, 5);

        let mut budgeted = ShardedCosineIndex::from_vectors(&corpus, 8);
        budgeted.set_memory_budget(Some(0));
        budgeted.compact();
        assert_eq!(budgeted.num_spilled_shards(), budgeted.num_shards());
        assert_eq!(budgeted.resident_bytes(), 0);
        assert_eq!(budgeted.knn_join(&queries, 5), expected);

        // A partial budget keeps some shards resident and still answers identically.
        let mut partial = ShardedCosineIndex::from_vectors(&corpus, 8);
        let one_shard = 8 * 8 * 4; // capacity x dim x f32
        partial.set_memory_budget(Some(3 * one_shard));
        partial.compact();
        assert!(partial.num_spilled_shards() > 0);
        assert!(partial.num_spilled_shards() < partial.num_shards());
        assert!(partial.resident_bytes() <= 3 * one_shard);
        assert_eq!(partial.knn_join(&queries, 5), expected);
    }

    #[test]
    fn raising_or_removing_the_budget_restores_residency_on_compact() {
        let corpus = vectors(40, 8, 27);
        let queries = vectors(6, 8, 28);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
        let expected = index.knn_join(&queries, 5);
        index.set_memory_budget(Some(0));
        index.compact();
        assert_eq!(index.num_spilled_shards(), index.num_shards());

        // Raising the budget faults hot shards back in on the next compact.
        let one_shard = 8 * 8 * 4;
        index.set_memory_budget(Some(2 * one_shard));
        index.compact();
        assert_eq!(index.num_spilled_shards(), index.num_shards() - 2);
        assert_eq!(index.knn_join(&queries, 5), expected);

        // Removing the budget restores everything.
        index.set_memory_budget(None);
        index.compact();
        assert_eq!(index.num_spilled_shards(), 0);
        assert_eq!(index.resident_bytes(), index.num_shards() * one_shard);
        assert_eq!(index.knn_join(&queries, 5), expected);
    }

    #[test]
    fn spilled_tail_shard_faults_back_for_ingestion() {
        let mut index = ShardedCosineIndex::from_vectors(&vectors(5, 4, 18), 4);
        index.set_memory_budget(Some(0));
        index.compact();
        assert_eq!(index.num_spilled_shards(), 2);
        // The tail shard has room for 3 more rows; appending must fault it back.
        let ids = index.add_batch(&vectors(2, 4, 19));
        assert_eq!(ids, 5..7);
        assert_eq!(index.len(), 7);
        let fresh = ShardedCosineIndex::from_vectors(
            &{
                let mut all = vectors(5, 4, 18);
                all.extend(vectors(2, 4, 19));
                all
            },
            4,
        );
        assert_eq!(
            index.knn_join(&vectors(3, 4, 20), 4),
            fresh.knn_join(&vectors(3, 4, 20), 4)
        );
    }

    #[test]
    fn routing_prunes_far_shards_and_spares_their_disk_reads() {
        // Shard 0 carries rows aligned with the query; later shards are orthogonal.
        let mut corpus: Vec<Vec<f32>> = (0..8)
            .map(|i| vec![1.0, 0.001 * i as f32, 0.0, 0.0])
            .collect();
        for i in 0..24 {
            corpus.push(vec![0.0, 0.0, 1.0, 0.001 * i as f32]);
        }
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
        index.set_memory_budget(Some(0));
        index.compact();
        assert_eq!(index.num_spilled_shards(), 4);

        index.reset_routing_report();
        let query = vec![vec![1.0, 0.0, 0.0, 0.0]];
        let hits = index.knn_join(&query, 4);
        assert_eq!(
            hits.iter().map(|h| h.1).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "the aligned shard's rows must win"
        );
        let report = index.routing_report();
        assert!(
            report.shards_pruned >= 3,
            "orthogonal shards should be pruned: {report:?}"
        );
        assert_eq!(
            report.spill_faults, report.shards_visited,
            "every visit faults (all spilled), and pruned shards never fault"
        );
        assert!(report.spill_faults < 4, "pruning must save disk reads");

        // Same query with routing disabled: identical results, zero pruning.
        index.set_routing_enabled(false);
        index.reset_routing_report();
        assert_eq!(index.knn_join(&query, 4), hits);
        let unrouted = index.routing_report();
        assert_eq!(unrouted.shards_pruned, 0);
        assert_eq!(
            unrouted.spill_faults, 4,
            "without routing every shard faults"
        );
    }

    #[test]
    fn clone_of_a_spilled_index_is_resident_and_identical() {
        let corpus = vectors(30, 6, 23);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 4);
        index.set_memory_budget(Some(0));
        index.compact();
        assert!(index.num_spilled_shards() > 0);
        let clone = index.clone();
        assert_eq!(clone.num_spilled_shards(), 0, "clones start fully resident");
        let queries = vectors(5, 6, 24);
        assert_eq!(clone.knn_join(&queries, 3), index.knn_join(&queries, 3));
    }

    /// Deletes the spill file backing shard `i` out from under the index — the
    /// durable-fault fixture (retries cannot help; the shard must quarantine).
    fn destroy_spill_file(index: &ShardedCosineIndex, i: usize) {
        match &index.shards[i].storage {
            ShardStorage::Spilled(s) => std::fs::remove_file(s.file_path()).unwrap(),
            ShardStorage::QuantSpilled(s) => std::fs::remove_file(s.file_path()).unwrap(),
            _ => panic!("shard {i} is not spilled"),
        }
    }

    #[test]
    fn unreadable_shard_quarantines_degrades_and_compact_drops_it() {
        let corpus = vectors(24, 6, 31);
        let queries = vectors(5, 6, 32);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
        index.set_query_cache_capacity(4);
        index.set_memory_budget(Some(0));
        index.compact();
        assert_eq!(index.num_spilled_shards(), 3);
        destroy_spill_file(&index, 1);

        // Routing must not hide the fault: force every shard to be visited.
        index.set_routing_enabled(false);
        let outcome = index.knn_join_report(&queries, 4);
        assert!(outcome.degraded, "a lost shard must flag the join degraded");
        assert_eq!(outcome.quarantined_shards, vec![1]);
        assert!(
            outcome
                .pairs
                .iter()
                .all(|&(_, id, _)| !(8..16).contains(&id)),
            "shard 1 rows (ids 8..16) cannot be scored"
        );
        assert!(
            !outcome.pairs.is_empty(),
            "the readable shards still answer"
        );
        assert_eq!(
            index.query_cache_len(),
            0,
            "degraded results must never be cached"
        );
        let report = index.routing_report();
        assert_eq!(report.shards_quarantined, 1);
        assert_eq!(report.quarantined_shards, vec![1]);

        // A repeated degraded join skips the quarantined shard without re-quarantining:
        // the per-join quarantine counter is 0 (no new event this join), while the
        // quarantine *state* still lists the shard.
        let again = index.knn_join_report(&queries, 4);
        assert_eq!(again, outcome);
        assert_eq!(index.routing_report().shards_quarantined, 0);
        assert_eq!(index.routing_report().quarantined_shards, vec![1]);

        // Compact drops the still-unreadable shard; service returns to non-degraded
        // over the surviving rows (== a fresh index without shard 1's rows).
        index.compact();
        assert_eq!(index.len(), 16);
        assert!(index.quarantined_shards().is_empty());
        let healed = index.knn_join_report(&queries, 4);
        assert!(!healed.degraded);
        let mut surviving = corpus[..8].to_vec();
        surviving.extend_from_slice(&corpus[16..]);
        let fresh = ShardedCosineIndex::from_vectors(&surviving, 8);
        // Stable ids differ after the drop (the fresh index renumbers), so compare
        // the score multisets per query.
        let scores = |pairs: &[(usize, usize, f32)]| {
            let mut s: Vec<(usize, u32)> =
                pairs.iter().map(|&(q, _, sc)| (q, sc.to_bits())).collect();
            s.sort();
            s
        };
        assert_eq!(
            scores(&healed.pairs),
            scores(&fresh.knn_join(&queries, 4)),
            "post-drop answers must match an index that never held the lost rows"
        );
    }

    #[test]
    fn transient_read_faults_recover_without_degrading() {
        let _s = crate::storage::tests::fault_lock();
        let _g = crate::storage::tests::DisarmGuard;
        let corpus = vectors(24, 6, 33);
        let queries = vectors(5, 6, 34);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
        let expected = index.knn_join(&queries, 4);
        index.set_memory_budget(Some(0));
        index.compact();

        // A bounded burst of read faults: the storage retry loop rides it out, so the
        // join is neither degraded nor different.
        sudowoodo_faults::arm("spill.read.io_err", sudowoodo_faults::Policy::Times(2));
        let outcome = index.knn_join_report(&queries, 4);
        assert!(!outcome.degraded, "retried faults must not degrade");
        assert_eq!(outcome.pairs, expected);
        assert!(index.quarantined_shards().is_empty());
    }

    #[test]
    fn durable_faults_quarantine_everything_and_compact_recovers() {
        let _s = crate::storage::tests::fault_lock();
        let _g = crate::storage::tests::DisarmGuard;
        let corpus = vectors(24, 6, 35);
        let queries = vectors(5, 6, 36);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
        let expected = index.knn_join(&queries, 4);
        index.set_memory_budget(Some(0));
        index.compact();

        sudowoodo_faults::arm("spill.read.io_err", sudowoodo_faults::Policy::Always);
        let outcome = index.knn_join_report(&queries, 4);
        assert!(outcome.degraded);
        assert_eq!(outcome.quarantined_shards, vec![0, 1, 2]);
        assert!(outcome.pairs.is_empty(), "no shard was readable");

        // The fault clears (disarm); compact re-reads the quarantined shards and
        // recovers every row — nothing was lost, results are bit-identical again.
        sudowoodo_faults::disarm("spill.read.io_err");
        index.compact();
        assert_eq!(index.len(), 24, "all rows recovered");
        assert!(index.quarantined_shards().is_empty());
        let healed = index.knn_join_report(&queries, 4);
        assert!(!healed.degraded);
        assert_eq!(healed.pairs, expected);
    }

    /// Regression: scan counters used to accumulate across `knn_join` calls on a
    /// reused handle, so the second identical join reported doubled visit/fault
    /// tallies. They are per-join now; cache hit/miss tallies stay cumulative.
    #[test]
    fn scan_counters_describe_one_join_cache_counters_accumulate() {
        let corpus = vectors(48, 8, 61);
        let queries = vectors(6, 8, 62);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
        index.set_memory_budget(Some(0));
        index.compact();
        let _ = index.knn_join(&queries, 3);
        let first = index.routing_report();
        assert!(first.shards_visited > 0);
        assert!(first.spill_faults > 0);
        let _ = index.knn_join(&queries, 3);
        let second = index.routing_report();
        assert_eq!(
            (second.shards_visited, second.spill_faults),
            (first.shards_visited, first.spill_faults),
            "an identical repeated join must report identical (not doubled) scan work"
        );

        index.set_query_cache_capacity(2);
        let _ = index.knn_join(&queries, 3); // computes, inserts
        let _ = index.knn_join(&queries, 3); // served from the cache
        let report = index.routing_report();
        assert_eq!((report.cache_misses, report.cache_hits), (1, 1));
        assert_eq!(
            (report.shards_visited, report.spill_faults),
            (0, 0),
            "a cache hit scans nothing, and the report must say so"
        );
    }

    #[test]
    fn quantized_join_is_bit_identical_and_counts_its_scans() {
        let corpus = vectors(100, 16, 71);
        let queries = vectors(9, 16, 72);
        let dense = ShardedCosineIndex::from_vectors(&corpus, 16);
        let expected = dense.knn_join(&queries, 5);

        let mut quantized = ShardedCosineIndex::from_vectors(&corpus, 16);
        quantized.set_quantization(Some(QuantSpec::default()));
        quantized.compact();
        assert_eq!(quantized.num_quantized_shards(), quantized.num_shards());
        let pairs = quantized.knn_join(&queries, 5);
        assert_eq!(pairs.len(), expected.len());
        for (got, want) in pairs.iter().zip(expected.iter()) {
            assert_eq!(
                (got.0, got.1, got.2.to_bits()),
                (want.0, want.1, want.2.to_bits()),
                "quantized ids and score bits must match the dense build"
            );
        }
        let report = quantized.routing_report();
        assert!(report.quant_scans > 0, "the i8 first stage must have run");
        assert!(
            report.rescored_rows > 0,
            "survivors must have been rescored"
        );

        // Spilled + quantized: results unchanged, and the resident scanning footprint
        // is the i8 tier only (the exact payload stays on disk for the rescore).
        quantized.set_memory_budget(Some(0));
        quantized.compact();
        assert_eq!(quantized.num_spilled_shards(), quantized.num_shards());
        assert_eq!(quantized.resident_bytes(), 0);
        let spilled_pairs = quantized.knn_join(&queries, 5);
        assert_eq!(spilled_pairs, pairs);
        assert!(quantized.quantized_payload_bytes() > 0);

        // Turning the tier off re-encodes back to dense storage at the next compact.
        quantized.set_quantization(None);
        quantized.set_memory_budget(None);
        quantized.compact();
        assert_eq!(quantized.num_quantized_shards(), 0);
        assert_eq!(quantized.knn_join(&queries, 5), pairs);
        assert_eq!(quantized.routing_report().quant_scans, 0);
    }
}
