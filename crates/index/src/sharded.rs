//! Sharded, streaming variant of the cosine blocking index.
//!
//! [`crate::CosineIndex`] stores the whole corpus as **one** row-major matrix, which is
//! the fastest layout as long as the corpus fits one allocation and never changes. Two
//! pressures break that assumption at scale (ROADMAP: "streaming / sharded `CosineIndex`
//! for corpora that exceed one machine"):
//!
//! * **Size** — a single `n x d` matrix must be reallocated and re-normalized wholesale
//!   to grow, and cannot be distributed.
//! * **Streaming** — entity-matching corpora arrive in batches; rebuilding a dense index
//!   per batch is quadratic work over the ingest lifetime.
//!
//! [`ShardedCosineIndex`] answers both: the corpus is partitioned into fixed-capacity
//! **shards**, each a small row-major matrix that reuses the exact GEMM tile path of the
//! dense index. `knn_join` computes per-shard `query-tile x shardᵀ` products (rayon
//! parallel) and merges per-shard candidates through the same bounded-heap top-k selector
//! as the dense path, so results are **deterministic and identical** to a dense index over
//! the same rows. Ingestion is incremental: [`ShardedCosineIndex::add_batch`] appends
//! (normalizing only the new rows), [`ShardedCosineIndex::remove`] tombstones, and
//! [`ShardedCosineIndex::compact`] repacks shards to drop tombstones.
//!
//! ## Equivalence with the dense index
//!
//! Three invariants make sharded results match a fresh dense build bit-for-bit — same
//! ids *and* same scores, even on exact ties (duplicate rows are normal in EM data):
//!
//! 1. every row is L2-normalized exactly once, with the same per-row op the dense index
//!    uses ([`Matrix::l2_normalize_rows_mut`]);
//! 2. both layouts pad their matrices with zero rows to a multiple of the `dot4` row
//!    group width, so every live row is scored by the same SIMD microkernel regardless
//!    of corpus size or where a shard boundary falls (the `dot4` accumulators are
//!    per-row independent, so grouping does not affect the value — only which kernel
//!    runs does);
//! 3. all candidates — per-shard, per-group, and the cross-group merge — flow through
//!    the crate's single top-k selector, whose (score descending, id ascending) total
//!    order is insertion-order independent.
//!
//! Rows keep **stable ids** (their insertion sequence number) across `remove`/`compact`,
//! so downstream candidate pairs remain valid while the index mutates underneath.

use rayon::prelude::*;

use sudowoodo_nn::matrix::Matrix;

use crate::knn::{check_row_dim, pack_query_block, padded_rows, Neighbor, TopK};

/// Number of query rows per GEMM tile in [`ShardedCosineIndex::knn_join`] — the same tile
/// height as the dense index so both paths have identical cache behavior per shard.
const QUERY_TILE: usize = 256;

/// Maximum number of shard groups a single query tile fans out over. Bounds the
/// merge-buffer memory at `MERGE_GROUPS x tile_rows x k` candidates while still keeping
/// every core busy when the query set fits one tile.
const MERGE_GROUPS: usize = 8;

/// One fixed-capacity partition of the corpus.
#[derive(Clone, Debug)]
struct Shard {
    /// Row-major buffer; rows `0..ids.len()` are real (already normalized), trailing
    /// rows — row-quad padding plus geometric growth slack — are zero and never surface
    /// in results.
    matrix: Matrix,
    /// Stable id of each real row, ascending (insertion order is preserved shard-to-shard).
    ids: Vec<usize>,
    /// Tombstone flag per real row.
    deleted: Vec<bool>,
    /// Number of rows with `deleted == false`.
    live: usize,
}

impl Shard {
    /// Lowest id held by this shard (its rows are id-sorted).
    fn min_id(&self) -> usize {
        self.ids.first().copied().unwrap_or(usize::MAX)
    }

    /// Scores `q_block x shardᵀ` and offers every live row to the per-query selectors.
    ///
    /// `inv_norms[r]` is the query-row inverse norm; the scale is applied at offer time
    /// exactly like the dense path (`s * inv`).
    fn offer_into(&self, q_block: &Matrix, inv_norms: &[f32], selectors: &mut [TopK]) {
        if self.live == 0 {
            return;
        }
        let sims = q_block.matmul_transpose_b(&self.matrix);
        for (r, selector) in selectors.iter_mut().enumerate() {
            let inv = inv_norms[r];
            let row = sims.row(r);
            for (row_idx, &id) in self.ids.iter().enumerate() {
                if !self.deleted[row_idx] {
                    selector.offer(id, row[row_idx] * inv);
                }
            }
        }
    }
}

/// A streaming, sharded collection of L2-normalized dense vectors.
///
/// Functionally a [`crate::CosineIndex`] that can grow in batches, delete rows, and score
/// shards in parallel. Ids returned by searches are **stable insertion ids**: the `i`-th
/// vector ever added has id `i`, forever, regardless of later [`ShardedCosineIndex::remove`]
/// or [`ShardedCosineIndex::compact`] calls.
///
/// # Examples
/// ```
/// use sudowoodo_index::ShardedCosineIndex;
///
/// // Build incrementally: 3 vectors across shards of capacity 2.
/// let mut index = ShardedCosineIndex::new(2);
/// index.add_batch(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// index.add_batch(&[vec![0.8, 0.6]]);
/// assert_eq!((index.len(), index.num_shards()), (3, 2));
///
/// // Search exactly like the dense index.
/// let pairs = index.knn_join(&[vec![1.0, 0.1]], 2);
/// assert_eq!(pairs[0].1, 0);
///
/// // Stream: remove a row and repack; ids stay stable.
/// index.remove(0);
/// index.compact();
/// let pairs = index.knn_join(&[vec![1.0, 0.1]], 2);
/// assert_eq!(pairs[0].1, 2); // the [0.8, 0.6] row keeps id 2 after compaction
/// ```
#[derive(Clone, Debug)]
pub struct ShardedCosineIndex {
    /// Maximum number of real rows per shard.
    shard_capacity: usize,
    /// Vector dimensionality; `0` until the first non-empty batch fixes it.
    dim: usize,
    /// Next stable id to assign.
    next_id: usize,
    /// Number of live (non-tombstoned) rows across all shards.
    live: usize,
    /// The partitions, in insertion order; `ids` are ascending across and within shards.
    shards: Vec<Shard>,
}

impl ShardedCosineIndex {
    /// Creates an empty index whose shards hold at most `shard_capacity` vectors each.
    ///
    /// # Panics
    /// Panics when `shard_capacity` is zero.
    pub fn new(shard_capacity: usize) -> Self {
        assert!(
            shard_capacity > 0,
            "ShardedCosineIndex::new: shard_capacity must be positive"
        );
        ShardedCosineIndex {
            shard_capacity,
            dim: 0,
            next_id: 0,
            live: 0,
            shards: Vec::new(),
        }
    }

    /// Builds an index from an initial corpus in one call (`new` + [`Self::add_batch`]).
    pub fn from_vectors(vectors: &[Vec<f32>], shard_capacity: usize) -> Self {
        let mut index = Self::new(shard_capacity);
        index.add_batch(vectors);
        index
    }

    /// Number of live (searchable) vectors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Vector dimensionality (`0` until the first non-empty batch is added).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards currently allocated (including ones that are all tombstones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of vectors per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of tombstoned rows still occupying shard slots (reclaimed by
    /// [`Self::compact`]).
    pub fn num_tombstones(&self) -> usize {
        self.shards.iter().map(|s| s.ids.len() - s.live).sum()
    }

    /// `true` when `id` is currently live in the index.
    pub fn contains(&self, id: usize) -> bool {
        self.locate(id).is_some()
    }

    /// Appends a batch of vectors, returning the stable id range assigned to them.
    ///
    /// The first non-empty batch fixes the index dimensionality. New rows are
    /// L2-normalized on ingestion (once — exactly like a dense build); existing rows are
    /// never touched, and the tail shard's buffer grows geometrically (copied at most
    /// `log(shard_capacity)` times over a shard's lifetime), so repeated `add_batch`
    /// calls cost amortized time proportional to the batch, not the corpus.
    ///
    /// # Panics
    /// Panics when a vector's dimension disagrees with the index dimension, naming the
    /// offending row and the expected dimension.
    pub fn add_batch(&mut self, vectors: &[Vec<f32>]) -> std::ops::Range<usize> {
        let start = self.next_id;
        if vectors.is_empty() {
            return start..start;
        }
        if self.next_id == 0 {
            // First batch ever fixes the dimensionality — even a degenerate 0, so that a
            // later batch of different width gets the ragged-input error, not a crash.
            self.dim = vectors[0].len();
        }
        let dim = self.dim;
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for (i, v) in vectors.iter().enumerate() {
            check_row_dim("ShardedCosineIndex::add_batch", i, v.len(), dim);
            data.extend_from_slice(v);
        }
        // Normalize the new rows once, with the same per-row op the dense index applies.
        let mut batch = Matrix::from_vec(vectors.len(), dim, data);
        batch.l2_normalize_rows_mut();

        let mut offset = 0;
        while offset < vectors.len() {
            let shard_room = match self.shards.last() {
                Some(s) if s.ids.len() < self.shard_capacity => self.shard_capacity - s.ids.len(),
                _ => {
                    self.shards.push(Shard {
                        matrix: Matrix::zeros(0, dim),
                        ids: Vec::new(),
                        deleted: Vec::new(),
                        live: 0,
                    });
                    self.shard_capacity
                }
            };
            let take = shard_room.min(vectors.len() - offset);
            let shard = self.shards.last_mut().expect("shard ensured above");
            let old_filled = shard.ids.len();
            let new_filled = old_filled + take;
            let needed = padded_rows(new_filled);
            if needed > shard.matrix.rows() {
                // Grow geometrically (capped at the shard capacity) so per-row appends
                // amortize; the slack rows are zero, which the scoring kernel treats as
                // more padding (skipped in selection, and `dot4` scores each row
                // independently, so real-row scores are unaffected).
                let grown = padded_rows(
                    (shard.matrix.rows() * 2)
                        .clamp(needed, padded_rows(self.shard_capacity).max(needed)),
                );
                let mut rows = Vec::with_capacity(grown * dim);
                rows.extend_from_slice(&shard.matrix.data()[..old_filled * dim]);
                rows.resize(grown * dim, 0.0);
                shard.matrix = Matrix::from_vec(grown, dim, rows);
            }
            if dim > 0 {
                shard.matrix.data_mut()[old_filled * dim..new_filled * dim]
                    .copy_from_slice(&batch.data()[offset * dim..(offset + take) * dim]);
            }
            for i in 0..take {
                shard.ids.push(start + offset + i);
                shard.deleted.push(false);
            }
            shard.live += take;
            offset += take;
        }
        self.next_id = start + vectors.len();
        self.live += vectors.len();
        start..self.next_id
    }

    /// Finds the shard and row holding live id `id` (ids are sorted across and within
    /// shards, so both lookups are binary searches).
    fn locate(&self, id: usize) -> Option<(usize, usize)> {
        let shard_idx = match self.shards.partition_point(|s| s.min_id() <= id) {
            0 => return None,
            p => p - 1,
        };
        let shard = &self.shards[shard_idx];
        let row = shard.ids.binary_search(&id).ok()?;
        (!shard.deleted[row]).then_some((shard_idx, row))
    }

    /// Tombstones the row with stable id `id`. Returns `false` when the id was never
    /// assigned or is already removed. The slot is reclaimed by [`Self::compact`].
    pub fn remove(&mut self, id: usize) -> bool {
        let Some((shard_idx, row)) = self.locate(id) else {
            return false;
        };
        let shard = &mut self.shards[shard_idx];
        shard.deleted[row] = true;
        shard.live -= 1;
        self.live -= 1;
        true
    }

    /// Repacks all surviving rows into full shards, dropping tombstones. Stable ids and
    /// search results are unchanged; returns the number of tombstones reclaimed.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.num_tombstones();
        if reclaimed == 0 {
            return 0;
        }
        let dim = self.dim;
        let old_shards = std::mem::take(&mut self.shards);
        // One pass in id order: rows are already normalized, so compaction is pure copying.
        let mut survivors: Vec<(usize, &[f32])> = Vec::with_capacity(self.live);
        for shard in &old_shards {
            for (row, &id) in shard.ids.iter().enumerate() {
                if !shard.deleted[row] {
                    survivors.push((id, shard.matrix.row(row)));
                }
            }
        }
        for chunk in survivors.chunks(self.shard_capacity) {
            let mut rows = Vec::with_capacity(padded_rows(chunk.len()) * dim);
            for (_, row) in chunk {
                rows.extend_from_slice(row);
            }
            rows.resize(padded_rows(chunk.len()) * dim, 0.0);
            self.shards.push(Shard {
                matrix: Matrix::from_vec(padded_rows(chunk.len()), dim, rows),
                ids: chunk.iter().map(|&(id, _)| id).collect(),
                deleted: vec![false; chunk.len()],
                live: chunk.len(),
            });
        }
        reclaimed
    }

    /// Returns the `k` most similar live vectors to `query`, sorted by descending score
    /// (ties broken by ascending stable id) — the dense [`crate::CosineIndex::top_k`]
    /// contract.
    ///
    /// Delegates to [`Self::knn_join`] with a single query (one shard-scoring/merge
    /// implementation to keep correct), so the shards still fan out across threads.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        check_row_dim(
            "ShardedCosineIndex::top_k (query)",
            0,
            query.len(),
            self.dim,
        );
        let queries = [query.to_vec()];
        self.knn_join(&queries, k)
            .into_iter()
            .map(|(_, id, score)| Neighbor { id, score })
            .collect()
    }

    /// Retrieves, for every query vector, its `k` nearest live vectors, returning the
    /// candidate pair list `(query_index, stable_id, score)`.
    ///
    /// Parallelism is two-level: queries fan out across threads in `QUERY_TILE` (256)-row
    /// blocks, and within a block the shards fan out in up to `MERGE_GROUPS` contiguous
    /// groups, each computing fused `Q_block x shardᵀ` GEMM tiles whose candidates stream
    /// through per-query bounded heaps (capacity `k`); the group-local top-k lists then
    /// merge through the same selector. (Under the offline rayon shim, whichever level
    /// saturates the cores first runs threaded and the other runs inline, so small query
    /// sets over many shards still parallelize.) Output ordering matches the dense
    /// [`crate::CosineIndex::knn_join`]: query index, then descending score (ascending id
    /// on ties) — the merge comparator is a total order, so the grouping is invisible in
    /// results.
    ///
    /// # Panics
    /// Panics when a query's dimension disagrees with the index dimension.
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        if k == 0 || self.is_empty() || queries.is_empty() {
            return Vec::new();
        }
        let dim = self.dim;
        let group_size = self.shards.len().div_ceil(MERGE_GROUPS).max(1);
        let per_block: Vec<Vec<(usize, usize, f32)>> = queries
            .par_chunks(QUERY_TILE)
            .enumerate()
            .map(|(block_idx, block)| {
                let base = block_idx * QUERY_TILE;
                let (q_block, inv_norms) =
                    pack_query_block("ShardedCosineIndex::knn_join (query)", base, block, dim);
                // Rayon-parallel per-shard-group products, each with its own bounded
                // heaps (memory: groups x block rows x k candidates).
                let per_group: Vec<Vec<Vec<Neighbor>>> = self
                    .shards
                    .par_chunks(group_size)
                    .map(|group| {
                        let mut selectors: Vec<TopK> =
                            (0..block.len()).map(|_| TopK::new(k)).collect();
                        for shard in group {
                            shard.offer_into(&q_block, &inv_norms, &mut selectors);
                        }
                        selectors.into_iter().map(TopK::into_sorted).collect()
                    })
                    .collect();
                // Deterministic merge of the group-local top-k lists.
                let mut selectors: Vec<TopK> = (0..block.len()).map(|_| TopK::new(k)).collect();
                for group_hits in per_group {
                    for (r, hits) in group_hits.into_iter().enumerate() {
                        for hit in hits {
                            selectors[r].offer(hit.id, hit.score);
                        }
                    }
                }
                let mut pairs = Vec::with_capacity(block.len() * k);
                for (r, selector) in selectors.into_iter().enumerate() {
                    pairs.extend(
                        selector
                            .into_sorted()
                            .into_iter()
                            .map(|h| (base + r, h.id, h.score)),
                    );
                }
                pairs
            })
            .collect();
        per_block.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CosineIndex;

    fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        // Cheap deterministic pseudo-random values without pulling a dev-dependency in.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_index_behaves_like_dense_empty() {
        let index = ShardedCosineIndex::new(4);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert_eq!(index.dim(), 0);
        assert!(index.top_k(&[1.0], 3).is_empty());
        assert!(index.knn_join(&[vec![1.0]], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "shard_capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ShardedCosineIndex::new(0);
    }

    #[test]
    fn add_batch_assigns_sequential_id_ranges() {
        let mut index = ShardedCosineIndex::new(3);
        assert_eq!(index.add_batch(&vectors(4, 8, 1)), 0..4);
        assert_eq!(index.add_batch(&[]), 4..4);
        assert_eq!(index.add_batch(&vectors(5, 8, 2)), 4..9);
        assert_eq!(index.len(), 9);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.dim(), 8);
    }

    #[test]
    #[should_panic(
        expected = "ShardedCosineIndex::add_batch: vector 1 has dimension 3, expected 2"
    )]
    fn ragged_batch_names_offending_row() {
        let mut index = ShardedCosineIndex::new(4);
        index.add_batch(&[vec![1.0, 0.0], vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    fn matches_dense_index_on_identical_input() {
        let corpus = vectors(57, 16, 3);
        let queries = vectors(23, 16, 4);
        let dense = CosineIndex::build(corpus.clone());
        for capacity in [1, 5, 8, 57, 100] {
            let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
            assert_eq!(
                sharded.knn_join(&queries, 6),
                dense.knn_join(&queries, 6),
                "capacity {capacity} diverged from dense"
            );
            for q in &queries {
                assert_eq!(sharded.top_k(q, 6), dense.top_k(q, 6));
            }
        }
    }

    #[test]
    fn top_k_and_knn_join_agree() {
        let corpus = vectors(40, 12, 5);
        let queries = vectors(10, 12, 6);
        let index = ShardedCosineIndex::from_vectors(&corpus, 7);
        let joined = index.knn_join(&queries, 4);
        for (qi, q) in queries.iter().enumerate() {
            let from_join: Vec<(usize, f32)> = joined
                .iter()
                .filter(|(i, _, _)| *i == qi)
                .map(|&(_, id, s)| (id, s))
                .collect();
            let from_single: Vec<(usize, f32)> = index
                .top_k(q, 4)
                .into_iter()
                .map(|h| (h.id, h.score))
                .collect();
            assert_eq!(from_join, from_single, "query {qi}");
        }
    }

    #[test]
    fn duplicate_rows_in_odd_sized_corpus_match_dense_exactly() {
        // 5 identical rows (n % 4 != 0): without the shared row-quad padding, the dense
        // index would score row 4 through a different kernel than rows 0..4 and a 1-ulp
        // difference could beat the id tie-break. Both layouts must agree bit-for-bit.
        let v = vec![0.6f32, 0.8, 0.1, -0.3, 0.2];
        let corpus = vec![v.clone(); 5];
        let dense = CosineIndex::build(corpus.clone());
        let queries = std::slice::from_ref(&v);
        for capacity in [1usize, 2, 3, 5] {
            let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
            assert_eq!(
                sharded.knn_join(queries, 3),
                dense.knn_join(queries, 3),
                "capacity {capacity}"
            );
            assert_eq!(
                sharded.top_k(&v, 3),
                dense.top_k(&v, 3),
                "capacity {capacity}"
            );
        }
        // The tie-break contract itself: smallest ids survive, in order, with no pad rows.
        let ids: Vec<usize> = dense.top_k(&v, 3).iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(dense.top_k(&v, 10).len(), 5, "pad rows must never surface");
    }

    #[test]
    fn zero_width_first_batch_then_wider_batch_is_a_ragged_error() {
        let mut index = ShardedCosineIndex::new(4);
        index.add_batch(&[vec![], vec![]]);
        assert_eq!((index.len(), index.dim()), (2, 0));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            index.add_batch(&[vec![1.0, 2.0]])
        }))
        .expect_err("widening the dimension must be a ragged-input error");
        let message = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted message");
        assert!(
            message.contains("ShardedCosineIndex::add_batch: vector 0 has dimension 2, expected 0"),
            "unexpected message: {message}"
        );
    }

    #[test]
    fn ties_break_toward_smaller_ids_across_shards() {
        let v = vec![0.6f32, 0.8];
        let mut index = ShardedCosineIndex::new(2);
        index.add_batch(&[v.clone(), v.clone(), v.clone(), v.clone(), v.clone()]);
        let hits = index.top_k(&v, 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        let pairs = index.knn_join(&[v], 3);
        assert_eq!(pairs.iter().map(|p| p.1).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn remove_hides_rows_and_compact_reclaims_slots() {
        let corpus = vectors(10, 8, 7);
        let mut index = ShardedCosineIndex::from_vectors(&corpus, 4);
        assert!(index.remove(3));
        assert!(!index.remove(3), "double remove must be a no-op");
        assert!(index.remove(8));
        assert!(!index.remove(42), "unknown id must be a no-op");
        assert_eq!(index.len(), 8);
        assert_eq!(index.num_tombstones(), 2);
        assert!(!index.contains(3) && index.contains(2));

        let before = index.knn_join(&vectors(6, 8, 8), 5);
        assert!(before.iter().all(|&(_, id, _)| id != 3 && id != 8));

        assert_eq!(index.compact(), 2);
        assert_eq!(index.num_tombstones(), 0);
        assert_eq!(
            index.num_shards(),
            2,
            "8 survivors repack into 2 shards of 4"
        );
        let after = index.knn_join(&vectors(6, 8, 8), 5);
        assert_eq!(before, after, "compaction must not change search results");
        assert_eq!(index.compact(), 0, "second compaction is a no-op");
    }

    #[test]
    fn add_after_compact_continues_stable_ids() {
        let mut index = ShardedCosineIndex::from_vectors(&vectors(6, 4, 9), 4);
        index.remove(0);
        index.remove(5);
        index.compact();
        assert_eq!(index.add_batch(&vectors(2, 4, 10)), 6..8);
        assert_eq!(index.len(), 6);
        assert!(index.contains(6) && index.contains(7) && !index.contains(0));
    }

    #[test]
    fn all_rows_removed_returns_nothing_until_new_batch() {
        let mut index = ShardedCosineIndex::from_vectors(&vectors(3, 4, 11), 2);
        for id in 0..3 {
            assert!(index.remove(id));
        }
        assert!(index.is_empty());
        assert!(index.knn_join(&vectors(2, 4, 12), 2).is_empty());
        index.compact();
        index.add_batch(&vectors(2, 4, 13));
        assert_eq!(index.knn_join(&vectors(1, 4, 14), 5).len(), 2);
    }
}
