//! Per-shard routing statistics: skip shards that provably cannot reach the top-k.
//!
//! Every shard of a [`crate::ShardedCosineIndex`] carries a [`RoutingStats`] summary of
//! its live rows — their **centroid** and a **radius** (an upper bound on the distance
//! from any live row to that centroid). Because every indexed row is L2-normalized,
//! these two numbers yield a cheap, *admissible* upper bound on the best cosine score
//! any row of the shard can achieve against a normalized query `q̂`:
//!
//! ```text
//! q̂ · x  =  q̂ · c + q̂ · (x − c)
//!        ≤  q̂ · c + ‖q̂‖ · ‖x − c‖        (Cauchy–Schwarz)
//!        ≤  q̂ · c + r                      (‖q̂‖ ≤ 1, ‖x − c‖ ≤ r for live rows)
//! ```
//!
//! During `knn_join`, shards are visited in order of decreasing bound; once every
//! per-query selector holds `k` candidates, a shard whose bound (plus the
//! dimension-scaled float slack of [`RoutingStats::prune_slack`]) is below every
//! query's current `k`-th best score is **skipped entirely** — and a skipped shard
//! that was spilled to disk is never even read back, which is what makes routing and
//! disk spill multiplicative.
//!
//! ## Why the bound is admissible (results never change)
//!
//! * The bound is evaluated in `f64` against the exact `f32` centroid/radius, then
//!   padded by [`RoutingStats::prune_slack`] before comparison. The slack grows with
//!   the vector dimension because the `f32` accumulation error of the scoring kernels
//!   does too (~`dim · 2⁻²⁴/4` worst case for normalized rows); the slack keeps a
//!   greater-than-6x margin over that at every dimension, so a kernel-computed score
//!   can never exceed its shard's padded bound.
//! * Skipping uses a **strict** `<` against the current worst retained score: a row
//!   tying the worst score could still displace it via the smaller-id tie-break, so
//!   ties are never pruned.
//! * Statistics may be *stale in the safe direction*. Removals leave them untouched: a
//!   centroid/radius over a superset of the live rows still satisfies `‖x − c‖ ≤ r`
//!   for every survivor. Appends update them incrementally ([`RoutingStats::append`]):
//!   the centroid moves to the exact mean of the new superset (tracked by an `f64`
//!   running sum), and the radius is *inflated* by the centroid displacement
//!   (`‖x − c_new‖ ≤ ‖x − c_old‖ + ‖c_old − c_new‖` for every old row) and maxed with
//!   the new rows' exact distances — an upper bound that only ever loosens, never
//!   undercuts. `compact()` recomputes exact (tight) statistics from scratch.
//!
//! A pruned shard therefore contains no row that could enter any query's final top-k,
//! so pruning is invisible in results — `crates/index/tests/routing_props.rs` proves
//! this across duplicate-row corpora, near-tie scores, and all-/none-pruned extremes.
//!
//! ## The quantization-error term ([`RoutingStats::quant_scan_epsilon`])
//!
//! Quantized shards ([`crate::QuantizedMatrix`]) add a second, *within-shard* bound:
//! the approximate i8 scores of the first-stage scan may only be used to **select**
//! rescore candidates, never to rank results, and the selection threshold must be
//! padded by an admissible bound on how far an approximate score can sit from the
//! exact one. Writing the quantized query as `q̂ = t·c_q + e_q` and a stored row as
//! `x = s·c_r + e_r`:
//!
//! ```text
//! q̂·x − t·s·(c_q·c_r)  =  e_q·x + (q̂ − e_q)·e_r
//! |q̂·x − t·s·(c_q·c_r)| ≤ ‖e_q‖·‖x‖ + (‖q̂‖ + ‖e_q‖)·‖e_r‖
//!                       ≤ q_err·max_row_norm + (q_norm + q_err)·max_err_norm
//! ```
//!
//! All four norms are *measured* during quantization and rounded **up** into `f32`,
//! so the right-hand side can only overestimate. [`RoutingStats::quant_scan_epsilon`]
//! evaluates it in `f64` and adds [`RoutingStats::prune_slack`] on top, which covers
//! both the f32 kernel accumulation of the exact scores and the rounding of the
//! approximate product `(t·s·idot)` — the integer dot `idot` itself is exact. The
//! shard-level prune above needs **no** extra term: selectors only ever hold exact
//! (rescored) scores, so the worst-retained thresholds it compares against are the
//! same ones the dense build produces.

use std::ops::Range;

use sudowoodo_nn::matrix::Matrix;

/// Centroid + radius summary of a shard's rows (see the module docs).
///
/// The summary covers a *superset* of the live rows (removals do not shrink it until
/// the next exact [`RoutingStats::compute`]), which keeps the bound admissible while
/// making removal O(1).
#[derive(Clone, Debug, Default)]
pub struct RoutingStats {
    /// Mean of the covered (normalized) rows; empty when no rows are covered.
    centroid: Vec<f32>,
    /// Upper bound on `‖x − centroid‖` over covered rows `x`.
    radius: f32,
    /// Exact running sum of the covered rows (drives incremental centroid updates).
    sum: Vec<f64>,
    /// Number of covered rows (live rows plus not-yet-compacted tombstones).
    counted: usize,
}

impl RoutingStats {
    /// Absolute slack added to a shard's upper bound before comparing against retained
    /// scores, as a function of the vector dimension.
    ///
    /// Cosine scores live in `[-1, 1]`, so an absolute pad works. The floor of `1e-4`
    /// dominates every constant-size rounding step in the bound itself; the `1e-7`
    /// per-dimension term covers the scoring kernels' accumulation error, whose worst
    /// case for normalized rows grows like `dim · 2⁻²⁴/4 ≈ dim · 1.5e-8` — a margin of
    /// more than 6x at any dimension (TF-IDF corpora route vectors with tens of
    /// thousands of dimensions through this bound). The cost is pruning power nobody
    /// misses: a shard within `1e-4 + dim·1e-7` of the top-k threshold was going to be
    /// scored anyway on realistic score gaps.
    pub fn prune_slack(dim: usize) -> f32 {
        1e-4 + dim as f32 * 1e-7
    }

    /// Computes exact statistics over the live rows of a shard matrix.
    ///
    /// `deleted[i]` tombstones row `i`; only rows `0..deleted.len()` are real (trailing
    /// matrix rows are zero padding). Accumulation runs in `f64` and the radius is
    /// rounded *up* when narrowed to `f32`, keeping the bound admissible.
    pub fn compute(matrix: &Matrix, deleted: &[bool]) -> RoutingStats {
        let dim = matrix.cols();
        let live = deleted.iter().filter(|d| !**d).count();
        if live == 0 || dim == 0 {
            return RoutingStats::default();
        }
        let mut sum = vec![0.0f64; dim];
        for (row, _) in deleted.iter().enumerate().filter(|(_, d)| !**d) {
            for (s, &x) in sum.iter_mut().zip(matrix.row(row)) {
                *s += x as f64;
            }
        }
        let centroid: Vec<f32> = sum.iter().map(|s| (s / live as f64) as f32).collect();
        let mut radius_sq = 0.0f64;
        for (row, _) in deleted.iter().enumerate().filter(|(_, d)| !**d) {
            radius_sq = radius_sq.max(dist_sq(matrix.row(row), &centroid));
        }
        // Round up so the f32 radius always dominates the f64 maximum.
        let radius = (radius_sq.sqrt() as f32).next_up();
        RoutingStats {
            centroid,
            radius,
            sum,
            counted: live,
        }
    }

    /// Folds freshly appended matrix rows into the statistics in O(new rows × dim) —
    /// no rescan of the existing rows.
    ///
    /// The centroid moves to the exact mean of the enlarged row set (the `f64` running
    /// sum makes this drift-free); the radius is inflated by the centroid displacement
    /// to keep covering the old rows, then maxed with the new rows' exact distances.
    /// The result is an upper bound that can only be looser than a from-scratch
    /// [`RoutingStats::compute`] — admissible by construction; `compact()` re-tightens.
    pub fn append(&mut self, matrix: &Matrix, rows: Range<usize>) {
        if rows.is_empty() || matrix.cols() == 0 {
            return;
        }
        let dim = matrix.cols();
        if self.counted == 0 {
            self.centroid = vec![0.0; dim];
            self.radius = 0.0;
            self.sum = vec![0.0; dim];
        }
        for row in rows.clone() {
            for (s, &x) in self.sum.iter_mut().zip(matrix.row(row)) {
                *s += x as f64;
            }
        }
        let old_counted = self.counted;
        self.counted += rows.len();
        let new_centroid: Vec<f32> = self
            .sum
            .iter()
            .map(|s| (s / self.counted as f64) as f32)
            .collect();
        // Old rows: ‖x − c_new‖ ≤ ‖x − c_old‖ ≤ r_old, shifted by ‖c_old − c_new‖.
        let mut radius = if old_counted == 0 {
            0.0f64
        } else {
            self.radius as f64 + dist_sq(&self.centroid, &new_centroid).sqrt()
        };
        // New rows: exact distances to the new centroid.
        for row in rows {
            radius = radius.max(dist_sq(matrix.row(row), &new_centroid).sqrt());
        }
        self.centroid = new_centroid;
        self.radius = (radius as f32).next_up();
    }

    /// Decomposes the statistics into `(centroid, radius, sum, counted)` for the
    /// snapshot manifest ([`crate::snapshot`]). Persisting the `f64` running sum keeps
    /// post-load [`RoutingStats::append`] updates exactly as tight as they would have
    /// been without the save/load round trip.
    pub(crate) fn snapshot_parts(&self) -> (&[f32], f32, &[f64], usize) {
        (&self.centroid, self.radius, &self.sum, self.counted)
    }

    /// Rebuilds statistics from manifest-recorded parts (inverse of
    /// [`RoutingStats::snapshot_parts`]). The caller (the snapshot loader) is trusted:
    /// these are the exact fields a save wrote, so the bound stays admissible.
    pub(crate) fn from_snapshot_parts(
        centroid: Vec<f32>,
        radius: f32,
        sum: Vec<f64>,
        counted: usize,
    ) -> RoutingStats {
        RoutingStats {
            centroid,
            radius,
            sum,
            counted,
        }
    }

    /// The distance bound from a covered row to the centroid.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// The centroid of the covered rows (empty when no rows are covered).
    pub fn centroid(&self) -> &[f32] {
        &self.centroid
    }

    /// Upper bound on the cosine score any covered row can reach against query `q`
    /// whose inverse norm is `inv_norm` (the same `q * inv` scaling the scoring path
    /// uses).
    ///
    /// Returns `f32::NEG_INFINITY` for an empty shard, which any selector threshold
    /// prunes.
    pub fn upper_bound(&self, query: &[f32], inv_norm: f32) -> f32 {
        if self.centroid.is_empty() {
            return f32::NEG_INFINITY;
        }
        let mut dot = 0.0f64;
        for (&q, &c) in query.iter().zip(self.centroid.iter()) {
            dot += q as f64 * c as f64;
        }
        (dot * inv_norm as f64) as f32 + self.radius
    }

    /// Admissible bound on `|exact − approx|` for one (query, shard) pair of the
    /// two-stage quantized scan (see the module docs for the derivation).
    ///
    /// * `query_norm` / `query_err_norm` — measured `‖q̂‖` and `‖q̂ − t·c_q‖` of the
    ///   quantized (pre-normalized) query, from [`crate::QuantizedRow`];
    /// * `max_err_norm` / `max_row_norm` — the shard's worst-row reconstruction error
    ///   and magnitude, from [`crate::QuantizedMatrix`].
    ///
    /// Every input was rounded *up* when measured, the arithmetic here runs in `f64`,
    /// and [`RoutingStats::prune_slack`] is added on top to absorb the f32 rescore
    /// kernels' accumulation error and the rounding of the approximate product — so a
    /// row whose approximate score falls more than this far below a threshold provably
    /// has an exact score below that threshold and can be skipped without rescoring.
    pub fn quant_scan_epsilon(
        query_norm: f32,
        query_err_norm: f32,
        max_err_norm: f32,
        max_row_norm: f32,
        dim: usize,
    ) -> f64 {
        let reconstruction = (query_norm as f64 + query_err_norm as f64) * max_err_norm as f64
            + query_err_norm as f64 * max_row_norm as f64;
        reconstruction + Self::prune_slack(dim) as f64
    }
}

/// Squared Euclidean distance between two `f32` slices, accumulated in `f64`.
fn dist_sq(a: &[f32], b: &[f32]) -> f64 {
    let mut d2 = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let diff = x as f64 - y as f64;
        d2 += diff * diff;
    }
    d2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalize(mut v: Vec<f32>) -> Vec<f32> {
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn shard_matrix(rows: &[Vec<f32>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    fn assert_bound_dominates(stats: &RoutingStats, rows: &[Vec<f32>], dim: usize) {
        for qi in 0..25 {
            let q: Vec<f32> = (0..dim)
                .map(|j| ((qi * dim + j) as f32 * 0.37).sin() * 1.5)
                .collect();
            let norm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
            let inv = 1.0 / norm;
            let bound = stats.upper_bound(&q, inv);
            for row in rows {
                let score: f32 = row.iter().zip(q.iter()).map(|(a, b)| a * b).sum::<f32>() * inv;
                assert!(
                    score <= bound + RoutingStats::prune_slack(dim),
                    "row score {score} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bound_dominates_every_live_row_score() {
        let rows: Vec<Vec<f32>> = (0..17)
            .map(|i| {
                normalize(vec![
                    (i as f32 * 0.37).sin(),
                    (i as f32 * 0.61).cos(),
                    (i as f32 * 0.13).sin() + 0.2,
                    1.0,
                ])
            })
            .collect();
        let deleted = vec![false; rows.len()];
        let stats = RoutingStats::compute(&shard_matrix(&rows), &deleted);
        assert_bound_dominates(&stats, &rows, 4);
    }

    #[test]
    fn incremental_append_stays_admissible_and_dominates_exact_compute() {
        let dim = 6;
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                normalize(
                    (0..dim)
                        .map(|j| ((i * dim + j) as f32 * 0.23).sin())
                        .collect(),
                )
            })
            .collect();
        let matrix = shard_matrix(&rows);
        // Fold the rows in as four uneven appends, the way add_batch does.
        let mut stats = RoutingStats::default();
        for range in [0..3, 3..4, 4..21, 21..40] {
            stats.append(&matrix, range.clone());
            let covered = &rows[..range.end];
            assert_bound_dominates(&stats, covered, dim);
            // The incremental radius may only be looser than the exact one.
            let exact = RoutingStats::compute(&shard_matrix(covered), &vec![false; covered.len()]);
            assert!(
                stats.radius() >= exact.radius() - RoutingStats::prune_slack(dim),
                "incremental radius {} undercuts exact {}",
                stats.radius(),
                exact.radius()
            );
        }
    }

    #[test]
    fn prune_slack_scales_with_dimension() {
        assert!(RoutingStats::prune_slack(0) >= 1e-4);
        // The slack must keep a >6x margin over the kernel's worst-case accumulation
        // error (~dim * 2^-24 / 4) at every dimension, including TF-IDF-sized ones.
        for dim in [4usize, 64, 1024, 50_000, 1_000_000] {
            let kernel_error = dim as f32 * (2.0f32.powi(-24) / 4.0);
            assert!(
                RoutingStats::prune_slack(dim) > 6.0 * kernel_error,
                "slack too small at dim {dim}"
            );
        }
    }

    #[test]
    fn duplicate_rows_shrink_the_radius_to_zero() {
        let row = normalize(vec![0.6, 0.8, 0.1]);
        let rows = vec![row.clone(); 6];
        let stats = RoutingStats::compute(&shard_matrix(&rows), &[false; 6]);
        assert!(
            stats.radius() <= 1e-6,
            "radius {} should be ~0",
            stats.radius()
        );
        // The bound at radius ~0 equals the exact score of the duplicated row.
        let bound = stats.upper_bound(&row, 1.0);
        let score: f32 = row.iter().map(|x| x * x).sum();
        assert!((bound - score).abs() <= 1e-5);
    }

    #[test]
    fn stale_stats_over_a_superset_remain_admissible() {
        let rows: Vec<Vec<f32>> = vec![
            normalize(vec![1.0, 0.0, 0.0]),
            normalize(vec![0.0, 1.0, 0.0]),
            normalize(vec![0.6, 0.8, 0.0]),
        ];
        // Stats computed before the removal…
        let stats = RoutingStats::compute(&shard_matrix(&rows), &[false; 3]);
        // …must still bound the scores of the two surviving rows.
        let q = vec![0.3f32, -0.2, 0.9];
        let inv = 1.0 / q.iter().map(|x| x * x).sum::<f32>().sqrt();
        let bound = stats.upper_bound(&q, inv);
        for row in &rows[..2] {
            let score: f32 = row.iter().zip(q.iter()).map(|(a, b)| a * b).sum::<f32>() * inv;
            assert!(score <= bound + RoutingStats::prune_slack(3));
        }
    }

    #[test]
    fn quant_scan_epsilon_dominates_the_true_approximation_error() {
        use crate::storage::{QuantizedMatrix, QuantizedRow};
        let dim = 24;
        // Adversarial rows: mixed magnitudes, a huge-scale outlier, a zero row.
        let mut rows: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) as f32 * 0.29).sin() * (1.0 + (i % 7) as f32))
                    .collect()
            })
            .collect();
        rows.push(vec![0.0; dim]);
        rows.push((0..dim).map(|j| if j == 3 { 1e6 } else { 1e-3 }).collect());
        let matrix = shard_matrix(&rows);
        let quant = QuantizedMatrix::quantize(&matrix);
        for qi in 0..20 {
            let q: Vec<f32> = (0..dim)
                .map(|j| ((qi * dim + j) as f32 * 0.41).cos() * 2.0)
                .collect();
            let norm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
            let q_hat: Vec<f32> = q.iter().map(|x| x / norm).collect();
            let qq = QuantizedRow::from_row(&q_hat);
            let eps = RoutingStats::quant_scan_epsilon(
                qq.norm,
                qq.err_norm,
                quant.max_err_norm(),
                quant.max_row_norm(),
                dim,
            );
            for (r, row) in rows.iter().enumerate() {
                let exact: f64 = q_hat
                    .iter()
                    .zip(row.iter())
                    .map(|(&a, &b)| a as f64 * b as f64)
                    .sum();
                let idot: i64 = qq
                    .codes
                    .iter()
                    .zip(quant.code_row(r))
                    .map(|(&a, &b)| a as i64 * b as i64)
                    .sum();
                let approx = (qq.scale as f64) * (quant.scale(r) as f64) * idot as f64;
                assert!(
                    (exact - approx).abs() <= eps,
                    "row {r} query {qi}: |{exact} - {approx}| exceeds epsilon {eps}"
                );
            }
        }
    }

    #[test]
    fn empty_shard_bounds_at_negative_infinity() {
        let stats = RoutingStats::compute(&Matrix::zeros(0, 4), &[]);
        assert_eq!(
            stats.upper_bound(&[1.0, 0.0, 0.0, 0.0], 1.0),
            f32::NEG_INFINITY
        );
        let all_deleted = RoutingStats::compute(
            &shard_matrix(&[normalize(vec![1.0, 0.0, 0.0, 0.0])]),
            &[true],
        );
        assert_eq!(
            all_deleted.upper_bound(&[1.0, 0.0, 0.0, 0.0], 1.0),
            f32::NEG_INFINITY
        );
    }
}
