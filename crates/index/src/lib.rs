//! # sudowoodo-index
//!
//! High-dimensional similarity search for the blocking stage of Sudowoodo.
//!
//! The paper applies kNN search over the learned entity representations to produce a
//! candidate set for matching, and reports blocking quality as recall versus candidate set
//! size ratio (CSSR). This crate provides an exact [`knn::CosineIndex`] whose batch join
//! computes query-tile × corpusᵀ similarity blocks through the fused GEMM kernels of
//! `sudowoodo-nn` (parallel over tiles, deterministic top-k selection), plus
//! [`knn::evaluate_blocking`].

#![warn(missing_docs)]

pub mod knn;

pub use knn::{evaluate_blocking, BlockingQuality, CosineIndex, Neighbor};
