//! # sudowoodo-index
//!
//! High-dimensional similarity search for the blocking stage of Sudowoodo.
//!
//! The paper applies kNN search over the learned entity representations to produce a
//! candidate set for matching, and reports blocking quality as recall versus candidate set
//! size ratio (CSSR). This crate provides two exact indexes with identical search
//! semantics plus the blocking-quality evaluator:
//!
//! * [`knn::CosineIndex`] — the whole corpus as **one** row-major matrix; batch joins run
//!   query-tile × corpusᵀ similarity blocks through the fused GEMM kernels of
//!   `sudowoodo-nn` (parallel over tiles, deterministic top-k selection). Fastest when
//!   the corpus is static and fits one allocation.
//! * [`sharded::ShardedCosineIndex`] — the corpus partitioned into fixed-capacity shards
//!   scored in parallel and merged through the same bounded-heap selector, with streaming
//!   ingestion (`add_batch` / `remove` / `compact`) and stable row ids. Same results as
//!   the dense index over the same rows; built for corpora that grow, shrink, or exceed
//!   one matrix.
//! * [`storage::ShardStorage`] — where a shard's matrix lives: resident in memory, or
//!   spilled to a compact on-disk format under the index's least-recently-used residency
//!   budget, faulted back only when a query actually needs the shard.
//! * [`routing::RoutingStats`] — per-shard centroid/radius statistics giving an
//!   admissible upper bound on any row's cosine score, used to skip (and never fault in)
//!   shards that provably cannot enter the current top-k.
//! * [`snapshot`] — persistent whole-index snapshots: a versioned manifest plus
//!   per-shard payloads in the spill format, saved by one process and loaded **cold**
//!   (O(manifest)) by any number of others — the durable half of the serving story
//!   (the network half is the `sudowoodo-serve` crate).
//! * [`cache`] — the query-batch result cache consulted by the sharded `knn_join`
//!   ahead of routing: normalized-query fingerprints, LRU capacity, invalidated by the
//!   index's mutation epoch.
//! * [`blocking::BlockingIndex`] — both layouts behind one search API, so pipelines pick
//!   the corpus layout (and memory budget) with configuration values.
//! * [`knn::evaluate_blocking`] — recall / candidate-set-size-ratio scoring of a
//!   candidate pair set against gold matches.

#![deny(missing_docs)]

pub mod blocking;
pub mod cache;
pub mod delta;
pub mod knn;
pub mod routing;
pub mod sharded;
pub mod snapshot;
pub mod storage;

pub use blocking::BlockingIndex;
pub use cache::{fingerprint, QueryFingerprint};
pub use delta::{DeltaSaveReport, DELTA_MANIFEST_FILE};
pub use knn::{evaluate_blocking, BlockingQuality, CosineIndex, Neighbor, TopK};
pub use routing::RoutingStats;
pub use sharded::{JoinOutcome, QuantSpec, RemoveError, RoutingReport, ShardedCosineIndex};
pub use snapshot::MANIFEST_FILE;
pub use storage::{
    QuantSpilledShard, QuantizedMatrix, QuantizedRow, ShardStorage, SpillDir, SpilledShard,
    StorageError, StorageErrorKind,
};
