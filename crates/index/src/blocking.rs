//! One search API over both blocking-index layouts.
//!
//! Pipelines choose the corpus layout with a single configuration value (dense for
//! static in-memory corpora, sharded for streaming/very large ones) and call the same
//! `knn_join` / `top_k` either way. Both layouts share normalization, kernels, and the
//! deterministic top-k selection contract, so switching layouts never changes results —
//! only the memory/ingestion profile.

use crate::knn::{CosineIndex, Neighbor};
use crate::sharded::ShardedCosineIndex;

/// An exact cosine kNN index in either layout, behind the common search API.
///
/// # Examples
/// ```
/// use sudowoodo_index::BlockingIndex;
///
/// let corpus = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
/// let queries = vec![vec![1.0, 0.2]];
/// let dense = BlockingIndex::build(corpus.clone(), None);
/// let sharded = BlockingIndex::build(corpus, Some(2));
/// assert_eq!(dense.knn_join(&queries, 2), sharded.knn_join(&queries, 2));
/// ```
#[derive(Clone, Debug)]
pub enum BlockingIndex {
    /// The whole corpus as one row-major matrix ([`CosineIndex`]).
    Dense(CosineIndex),
    /// Fixed-capacity shards with streaming ingestion ([`ShardedCosineIndex`]).
    Sharded(ShardedCosineIndex),
}

impl BlockingIndex {
    /// Builds an index over `vectors`: dense when `shard_capacity` is `None`, sharded
    /// with the given per-shard row capacity otherwise.
    ///
    /// Ids are interchangeable between the two layouts for a from-scratch build: the
    /// sharded index assigns stable insertion ids `0..n`, which coincide with dense row
    /// positions.
    pub fn build(vectors: Vec<Vec<f32>>, shard_capacity: Option<usize>) -> Self {
        match shard_capacity {
            None => BlockingIndex::Dense(CosineIndex::build(vectors)),
            Some(capacity) => {
                BlockingIndex::Sharded(ShardedCosineIndex::from_vectors(&vectors, capacity))
            }
        }
    }

    /// Number of searchable vectors.
    pub fn len(&self) -> usize {
        match self {
            BlockingIndex::Dense(index) => index.len(),
            BlockingIndex::Sharded(index) => index.len(),
        }
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` most similar indexed vectors to `query` (descending score,
    /// ascending id on ties).
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            BlockingIndex::Dense(index) => index.top_k(query, k),
            BlockingIndex::Sharded(index) => index.top_k(query, k),
        }
    }

    /// Retrieves, for every query, its `k` nearest indexed vectors as
    /// `(query_index, id, score)` candidate pairs.
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        match self {
            BlockingIndex::Dense(index) => index.knn_join(queries, k),
            BlockingIndex::Sharded(index) => index.knn_join(queries, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_layouts_answer_identically() {
        let corpus: Vec<Vec<f32>> = (0..37)
            .map(|i| {
                let a = (i as f32 * 0.37).sin();
                let b = (i as f32 * 0.61).cos();
                vec![a, b, a * b, a - b]
            })
            .collect();
        let queries: Vec<Vec<f32>> = corpus.iter().take(9).cloned().collect();
        let dense = BlockingIndex::build(corpus.clone(), None);
        let sharded = BlockingIndex::build(corpus, Some(4));
        assert_eq!(dense.len(), sharded.len());
        assert!(!dense.is_empty());
        assert_eq!(dense.knn_join(&queries, 5), sharded.knn_join(&queries, 5));
        for q in &queries {
            assert_eq!(dense.top_k(q, 3), sharded.top_k(q, 3));
        }
    }
}
