//! One search API over both blocking-index layouts.
//!
//! Pipelines choose the corpus layout with a single configuration value (dense for
//! static in-memory corpora, sharded for streaming/very large ones) and call the same
//! `knn_join` / `top_k` either way. Both layouts share normalization, kernels, and the
//! deterministic top-k selection contract, so switching layouts never changes results —
//! only the memory/ingestion profile.

use std::io;
use std::path::Path;

use crate::knn::{CosineIndex, Neighbor};
use crate::sharded::{JoinOutcome, QuantSpec, RemoveError, ShardedCosineIndex};
use crate::snapshot;

/// An exact cosine kNN index in either layout, behind the common search API.
///
/// # Examples
/// ```
/// use sudowoodo_index::BlockingIndex;
///
/// let corpus = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
/// let queries = vec![vec![1.0, 0.2]];
/// let dense = BlockingIndex::build(corpus.clone(), None);
/// let sharded = BlockingIndex::build(corpus, Some(2));
/// assert_eq!(dense.knn_join(&queries, 2), sharded.knn_join(&queries, 2));
/// ```
// The sharded variant is large (routing stats, cache, quantization state inline), but a
// process holds a handful of these at most — indirection would cost a pointer chase on
// every search for no measurable memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum BlockingIndex {
    /// The whole corpus as one row-major matrix ([`CosineIndex`]).
    Dense(CosineIndex),
    /// Fixed-capacity shards with streaming ingestion ([`ShardedCosineIndex`]).
    Sharded(ShardedCosineIndex),
}

impl BlockingIndex {
    /// Builds an index over `vectors`: dense when `shard_capacity` is `None`, sharded
    /// with the given per-shard row capacity otherwise.
    ///
    /// Ids are interchangeable between the two layouts for a from-scratch build: the
    /// sharded index assigns stable insertion ids `0..n`, which coincide with dense row
    /// positions.
    pub fn build(vectors: Vec<Vec<f32>>, shard_capacity: Option<usize>) -> Self {
        Self::build_with_budget(vectors, shard_capacity, None)
    }

    /// Like [`BlockingIndex::build`], but additionally applies a resident-memory budget
    /// (bytes of shard matrix payload) to the sharded layout: cold shards beyond the
    /// budget are spilled to disk before this returns, and routing statistics keep
    /// pruned shards from ever being read back during searches. The budget is ignored
    /// by the dense layout (one monolithic matrix cannot partially spill).
    pub fn build_with_budget(
        vectors: Vec<Vec<f32>>,
        shard_capacity: Option<usize>,
        memory_budget: Option<usize>,
    ) -> Self {
        Self::build_with_options(vectors, shard_capacity, memory_budget, None)
    }

    /// Like [`BlockingIndex::build_with_budget`], additionally enabling the i8
    /// quantized shard tier on the sharded layout — see
    /// [`ShardedCosineIndex::set_quantization`] for the two-stage scan and the
    /// bit-identical-results contract. The dense layout ignores `quantization` exactly
    /// like it ignores the budget (one monolithic matrix has neither tier).
    pub fn build_with_options(
        vectors: Vec<Vec<f32>>,
        shard_capacity: Option<usize>,
        memory_budget: Option<usize>,
        quantization: Option<QuantSpec>,
    ) -> Self {
        match shard_capacity {
            None => BlockingIndex::Dense(CosineIndex::build(vectors)),
            Some(capacity) => {
                let mut index = ShardedCosineIndex::from_vectors(&vectors, capacity);
                index.set_quantization(quantization);
                index.set_memory_budget(memory_budget);
                index.compact();
                BlockingIndex::Sharded(index)
            }
        }
    }

    /// Removes the vector with stable id `id` (sharded layout only).
    ///
    /// Both layouts answer through one error type so callers handle removal failures
    /// uniformly:
    ///
    /// # Errors
    /// * [`RemoveError::DenseImmutable`] — the dense layout cannot mutate;
    /// * [`RemoveError::NeverAssigned`] / [`RemoveError::AlreadyRemoved`] — the sharded
    ///   layout rejects ids it never handed out or already removed, leaving the index
    ///   unchanged either way.
    pub fn remove(&mut self, id: usize) -> Result<(), RemoveError> {
        match self {
            BlockingIndex::Dense(_) => Err(RemoveError::DenseImmutable),
            BlockingIndex::Sharded(index) => index.remove(id),
        }
    }

    /// Number of searchable vectors.
    pub fn len(&self) -> usize {
        match self {
            BlockingIndex::Dense(index) => index.len(),
            BlockingIndex::Sharded(index) => index.len(),
        }
    }

    /// Vector dimensionality (`0` while the index is empty and none was ever fixed).
    pub fn dim(&self) -> usize {
        match self {
            BlockingIndex::Dense(index) => index.dim(),
            BlockingIndex::Sharded(index) => index.dim(),
        }
    }

    /// Sets the query-batch cache capacity (cached batches; 0 disables) on the sharded
    /// layout — see [`ShardedCosineIndex::set_query_cache_capacity`]. The dense layout
    /// has no cache (it also has no mutation epoch to invalidate by) and ignores this.
    pub fn set_query_cache_capacity(&mut self, capacity: usize) {
        if let BlockingIndex::Sharded(index) = self {
            index.set_query_cache_capacity(capacity);
        }
    }

    /// Enables or disables the i8 quantized shard tier on the sharded layout — see
    /// [`ShardedCosineIndex::set_quantization`] (takes effect at the next compact; a
    /// cold-loaded snapshot serves its on-disk formats until then). Ignored by the
    /// dense layout.
    pub fn set_quantization(&mut self, spec: Option<QuantSpec>) {
        if let BlockingIndex::Sharded(index) = self {
            index.set_quantization(spec);
        }
    }

    /// Persists the index into `dir` in either layout — see
    /// [`ShardedCosineIndex::save_snapshot`] and [`crate::snapshot`]. The manifest
    /// records which layout was saved, so [`BlockingIndex::load_snapshot`] restores it
    /// without the caller knowing.
    pub fn save_snapshot(&self, dir: &Path) -> io::Result<()> {
        snapshot::save_blocking(self, dir)
    }

    /// Loads a snapshot written by [`BlockingIndex::save_snapshot`] in whichever layout
    /// it was saved: a sharded snapshot loads **cold** (shards stay on disk until
    /// queries or a [`ShardedCosineIndex::compact`] fault them in); a dense snapshot is
    /// one monolithic matrix and is read here.
    ///
    /// # Examples
    /// ```
    /// use sudowoodo_index::BlockingIndex;
    ///
    /// let dir = std::env::temp_dir().join(format!("swblk-doc-{}", std::process::id()));
    /// let corpus = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
    /// let index = BlockingIndex::build(corpus, Some(2));
    /// index.save_snapshot(&dir).unwrap();
    /// let loaded = BlockingIndex::load_snapshot(&dir).unwrap();
    /// let queries = vec![vec![1.0, 0.2]];
    /// assert_eq!(loaded.knn_join(&queries, 2), index.knn_join(&queries, 2));
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn load_snapshot(dir: &Path) -> io::Result<BlockingIndex> {
        snapshot::load_blocking(dir)
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` most similar indexed vectors to `query` (descending score,
    /// ascending id on ties).
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            BlockingIndex::Dense(index) => index.top_k(query, k),
            BlockingIndex::Sharded(index) => index.top_k(query, k),
        }
    }

    /// Retrieves, for every query, its `k` nearest indexed vectors as
    /// `(query_index, id, score)` candidate pairs.
    pub fn knn_join(&self, queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
        match self {
            BlockingIndex::Dense(index) => index.knn_join(queries, k),
            BlockingIndex::Sharded(index) => index.knn_join(queries, k),
        }
    }

    /// [`BlockingIndex::knn_join`] with the failure-model envelope — see
    /// [`ShardedCosineIndex::knn_join_report`]. The dense layout holds its whole
    /// corpus in memory and has no storage faults to degrade around, so its outcome
    /// is always complete (`degraded == false`).
    pub fn knn_join_report(&self, queries: &[Vec<f32>], k: usize) -> JoinOutcome {
        match self {
            BlockingIndex::Dense(index) => JoinOutcome {
                pairs: index.knn_join(queries, k),
                degraded: false,
                quarantined_shards: Vec::new(),
            },
            BlockingIndex::Sharded(index) => index.knn_join_report(queries, k),
        }
    }

    /// Number of shard positions a scatter-gather coordinator can address: the shard
    /// count of the sharded layout, `1` for the dense layout (which serves as one
    /// indivisible "shard 0").
    pub fn num_shards(&self) -> usize {
        match self {
            BlockingIndex::Dense(_) => 1,
            BlockingIndex::Sharded(index) => index.num_shards(),
        }
    }

    /// [`BlockingIndex::knn_join_report`] restricted to a subset of shard positions —
    /// see [`ShardedCosineIndex::knn_join_subset_report`]. The dense layout is one
    /// indivisible shard at position `0`: a subset containing `0` answers the full
    /// join, any other subset answers empty.
    ///
    /// # Panics
    /// Panics when a subset position is `>= num_shards()`.
    pub fn knn_join_subset_report(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        shard_subset: &[usize],
    ) -> JoinOutcome {
        match self {
            BlockingIndex::Dense(index) => {
                if let Some(&bad) = shard_subset.iter().find(|&&s| s >= 1) {
                    panic!(
                        "BlockingIndex::knn_join_subset_report: shard position {bad} out \
                         of range (dense layout has 1 shard)"
                    );
                }
                JoinOutcome {
                    pairs: if shard_subset.is_empty() {
                        Vec::new()
                    } else {
                        index.knn_join(queries, k)
                    },
                    degraded: false,
                    quarantined_shards: Vec::new(),
                }
            }
            BlockingIndex::Sharded(index) => index.knn_join_subset_report(queries, k, shard_subset),
        }
    }

    /// Pure query-cache peek — see [`ShardedCosineIndex::cached_knn_join`]. Always
    /// `None` on the dense layout (no cache).
    pub fn cached_knn_join(
        &self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Option<Vec<(usize, usize, f32)>> {
        match self {
            BlockingIndex::Dense(_) => None,
            BlockingIndex::Sharded(index) => index.cached_knn_join(queries, k),
        }
    }

    /// Records a batch's `knn_join` result in the query cache — see
    /// [`ShardedCosineIndex::cache_join_result`]. No-op on the dense layout.
    pub fn cache_join_result(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        results: Vec<(usize, usize, f32)>,
    ) {
        if let BlockingIndex::Sharded(index) = self {
            index.cache_join_result(queries, k, results);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_layouts_answer_identically() {
        let corpus: Vec<Vec<f32>> = (0..37)
            .map(|i| {
                let a = (i as f32 * 0.37).sin();
                let b = (i as f32 * 0.61).cos();
                vec![a, b, a * b, a - b]
            })
            .collect();
        let queries: Vec<Vec<f32>> = corpus.iter().take(9).cloned().collect();
        let dense = BlockingIndex::build(corpus.clone(), None);
        let sharded = BlockingIndex::build(corpus, Some(4));
        assert_eq!(dense.len(), sharded.len());
        assert!(!dense.is_empty());
        assert_eq!(dense.knn_join(&queries, 5), sharded.knn_join(&queries, 5));
        for q in &queries {
            assert_eq!(dense.top_k(q, 3), sharded.top_k(q, 3));
        }
    }

    #[test]
    fn remove_error_paths_are_unified_across_layouts() {
        let corpus = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
        let mut dense = BlockingIndex::build(corpus.clone(), None);
        let mut sharded = BlockingIndex::build(corpus, Some(2));

        // The dense layout is immutable and says so — it never silently diverges.
        assert_eq!(dense.remove(0), Err(RemoveError::DenseImmutable));
        assert_eq!(dense.len(), 3, "a failed remove must not change the index");

        // The sharded layout distinguishes the two failure modes, also non-destructively.
        assert_eq!(sharded.remove(1), Ok(()));
        assert_eq!(
            sharded.remove(1),
            Err(RemoveError::AlreadyRemoved { id: 1 })
        );
        assert_eq!(
            sharded.remove(7),
            Err(RemoveError::NeverAssigned { id: 7, next_id: 3 })
        );
        assert_eq!(sharded.len(), 2);
        assert!(!sharded.is_empty());
    }

    #[test]
    fn budgeted_build_spills_and_still_matches_dense() {
        let corpus: Vec<Vec<f32>> = (0..41)
            .map(|i| {
                let a = (i as f32 * 0.23).sin();
                let b = (i as f32 * 0.47).cos();
                vec![a, b, a + b, a * b]
            })
            .collect();
        let queries: Vec<Vec<f32>> = corpus.iter().take(7).cloned().collect();
        let dense = BlockingIndex::build(corpus.clone(), None);
        let spilled = BlockingIndex::build_with_budget(corpus, Some(4), Some(0));
        if let BlockingIndex::Sharded(index) = &spilled {
            assert_eq!(index.num_spilled_shards(), index.num_shards());
        } else {
            panic!("expected the sharded layout");
        }
        assert_eq!(dense.knn_join(&queries, 5), spilled.knn_join(&queries, 5));
    }
}
