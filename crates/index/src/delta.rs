//! Incremental **delta snapshots**: publish what changed, inherit what didn't.
//!
//! A full [`crate::snapshot`] rewrites (or at least re-copies) every shard payload. For
//! a streaming corpus that appends a few thousand rows and tombstones a handful between
//! publishes, that is O(corpus) I/O for an O(delta) change. A delta snapshot is a
//! directory holding:
//!
//! * **`DELTA.swdel`** — a versioned manifest naming a **base snapshot** (full or
//!   itself a delta — chains compose) plus the *complete* shard table of the new
//!   epoch: per shard, either a **local** payload written into this directory or an
//!   **inherited** reference to a base shard's payload, resolved through the chain at
//!   load time. Ids, tombstones, and routing statistics are always recorded fresh —
//!   so a tombstone-only change inherits the payload and costs a few manifest bytes;
//! * **local payload files** (`shard-<i>.bin`) in the same `SWSHARD1` format full
//!   snapshots use, only for shards whose matrix actually changed.
//!
//! ## Epoch fingerprint: a republished base invalidates the chain
//!
//! The delta manifest records the **CRC-32 trailer of the base's manifest** as the base
//! epoch fingerprint. Load re-reads the base manifest and compares: a base that was
//! republished (same directory, different content) since the delta was saved makes the
//! chain typed-invalid instead of silently pairing the delta's shard table with
//! foreign payloads. Same discipline as the snapshot module's immutable-publish rule.
//!
//! ## Change detection at save time
//!
//! [`crate::ShardedCosineIndex::save_delta_snapshot`] inherits a shard iff its storage
//! is **spilled onto a payload file of the (chain-resolved) base** — which is exactly
//! the natural state of a cold-loaded snapshot: every shard starts as a non-owning
//! handle on a base payload, and only the shards that `add_batch` / `compact` /
//! `repack` actually touched become resident (or re-spill elsewhere) and need a local
//! write. `remove` only flips a tombstone, so it never un-inherits a payload.
//!
//! ## Atomic publish & crash consistency
//!
//! Local payloads are written first, the manifest last via the same write-to-temp +
//! atomic-rename as full snapshots. A crash anywhere before the manifest rename leaves
//! the target directory without a readable `DELTA.swdel` (a torn manifest fails its
//! CRC, typed) — the base stays untouched and loadable. Failpoints:
//! `delta.manifest.torn` (half a manifest at the final name), plus the shared
//! `snapshot.payload.torn` / `snapshot.rename.skip` on the payload/rename path.
//!
//! ## Manifest format (`SWDELTA1`)
//!
//! All integers little-endian.
//!
//! ```text
//! magic      b"SWDELTA1"
//! base_kind  u8                 0 = full base (MANIFEST.swidx), 1 = delta base (DELTA.swdel)
//! base_ref   len u64 · UTF-8    sibling directory name (or a path when not a sibling)
//! base_crc   u32                CRC-32 trailer of the base's manifest (epoch fingerprint)
//! dim u64 · shard_capacity u64 · next_id u64 · live u64 · num_shards u64
//! then per shard i:
//!   source u8                   0 = local payload shard-<i>.bin, 1 = inherited
//!   base_shard u64              (present only when source = 1)
//!   <shard record>              identical byte layout to the SWINDEX1 per-shard record
//! trailer    CRC-32 (ISO-HDLC) of every preceding byte, u32 little-endian
//! ```

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64};

use sudowoodo_faults as faults;

use crate::cache::QueryCache;
use crate::sharded::{QuantSpec, RoutingCounters, Shard, ShardedCosineIndex};
use crate::snapshot::{
    corrupt_at, open_payload_quarantining, r_usize, read_shard_record, shard_payload, w_u64,
    write_file_atomic, write_shard_record, MANIFEST_FILE,
};
use crate::storage::{crc32, same_file, write_matrix_file, write_quant_matrix_file, ShardStorage};

/// File name of the delta manifest inside a delta-snapshot directory. Its presence is
/// what routes [`crate::ShardedCosineIndex::load_snapshot`] through the chain loader.
pub const DELTA_MANIFEST_FILE: &str = "DELTA.swdel";

/// Magic prefix of a delta manifest; the trailing `1` is the format version.
const MAGIC: &[u8; 8] = b"SWDELTA1";

/// `base_kind` tag: the base directory holds a full `SWINDEX1` snapshot.
const BASE_FULL: u8 = 0;
/// `base_kind` tag: the base directory holds another delta (chains compose).
const BASE_DELTA: u8 = 1;

/// `source` tag: the shard's payload was written into the delta directory.
const SOURCE_LOCAL: u8 = 0;
/// `source` tag: the shard's payload is a base shard's payload, chain-resolved.
const SOURCE_BASE: u8 = 1;

/// Longest supported base chain. Deep chains only cost O(manifests) at load, but a
/// bound turns a reference cycle on disk into a typed error instead of a hang.
const MAX_CHAIN: usize = 64;

/// Upper bound on the recorded base-reference length — a corrupt length errors out
/// before allocating.
const MAX_BASE_REF: usize = 4096;

/// What [`crate::ShardedCosineIndex::save_delta_snapshot`] published.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSaveReport {
    /// Shards whose payload was written into the delta directory (changed shards).
    pub written_shards: usize,
    /// Shards inherited from the base chain (payload not rewritten or copied).
    pub inherited_shards: usize,
}

/// Reads the base directory's manifest (full or delta), verifying magic and CRC, and
/// returns its kind tag plus the CRC-32 trailer — the base's epoch fingerprint.
fn base_manifest_of(base_dir: &Path) -> io::Result<(u8, u32)> {
    let delta = base_dir.join(DELTA_MANIFEST_FILE);
    let (kind, path, magic): (u8, PathBuf, &[u8; 8]) = if delta.is_file() {
        (BASE_DELTA, delta, MAGIC)
    } else {
        (
            BASE_FULL,
            base_dir.join(MANIFEST_FILE),
            crate::snapshot::MAGIC,
        )
    };
    let bytes = fs::read(&path)
        .map_err(|e| io::Error::new(e.kind(), format!("delta base {}: {e}", base_dir.display())))?;
    if bytes.len() < magic.len() + 4 {
        return Err(corrupt_at(&path, "manifest is truncated"));
    }
    if &bytes[..magic.len()] != magic {
        return Err(corrupt_at(
            &path,
            "bad magic (not a Sudowoodo snapshot manifest)",
        ));
    }
    let body_len = bytes.len() - 4;
    let recorded = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if crc32(&bytes[..body_len]) != recorded {
        return Err(corrupt_at(
            &path,
            "manifest CRC-32 mismatch (torn by a crashed save, or corrupt on disk)",
        ));
    }
    Ok((kind, recorded))
}

// ---- save ---------------------------------------------------------------------------

/// Publishes `index` into `dir` as a delta over `base_dir`. See
/// [`crate::ShardedCosineIndex::save_delta_snapshot`] for the public contract.
pub(crate) fn save_delta(
    index: &ShardedCosineIndex,
    base_dir: &Path,
    dir: &Path,
) -> io::Result<DeltaSaveReport> {
    if same_file(base_dir, dir) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "delta snapshot into {}: base and target are the same directory",
                dir.display()
            ),
        ));
    }
    fs::create_dir_all(dir)?;
    if dir.join(MANIFEST_FILE).is_file() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "delta snapshot into {}: directory already holds a full snapshot \
                 (publish each epoch into a fresh directory)",
                dir.display()
            ),
        ));
    }
    let (base_kind, base_crc) = base_manifest_of(base_dir)?;
    // Resolve the base chain by cold-loading it — O(manifests), no payload reads.
    // This also re-validates the whole chain before anything references it.
    let base = crate::snapshot::load_sharded(base_dir)?;
    if base.dim != index.dim || base.shard_capacity != index.shard_capacity {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "delta snapshot into {}: geometry changed against base {} \
                 (dim {} vs {}, shard capacity {} vs {}) — save a full snapshot instead",
                dir.display(),
                base_dir.display(),
                index.dim,
                base.dim,
                index.shard_capacity,
                base.shard_capacity,
            ),
        ));
    }
    // The chain-resolved payload file of every base shard, canonicalized. A shard of
    // `index` still spilled onto one of these files is unchanged and inherits.
    let mut base_payloads: HashMap<PathBuf, usize> = HashMap::new();
    for (j, shard) in base.shards.iter().enumerate() {
        let backing = match &shard.storage {
            ShardStorage::Spilled(spilled) => Some(spilled.file_path()),
            ShardStorage::QuantSpilled(spilled) => Some(spilled.file_path()),
            _ => None,
        };
        if let Some(Ok(canonical)) = backing.map(fs::canonicalize) {
            base_payloads.insert(canonical, j);
        }
    }
    let mut sources: Vec<Option<usize>> = Vec::with_capacity(index.shards.len());
    let mut written = 0usize;
    for (i, shard) in index.shards.iter().enumerate() {
        // A shard still spilled onto a chain-resolved base payload (either format) is
        // unchanged and inherits; resident shards always write locally.
        let backing = match &shard.storage {
            ShardStorage::Spilled(spilled) => Some(spilled.file_path()),
            ShardStorage::QuantSpilled(spilled) => Some(spilled.file_path()),
            ShardStorage::Resident(_) | ShardStorage::QuantResident { .. } => None,
        };
        let inherited = backing
            .and_then(|p| fs::canonicalize(p).ok())
            .and_then(|canonical| base_payloads.get(&canonical).copied());
        if let Some(j) = inherited {
            sources.push(Some(j));
            continue;
        }
        let dest = dir.join(shard_payload(i));
        // Same refusal as the full-snapshot saver: overwriting a different file
        // inside the target directory would corrupt our own handles.
        let refuse_same_dir = |backing: &Path| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "delta snapshot into {}: shard {i} is backed by {} inside the \
                     same directory; publish into a fresh directory instead",
                    dir.display(),
                    backing.display()
                ),
            )
        };
        match &shard.storage {
            ShardStorage::Resident(matrix) => {
                write_file_atomic(&dest, |tmp| write_matrix_file(tmp, matrix))?;
            }
            ShardStorage::QuantResident { quant, exact } => {
                write_file_atomic(&dest, |tmp| write_quant_matrix_file(tmp, quant, exact))?;
            }
            ShardStorage::Spilled(spilled) => {
                if same_file(spilled.file_path(), &dest) {
                    // Re-publishing into the same delta directory: already in place.
                } else if spilled
                    .file_path()
                    .parent()
                    .is_some_and(|p| same_file(p, dir))
                {
                    return Err(refuse_same_dir(spilled.file_path()));
                } else {
                    write_file_atomic(&dest, |tmp| spilled.copy_to(tmp))?;
                }
            }
            ShardStorage::QuantSpilled(spilled) => {
                if same_file(spilled.file_path(), &dest) {
                } else if spilled
                    .file_path()
                    .parent()
                    .is_some_and(|p| same_file(p, dir))
                {
                    return Err(refuse_same_dir(spilled.file_path()));
                } else {
                    write_file_atomic(&dest, |tmp| spilled.copy_to(tmp))?;
                }
            }
        }
        written += 1;
        sources.push(None);
    }
    // Reference the base by sibling name when possible (the snapshot tree can then be
    // relocated wholesale); fall back to the path as given.
    let sibling = dir
        .parent()
        .zip(base_dir.parent())
        .is_some_and(|(a, b)| same_file(a, b));
    let base_ref: &str = if sibling {
        base_dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "delta base {}: non-UTF-8 directory name",
                        base_dir.display()
                    ),
                )
            })?
    } else {
        base_dir.to_str().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("delta base {}: non-UTF-8 path", base_dir.display()),
            )
        })?
    };
    let manifest = dir.join(DELTA_MANIFEST_FILE);
    let mut w: Vec<u8> = Vec::new();
    w.extend_from_slice(MAGIC);
    w.push(base_kind);
    w_u64(&mut w, base_ref.len() as u64)?;
    w.extend_from_slice(base_ref.as_bytes());
    w.extend_from_slice(&base_crc.to_le_bytes());
    w_u64(&mut w, index.dim as u64)?;
    w_u64(&mut w, index.shard_capacity as u64)?;
    w_u64(&mut w, index.next_id as u64)?;
    w_u64(&mut w, index.live as u64)?;
    w_u64(&mut w, index.shards.len() as u64)?;
    for (shard, source) in index.shards.iter().zip(&sources) {
        match source {
            Some(j) => {
                w.push(SOURCE_BASE);
                w_u64(&mut w, *j as u64)?;
            }
            None => w.push(SOURCE_LOCAL),
        }
        write_shard_record(&mut w, shard)?;
    }
    w.extend_from_slice(&crc32(&w).to_le_bytes());
    // Failpoint `delta.manifest.torn`: half the manifest reaches disk at its final
    // name — the CRC trailer is what keeps a later load from trusting it.
    if faults::fires("delta.manifest.torn") {
        fs::write(&manifest, &w[..w.len() / 2])?;
        return Err(io::Error::other(
            "failpoint delta.manifest.torn: simulated torn delta manifest write",
        ));
    }
    write_file_atomic(&manifest, |tmp| fs::write(tmp, &w))?;
    remove_stale_delta_files(dir, &sources);
    Ok(DeltaSaveReport {
        written_shards: written,
        inherited_shards: sources.iter().filter(|s| s.is_some()).count(),
    })
}

/// Removes files a previous save into `dir` left behind that the just-published
/// manifest does not reference: atomic-write temporaries, a dense payload, and local
/// shard payloads for positions that are now inherited or beyond the shard count.
/// Best-effort, like the full-snapshot sweep — the manifest already ignores them.
fn remove_stale_delta_files(dir: &Path, sources: &[Option<usize>]) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = name.ends_with(".bin.tmp")
            || name == "dense.bin"
            || name
                .strip_prefix("shard-")
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|i| i.parse::<usize>().ok())
                .is_some_and(|i| i >= sources.len() || sources[i].is_some());
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
}

// ---- load ---------------------------------------------------------------------------

/// Loads a delta-snapshot directory cold, resolving the base chain. See
/// [`crate::ShardedCosineIndex::load_snapshot`] — delta directories are detected and
/// routed here automatically.
pub(crate) fn load_delta(dir: &Path) -> io::Result<ShardedCosineIndex> {
    load_delta_depth(dir, 0)
}

fn load_delta_depth(dir: &Path, depth: usize) -> io::Result<ShardedCosineIndex> {
    let manifest = dir.join(DELTA_MANIFEST_FILE);
    if depth >= MAX_CHAIN {
        return Err(corrupt_at(
            &manifest,
            format!("delta chain deeper than {MAX_CHAIN} (reference cycle on disk?)"),
        ));
    }
    let mut bytes = fs::read(&manifest)?;
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(corrupt_at(&manifest, "manifest is truncated"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt_at(
            &manifest,
            "bad magic (not a Sudowoodo delta manifest)",
        ));
    }
    let body_len = bytes.len() - 4;
    let recorded = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if crc32(&bytes[..body_len]) != recorded {
        return Err(corrupt_at(
            &manifest,
            "manifest CRC-32 mismatch (torn by a crashed save, or corrupt on disk)",
        ));
    }
    bytes.truncate(body_len);
    let mut r = io::Cursor::new(bytes);
    r.set_position(MAGIC.len() as u64);
    let mut byte = [0u8; 1];
    r.read_exact(&mut byte)?;
    let base_kind = byte[0];
    if base_kind != BASE_FULL && base_kind != BASE_DELTA {
        return Err(corrupt_at(
            &manifest,
            format!("unknown base kind tag {base_kind}"),
        ));
    }
    let ref_len = r_usize(&mut r)?;
    if ref_len > MAX_BASE_REF {
        return Err(corrupt_at(
            &manifest,
            format!("base reference of {ref_len} bytes exceeds the {MAX_BASE_REF} bound"),
        ));
    }
    let mut ref_bytes = vec![0u8; ref_len];
    r.read_exact(&mut ref_bytes)?;
    let base_ref = String::from_utf8(ref_bytes)
        .map_err(|_| corrupt_at(&manifest, "base reference is not UTF-8"))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let expected_base_crc = u32::from_le_bytes(crc_bytes);
    // A bare sibling name resolves against this directory's parent; anything with a
    // path component is used as a path.
    let base_path = PathBuf::from(&base_ref);
    let base_dir = if base_path.components().count() > 1 || base_path.is_absolute() {
        base_path
    } else {
        dir.parent().unwrap_or(Path::new("")).join(&base_ref)
    };
    let (found_kind, found_crc) = base_manifest_of(&base_dir)?;
    if found_kind != base_kind {
        return Err(corrupt_at(
            &manifest,
            format!(
                "base snapshot {} changed layout kind since this delta was saved",
                base_dir.display()
            ),
        ));
    }
    if found_crc != expected_base_crc {
        return Err(corrupt_at(
            &manifest,
            format!(
                "base snapshot {} was republished since this delta was saved (epoch \
                 fingerprint {found_crc:08x}, delta expects {expected_base_crc:08x}); \
                 the chain is invalid — republish the delta against the new base",
                base_dir.display()
            ),
        ));
    }
    let base = if base_kind == BASE_DELTA {
        load_delta_depth(&base_dir, depth + 1)?
    } else {
        crate::snapshot::load_sharded(&base_dir)?
    };
    let dim = r_usize(&mut r)?;
    let shard_capacity = r_usize(&mut r)?;
    let next_id = r_usize(&mut r)?;
    let live = r_usize(&mut r)?;
    let num_shards = r_usize(&mut r)?;
    if shard_capacity == 0 {
        return Err(corrupt_at(&manifest, "shard capacity 0"));
    }
    if dim != base.dim || shard_capacity != base.shard_capacity {
        return Err(corrupt_at(
            &manifest,
            format!(
                "geometry disagrees with base {} (dim {dim} vs {}, shard capacity \
                 {shard_capacity} vs {})",
                base_dir.display(),
                base.dim,
                base.shard_capacity
            ),
        ));
    }
    let mut shards = Vec::with_capacity(num_shards.min(1024));
    let mut live_seen = 0usize;
    let mut prev_id: Option<usize> = None;
    for i in 0..num_shards {
        r.read_exact(&mut byte)?;
        let source = byte[0];
        let inherited_from = match source {
            SOURCE_LOCAL => None,
            SOURCE_BASE => {
                let j = r_usize(&mut r)?;
                if j >= base.shards.len() {
                    return Err(corrupt_at(
                        &manifest,
                        format!(
                            "shard {i} inherits base shard {j}, but the base has only \
                             {} shards",
                            base.shards.len()
                        ),
                    ));
                }
                Some(j)
            }
            other => {
                return Err(corrupt_at(
                    &manifest,
                    format!("shard {i} has unknown source tag {other}"),
                ));
            }
        };
        let record = read_shard_record(
            &manifest,
            &mut r,
            i,
            dim,
            shard_capacity,
            next_id,
            &mut prev_id,
        )?;
        live_seen += record.live;
        let payload = match inherited_from {
            None => dir.join(shard_payload(i)),
            Some(j) => match &base.shards[j].storage {
                ShardStorage::Spilled(spilled) => spilled.file_path().to_path_buf(),
                ShardStorage::QuantSpilled(spilled) => spilled.file_path().to_path_buf(),
                // Cold loads always come up spilled; defensive rather than reachable.
                ShardStorage::Resident(_) | ShardStorage::QuantResident { .. } => {
                    return Err(corrupt_at(
                        &manifest,
                        format!("shard {i}: base shard {j} has no payload file to inherit"),
                    ));
                }
            },
        };
        let (storage, quarantined) =
            open_payload_quarantining(dir, i, payload, record.rows, record.cols, record.quantized);
        shards.push(Shard {
            storage,
            ids: record.ids,
            deleted: record.deleted,
            live: record.live,
            stats: record.stats,
            last_used: AtomicU64::new(0),
            quarantined: AtomicBool::new(quarantined),
        });
    }
    if live_seen != live {
        return Err(corrupt_at(
            &manifest,
            "total live count disagrees with the shards",
        ));
    }
    // Disk wins at load: a chain whose resolved shards carry quantized payloads comes
    // up with the tier enabled (same rule as the full-snapshot loader).
    let quantization = shards
        .iter()
        .any(|s| s.storage.is_quantized())
        .then(QuantSpec::default);
    Ok(ShardedCosineIndex {
        shard_capacity,
        dim,
        next_id,
        live,
        shards,
        memory_budget: None,
        routing: true,
        spill_dir: None,
        clock: AtomicU64::new(0),
        counters: RoutingCounters::default(),
        epoch: AtomicU64::new(0),
        cache: QueryCache::new(0),
        quantization,
    })
}
